"""IBM-PyWren client configuration.

The real framework reads ``~/.pywren_config`` with IBM Cloud credentials and
endpoints; here the same knobs configure the emulated services.  Every field
maps to a behaviour the paper describes (runtime selection §3.1/§4.1,
massive spawning §5.1, chunk sizes §4.3, ...).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Union


class InvokerMode:
    """How the client spawns functions (§5.1).

    * ``LOCAL`` — the client issues every invocation itself over its own
      network link (original PyWren behaviour).
    * ``REMOTE`` — the client launches one *remote invoker* function that
      spawns the whole job from inside the cloud (the paper's first attempt,
      ~20 s for 1000 functions).
    * ``MASSIVE`` — groups of ``massive_group_size`` invocations, one remote
      invoker function per group (the final mechanism, ~8 s).
    """

    LOCAL = "local"
    REMOTE = "remote"
    MASSIVE = "massive"

    ALL = (LOCAL, REMOTE, MASSIVE)


@dataclass
class MonitoringTransport:
    """How the client learns about function completions.

    * ``COS_POLLING`` — §4.2's design: statuses are COS objects, discovered
      by periodic LIST requests (at most ``poll_interval`` stale).
    * ``MQ_PUSH`` — functions additionally publish their status to a
      message queue the client consumes, removing the polling latency
      (the RabbitMQ transport of the IBM-PyWren lineage).
    """

    COS_POLLING = "cos_polling"
    MQ_PUSH = "mq_push"

    ALL = (COS_POLLING, MQ_PUSH)


@dataclass(frozen=True)
class RetryConfig:
    """Shared client-side retry policy for everything that talks to the cloud.

    One documented knob set replaces the ad-hoc ``RETRIES``/``RETRY_BACKOFF``
    constants that used to live in :mod:`repro.cos.client` and the fixed 429
    backoff in :mod:`repro.faas.gateway`.  The schedule is exponential
    backoff with optional *full jitter* (AWS style: each delay is sampled
    uniformly from ``[0, base]``), capped at ``max_backoff_s``::

        base(attempt) = min(max_backoff_s,
                            initial_backoff_s * multiplier ** (attempt - 1))

    ``max_attempts`` counts the first try, so the default of 6 preserves the
    historical "5 retries" behaviour.
    """

    #: total attempts, including the first (>= 1)
    max_attempts: int = 6
    #: backoff base for the first retry (seconds)
    initial_backoff_s: float = 1.0
    #: ceiling applied to the exponential base (seconds)
    max_backoff_s: float = 30.0
    #: exponential growth factor between retries
    multiplier: float = 2.0
    #: ``"full"`` (uniform in [0, base]) or ``"none"`` (deterministic base)
    jitter: str = "full"

    JITTER_MODES = ("full", "none")

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.initial_backoff_s < 0:
            raise ValueError("initial_backoff_s must be non-negative")
        if self.max_backoff_s < self.initial_backoff_s:
            raise ValueError("max_backoff_s must be >= initial_backoff_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if self.jitter not in self.JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {self.JITTER_MODES}, got {self.jitter!r}"
            )


@dataclass(frozen=True)
class CacheConfig:
    """The memory-tier intermediate-data cache plane (ARCHITECTURE.md §10).

    Disabled by default: with ``enabled=False`` no plane is built, no
    ``cache.*`` trace events are emitted and every data exchange behaves
    exactly as before (the COS-only path), which keeps existing golden
    traces byte-identical.  When enabled, each invoker node hosts a
    byte-budgeted LRU memory cache; intermediates (shuffle partitions,
    DAG node results) are written through it to COS and read cache-first:
    local memory hit → peer transfer over the emulated network → COS.

    Enabling this is shorthand for selecting the ``cached-cos`` exchange
    backend (:class:`ExchangeConfig`, ARCHITECTURE.md §11), which owns
    the plane since the backend seam was introduced.
    """

    #: build the cache plane at all
    enabled: bool = False
    #: per-invoker-node memory budget for cached intermediates (bytes)
    node_budget_bytes: int = 64 * 1024 * 1024
    #: eviction policy; only ``"lru"`` exists (victim = oldest virtual
    #: touch, ties broken by key for determinism)
    policy: str = "lru"
    #: fixed latency of a local memory hit (seconds)
    hit_latency_s: float = 200e-6
    #: local memory streaming bandwidth (bytes/second)
    memory_bandwidth_bps: float = 2 * 1024**3
    #: node-to-node transfer bandwidth for peer hits (bytes/second)
    peer_bandwidth_bps: float = 1 * 1024**3
    #: consult the consistent-hash directory and fetch from peer nodes
    #: (off = local-or-COS only)
    peer_fetch: bool = True
    #: after a COS miss, keep a copy in the reader's local cache
    populate_on_miss: bool = True
    #: virtual points per node on the directory's consistent-hash ring
    ring_vnodes: int = 64

    POLICIES = ("lru",)

    def validate(self) -> None:
        if self.node_budget_bytes < 0:
            raise ValueError("node_budget_bytes must be non-negative")
        if self.policy not in self.POLICIES:
            raise ValueError(
                f"policy must be one of {self.POLICIES}, got {self.policy!r}"
            )
        if self.hit_latency_s < 0:
            raise ValueError("hit_latency_s must be non-negative")
        if self.memory_bandwidth_bps <= 0:
            raise ValueError("memory_bandwidth_bps must be positive")
        if self.peer_bandwidth_bps <= 0:
            raise ValueError("peer_bandwidth_bps must be positive")
        if self.ring_vnodes <= 0:
            raise ValueError("ring_vnodes must be positive")


@dataclass(frozen=True)
class ExchangeConfig:
    """Which data plane serves intermediate objects (ARCHITECTURE.md
    "Exchange backends").

    With the default ``backend="cos"`` (and no :class:`CacheConfig`
    opt-in) the exchange path is the paper's direct COS exchange and the
    refactor is invisible: same-seed runs export byte-identical traces to
    the pre-backend code.  ``"cached-cos"`` selects the PR 5 write-through
    memory tier; ``"vm"`` provisions an emulated ephemeral-store cluster
    (:class:`~repro.exchange.vm.VmExchange`) whose knobs follow.
    """

    #: backend name: ``"cos"`` | ``"cached-cos"`` | ``"vm"``
    backend: str = "cos"
    #: provisioned store-VM count (``"vm"`` backend)
    vm_nodes: int = 3
    #: memory capacity of each store VM (bytes); LRU eviction on full
    vm_node_memory_bytes: int = 512 * 1024 * 1024
    #: cluster provisioning time — exchange traffic arriving earlier
    #: waits; also the rejoin delay after a chaos node crash (seconds)
    vm_startup_s: float = 5.0
    #: fixed latency of a served VM read, on top of the round trip
    vm_hit_latency_s: float = 200e-6
    #: store-VM transfer bandwidth (bytes/second; ~10 GbE, an order
    #: above the COS per-stream rate)
    vm_bandwidth_bps: float = 1 * 1024**3
    #: virtual points per node on the key-ownership consistent-hash ring
    vm_ring_vnodes: int = 64

    BACKENDS = ("cos", "cached-cos", "vm")

    def validate(self) -> None:
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"exchange backend must be one of {self.BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.vm_nodes <= 0:
            raise ValueError("vm_nodes must be positive")
        if self.vm_node_memory_bytes < 0:
            raise ValueError("vm_node_memory_bytes must be non-negative")
        if self.vm_startup_s < 0:
            raise ValueError("vm_startup_s must be non-negative")
        if self.vm_hit_latency_s < 0:
            raise ValueError("vm_hit_latency_s must be non-negative")
        if self.vm_bandwidth_bps <= 0:
            raise ValueError("vm_bandwidth_bps must be positive")
        if self.vm_ring_vnodes <= 0:
            raise ValueError("vm_ring_vnodes must be positive")


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant quotas and fair-share weight for the multi-tenant
    control plane (ARCHITECTURE.md "Multi-tenant control plane").

    One instance per namespace, registered with a
    :class:`~repro.faas.tenants.TenantRegistry`.  The gateway enforces
    the quotas as *admission control* — a request over quota is answered
    429 with a ``retry_after`` hint instead of being queued — and the
    controller's weighted-fair dispatcher shares cluster capacity across
    admitted work in proportion to ``weight``.  ``None`` quotas fall back
    to the platform-wide :class:`~repro.faas.limits.SystemLimits`.
    """

    #: the namespace this tenant owns
    name: str
    #: deficit-round-robin share weight (relative to other tenants)
    weight: float = 1.0
    #: concurrent invocations admitted at once (queued + running);
    #: ``None`` → the platform's per-namespace ``max_concurrent``
    max_concurrent: Optional[int] = None
    #: total in-flight action memory admitted at once (MB); ``None`` → no
    #: memory quota beyond the concurrency cap
    memory_quota_mb: Optional[int] = None
    #: sustained invocation admission rate (requests per virtual second);
    #: ``None`` → unmetered
    rate_per_s: Optional[float] = None
    #: token-bucket burst: invocations admitted back-to-back before the
    #: sustained rate applies (only meaningful with ``rate_per_s``)
    rate_burst: int = 10
    #: dispatch-queue depth cap: invocations waiting for a fair-share
    #: slot before new requests are pushed back with 429 (``None`` → the
    #: concurrency quota bounds the queue)
    max_pending: Optional[int] = None

    def validate(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.max_concurrent is not None and self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive or None")
        if self.memory_quota_mb is not None and self.memory_quota_mb <= 0:
            raise ValueError("memory_quota_mb must be positive or None")
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive or None")
        if self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")
        if self.max_pending is not None and self.max_pending <= 0:
            raise ValueError("max_pending must be positive or None")


@dataclass(frozen=True)
class EventsConfig:
    """Durable event-sourced orchestration journal (ARCHITECTURE.md §12).

    Disabled by default: with ``enabled=False`` no journal is built, no
    ``events.*`` trace events are emitted and nothing changes in any
    existing request pattern or golden trace.  When enabled, every
    externally-visible executor/DAG transition (job submitted, calls
    invoked, status committed, node fired/buried, results collected) is
    appended as a deterministic :class:`repro.events.EventRecord` to a
    durable journal, and DAG trigger rules ("when all N dependency
    statuses commit, fire the node") are evaluated from the log via
    :class:`repro.events.TriggerEngine` instead of in-memory watcher
    state.  A crashed client can then be replaced:
    ``FunctionExecutor.reattach(job_id)`` replays the journal,
    reconciles against committed statuses in COS and completes the run
    (see :mod:`repro.events.resume`).
    """

    #: build the journal at all
    enabled: bool = False
    #: durable backend: ``"cos"`` (one conditional-PUT object per event
    #: under ``{prefix}/{executor_id}/journal/``) or ``"mq"`` (a broker
    #: queue per executor; survives client death, not broker death)
    backend: str = "cos"
    #: with the COS backend, additionally publish every record to the MQ
    #: plane (queue ``events-{executor_id}``) for live subscribers
    mirror_to_mq: bool = False

    BACKENDS = ("cos", "mq")

    def validate(self) -> None:
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"events backend must be one of {self.BACKENDS}, "
                f"got {self.backend!r}"
            )


@dataclass(frozen=True)
class DagConfig:
    """How :class:`~repro.dag.DagScheduler` drives a submitted graph
    (ARCHITECTURE.md "Decentralized DAG scheduling").

    The default ``scheduler="centralized"`` is the PR 4 client-side
    watcher: every node completion is discovered by the client's poll
    loop (a WAN round-trip) before dependents launch, and same-seed
    traces are byte-identical to pre-swarm code.  ``"swarm"`` ships a
    static schedule to COS at submit and lets each finishing worker
    decrement its dependents' dependency counters with conditional PUTs
    and invoke every dependent that became ready from *inside* the cloud
    (in-cloud RTT instead of WAN), carrying a placement hint for its own
    invoker node.  The client is reduced to a supervisor: it observes
    status commits, retries failed nodes, buries dependents of terminal
    failures, and re-drives any node whose handoff was orphaned by a
    worker crash once ``orphan_grace_s`` of virtual time passes without
    a status.
    """

    #: ``"centralized"`` (client-driven watcher) or ``"swarm"``
    #: (worker-driven handoff, client as supervisor)
    scheduler: str = "centralized"
    #: swarm only: how long the supervisor waits for a dependency-complete
    #: node's status before re-driving it itself (seconds, virtual)
    orphan_grace_s: float = 8.0
    #: swarm only: once the supervisor sees the node's fire token claimed
    #: (a worker committed to invoking it — the node is almost certainly
    #: just still running), the redrive fuse stretches to
    #: ``orphan_grace_s * claimed_grace_factor``; it still fires
    #: eventually, covering a worker that crashed between claiming the
    #: token and issuing the invocation
    claimed_grace_factor: float = 4.0

    SCHEDULERS = ("centralized", "swarm")

    def validate(self) -> None:
        if self.scheduler not in self.SCHEDULERS:
            raise ValueError(
                f"dag scheduler must be one of {self.SCHEDULERS}, "
                f"got {self.scheduler!r}"
            )
        if self.orphan_grace_s <= 0:
            raise ValueError("orphan_grace_s must be positive")
        if self.claimed_grace_factor < 1.0:
            raise ValueError("claimed_grace_factor must be >= 1")


@dataclass
class PyWrenConfig:
    """Client-side configuration for :class:`repro.core.FunctionExecutor`."""

    #: Cloud Functions namespace actions are deployed into
    namespace: str = "guest"
    #: COS bucket for function/data/status/result objects
    storage_bucket: str = "pywren-internal"
    #: key prefix inside the storage bucket
    storage_prefix: str = "pywren.jobs"
    #: default runtime for function executors (§3.1)
    runtime: str = "python-jessie:3"
    #: memory per function executor (MB)
    runtime_memory_mb: int = 256
    #: per-invocation timeout requested for runner actions (seconds)
    runtime_timeout_s: float = 600.0
    #: function spawning mechanism (see :class:`InvokerMode`)
    invoker_mode: str = InvokerMode.LOCAL
    #: client-side threads used to issue invocations in LOCAL mode
    invoker_pool_size: int = 8
    #: invocations per remote invoker function in MASSIVE mode
    massive_group_size: int = 100
    #: concurrent invocations inside the single REMOTE-mode invoker
    remote_invoker_pool_size: int = 4
    #: client polling period for statuses in COS (seconds)
    poll_interval: float = 1.0
    #: client-side threads used to download results
    result_fetch_pool_size: int = 32
    #: print a textual progress bar during get_result (§4.2)
    progress_bar: bool = False
    #: default chunk size for the data partitioner (bytes); None = one
    #: partition per object (§4.3)
    chunk_size: Optional[int] = None
    #: fail fast on the client when a function references packages the
    #: selected runtime image does not carry (§3.1)
    validate_runtime_packages: bool = True
    #: completion transport (see :class:`MonitoringTransport`)
    monitoring: str = MonitoringTransport.COS_POLLING
    #: shared retry schedule for COS requests, invocations and 429s
    retry: RetryConfig = field(default_factory=RetryConfig)
    #: memory-tier intermediate-data cache plane (disabled by default)
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: intermediate-data exchange backend (default: the direct COS path)
    exchange: ExchangeConfig = field(default_factory=ExchangeConfig)
    #: event-sourced orchestration journal + resume (disabled by default)
    events: EventsConfig = field(default_factory=EventsConfig)
    #: DAG scheduling mode (default: the centralized client-side watcher)
    dag: DagConfig = field(default_factory=DagConfig)
    #: times a *lost* call (its activation died without writing a status
    #: object) is re-invoked before it is failed; ``map(..., retries=N)``
    #: overrides this per job
    invocation_retries: int = 3
    #: lost-activation recovery during ``wait``/``get_result``: ``"auto"``
    #: enables it only when the platform injects faults (a chaos plane is
    #: attached), ``True``/``False`` force it on or off
    recover_lost: Union[bool, str] = "auto"

    def validate(self) -> None:
        if self.invoker_mode not in InvokerMode.ALL:
            raise ValueError(
                f"invoker_mode must be one of {InvokerMode.ALL}, "
                f"got {self.invoker_mode!r}"
            )
        if self.invoker_pool_size <= 0:
            raise ValueError("invoker_pool_size must be positive")
        if self.massive_group_size <= 0:
            raise ValueError("massive_group_size must be positive")
        if self.remote_invoker_pool_size <= 0:
            raise ValueError("remote_invoker_pool_size must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive or None")
        if self.monitoring not in MonitoringTransport.ALL:
            raise ValueError(
                f"monitoring must be one of {MonitoringTransport.ALL}, "
                f"got {self.monitoring!r}"
            )
        if not isinstance(self.retry, RetryConfig):
            raise ValueError("retry must be a RetryConfig")
        self.retry.validate()
        if not isinstance(self.cache, CacheConfig):
            raise ValueError("cache must be a CacheConfig")
        self.cache.validate()
        if not isinstance(self.exchange, ExchangeConfig):
            raise ValueError("exchange must be an ExchangeConfig")
        self.exchange.validate()
        if not isinstance(self.events, EventsConfig):
            raise ValueError("events must be an EventsConfig")
        self.events.validate()
        if not isinstance(self.dag, DagConfig):
            raise ValueError("dag must be a DagConfig")
        self.dag.validate()
        if self.invocation_retries < 0:
            raise ValueError("invocation_retries must be non-negative")
        if self.recover_lost not in (True, False, "auto"):
            raise ValueError('recover_lost must be True, False or "auto"')

    def with_overrides(self, **kwargs) -> "PyWrenConfig":
        """A copy with some fields replaced (used by executor kwargs)."""
        cfg = replace(self, **kwargs)
        cfg.validate()
        return cfg

    # ------------------------------------------------------------------
    # Config files (the ``~/.pywren_config`` workflow of the real client)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PyWrenConfig":
        """Build a config from a plain dict; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown config keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        nested = {
            "retry": RetryConfig,
            "cache": CacheConfig,
            "exchange": ExchangeConfig,
            "events": EventsConfig,
            "dag": DagConfig,
        }
        for section, section_cls in nested.items():
            if not isinstance(data.get(section), dict):
                continue
            section_known = {f.name for f in dataclasses.fields(section_cls)}
            section_unknown = set(data[section]) - section_known
            if section_unknown:
                raise ValueError(
                    f"unknown {section} config keys: {sorted(section_unknown)} "
                    f"(known: {sorted(section_known)})"
                )
            data = {**data, section: section_cls(**data[section])}
        cfg = cls(**data)
        cfg.validate()
        return cfg

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path]) -> "PyWrenConfig":
        """Load configuration from a JSON file (stand-in for the real
        framework's ``~/.pywren_config`` YAML)."""
        text = pathlib.Path(path).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"config file {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"config file {path} must hold a JSON object")
        return cls.from_dict(data)

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Write this configuration as JSON."""
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))
