"""Decentralized, worker-driven DAG scheduling (the swarm plane).

The centralized :class:`~repro.dag.DagScheduler` discovers every node
completion from the client, so each graph edge costs at least one WAN
round-trip (~250 ms) plus up to a poll interval before the dependent can
launch.  Wukong-style swarm scheduling moves that hot path into the
cloud: the client ships one *static schedule* to COS at submit (per-node
dependency counts, call parameter refs, worker fan-out), and each worker,
after winning its node's status commit, decrements its dependents'
dependency counters and directly invokes every dependent that became
ready — over the in-cloud link (~4 ms), carrying a placement hint for its
own invoker node so the dependent lands where the freshly written output
is resident.

COS has no compare-and-swap, so the "counter" is built from the same
append-once primitive the event journal uses (conditional PUT,
``If-None-Match: *``):

* one **done marker** object per DAG edge — the producing worker creates
  it exactly once (a duplicate run of the same node loses the conditional
  PUT and backs off), then counts the dependent's markers with one LIST;
* one **fire token** object per node — every worker that observes the
  count reach the dependency total races to create it, and the single
  winner invokes the node.  Single-dependency nodes (linear chains) skip
  the marker entirely: the token claim *is* the decrement.

The protocol is crash-safe but not loss-proof: a worker that dies after
committing its status but before finishing the handoff leaves durable
markers and possibly a claimed-but-unfired token.  The client-side
supervisor (the slimmed :class:`~repro.dag.DagScheduler`) covers that
tail: any dependency-complete node that produces no status within the
orphan grace is re-driven from the client, and the at-most-once status
commit makes the duplicate invocation harmless.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.dag.graph import Dag
from repro.dag.node import DagNode

__all__ = [
    "node_key",
    "split_key",
    "is_drivable",
    "build_schedule",
    "ready_dependents_steps",
    "StorageSwarmStore",
    "swarm_handoff_steps",
]


def node_key(callset_id: str, call_id: str) -> str:
    """Stable per-node key used in swarm object names and the schedule."""
    return f"{callset_id}-{call_id}"


def split_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`node_key` (call ids never contain ``-``)."""
    callset_id, _, call_id = key.rpartition("-")
    return callset_id, call_id


def is_drivable(node: DagNode) -> bool:
    """Whether workers can fire ``node`` without the client.

    A node is swarm-drivable when every one of its dependencies runs as a
    framework activation: each dependency's worker then contributes its
    counter decrement.  Roots (the client invokes them at submit) and
    nodes consuming external futures (only the client observes those)
    stay supervisor-driven.
    """
    return (
        not node.external
        and bool(node.deps)
        and all(not dep.external for dep in node.deps)
    )


def build_schedule(
    dag: Dag,
    dag_id: str,
    *,
    namespace: str,
    action: str,
) -> dict[str, Any]:
    """Freeze the graph into the schedule object shipped to COS.

    Every internal node gets an entry keyed by :func:`node_key`: its
    already-prepared call parameters (payload refs into the uploaded
    aggdata, swarm stamp included), its dependency count, its dependency
    ids (for counters and residency-ranked placement), and the keys of
    the *drivable* dependents its worker must try to fire.  The schedule
    is immutable for the run — retries and re-drives reuse the same
    entries.
    """
    nodes: dict[str, dict[str, Any]] = {}
    for node in dag.internal_nodes:
        future = node.future
        key = node_key(future.callset_id, future.call_id)
        nodes[key] = {
            "name": node.display_name,
            "params": node.call_params,
            "dep_count": len(node.deps),
            "deps": [
                [dep.future.callset_id, dep.future.call_id]
                for dep in node.deps
            ],
            "dependents": [
                node_key(dep.future.callset_id, dep.future.call_id)
                for dep in node.dependents
                if is_drivable(dep)
            ],
        }
    return {
        "dag_id": dag_id,
        "namespace": namespace,
        "action": action,
        "nodes": nodes,
    }


class StorageSwarmStore:
    """The real conditional-PUT store, bound to one (executor, dag)."""

    def __init__(self, storage, executor_id: str, dag_id: str) -> None:
        self._storage = storage
        self._executor_id = executor_id
        self._dag_id = dag_id

    def put_marker_steps(self, key: str, dep_key: str, payload: dict):
        won = yield from self._storage.commit_swarm_marker_steps(
            self._executor_id, self._dag_id, key, dep_key, payload
        )
        return won

    def count_markers_steps(self, key: str):
        count = yield from self._storage.count_swarm_markers_steps(
            self._executor_id, self._dag_id, key
        )
        return count

    def claim_token_steps(self, key: str, payload: dict):
        won = yield from self._storage.claim_swarm_token_steps(
            self._executor_id, self._dag_id, key, payload
        )
        return won


def ready_dependents_steps(
    store, schedule_nodes: dict[str, dict], done_key: str, payload: dict
):
    """The counter-decrement protocol, as a steps generator.

    Runs after ``done_key``'s status commit won.  For each drivable
    dependent: create the edge's done marker (skip the dependent entirely
    if a duplicate run of this node already owns the edge), count markers,
    and when the count reaches the dependency total race for the fire
    token.  Returns the dependent keys *this* caller won the right to
    invoke — every dependent is returned by at most one caller across all
    concurrent and repeated runs.

    ``store`` is duck-typed (:class:`StorageSwarmStore` in production, an
    in-memory twin in the property tests) so the exactly-once guarantee
    is testable under arbitrary interleavings and mid-protocol crashes.
    """
    won: list[str] = []
    for child_key in schedule_nodes[done_key]["dependents"]:
        child = schedule_nodes[child_key]
        if child["dep_count"] > 1:
            created = yield from store.put_marker_steps(
                child_key, done_key, payload
            )
            if not created:
                # a duplicate completion of done_key already decremented
                # this edge; whoever wrote the marker owns the follow-up
                continue
            present = yield from store.count_markers_steps(child_key)
            if present < child["dep_count"]:
                continue
        claimed = yield from store.claim_token_steps(child_key, payload)
        if claimed:
            won.append(child_key)
    return won


def swarm_handoff_steps(params: dict[str, Any], ctx, storage, status: dict):
    """Worker-side handoff, run after a *winning, successful* status commit.

    Fetches the schedule over the in-cloud link (skipped when this node
    has no drivable dependents), runs the counter protocol, and invokes
    every won dependent through ``ctx.functions`` — the same trusted
    in-cloud gateway path the massive invoker uses — with a placement
    hint aimed at this worker's own invoker node.
    """
    info = params["swarm"]
    if not info.get("fan_out"):
        return
    executor_id = params["executor_id"]
    dag_id = info["dag_id"]
    me = node_key(params["callset_id"], params["call_id"])
    schedule = yield from storage.get_swarm_schedule_steps(executor_id, dag_id)
    nodes = schedule["nodes"]
    store = StorageSwarmStore(storage, executor_id, dag_id)
    payload = {
        "by": me,
        "invoker_id": ctx.record.invoker_id,
        "activation_id": ctx.activation_id,
    }
    tracer = ctx.platform.tracer
    if tracer is not None and not tracer.enabled:
        tracer = None

    won = yield from ready_dependents_steps(store, nodes, me, payload)
    for child_key in won:
        child = nodes[child_key]
        child_params = dict(child["params"])
        hint = _handoff_hint(child, executor_id, ctx.record.invoker_id, storage)
        if hint:
            child_params["placement_hint"] = hint
        callset_id, call_id = split_key(child_key)
        ids = {
            "executor_id": executor_id,
            "callset_id": callset_id,
            "call_id": call_id,
            "dag_id": dag_id,
        }
        if tracer is not None:
            tracer.point(
                "swarm.ready", "swarm", ids=ids,
                node=child["name"],
                by=nodes[me]["name"],
                deps=child["dep_count"],
            )
        t0 = ctx.kernel.now()
        activation_id = yield from ctx.functions.invoke_steps(
            schedule["namespace"], schedule["action"], child_params
        )
        if tracer is not None:
            tracer.span_at(
                "swarm.invoke", "swarm", t0, ctx.kernel.now(),
                ids={**ids, "activation_id": activation_id},
                node=child["name"],
                by=nodes[me]["name"],
                invoker_id=ctx.record.invoker_id,
            )
    return


def _handoff_hint(
    child: dict[str, Any],
    executor_id: str,
    own_invoker: Optional[int],
    storage,
) -> Optional[list[int]]:
    """Placement hint for a worker-fired dependent.

    The firing worker's own invoker node leads — its result blob was
    written through the bound exchange an instant ago, so for linear
    chains the dependent reads its input without the data ever leaving
    the node.  When the bound exchange backend provides a locality
    directory, the dependent's *other* inputs upgrade the tail of the
    hint by current memory residency (same ranking the centralized
    scheduler uses).
    """
    from repro.dag.locality import MAX_HINT

    hint: list[int] = [] if own_invoker is None else [own_invoker]
    exchange = getattr(storage, "exchange", None)
    if exchange is not None and getattr(exchange, "provides_locality", False):
        resident: dict[int, int] = {}
        for callset_id, call_id in child["deps"]:
            key = storage.result_key(executor_id, callset_id, call_id)
            for invoker, nbytes in exchange.locate(key):
                if invoker == own_invoker:
                    continue
                resident[invoker] = resident.get(invoker, 0) + nbytes
        hint.extend(sorted(resident, key=lambda n: (-resident[n], n)))
    return hint[:MAX_HINT] or None
