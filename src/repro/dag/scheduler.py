"""Barrier-free DAG execution on top of :class:`FunctionExecutor`.

The scheduler uploads every node's code and payload up front (one
content-addressed function blob, one aggregated data object per
topological level), then drives the graph with a *dependency watcher*: a
model task on the virtual-time kernel that wakes every poll interval,
discovers finished nodes with one LIST per in-flight callset, and invokes
each dependent the moment its last in-edge resolves.  There is no
client-side barrier between stages — a reducer launches while sibling
branches are still running, which is the Wukong-style pipelining the
issue's motivating papers measure.

Failure semantics match the executor's: lost activations are re-invoked
through the shared recovery scan, function errors can be retried per node
through :class:`repro.retry.RetryPolicy` backoff, and a node that fails
terminally *buries* its transitive dependents with a synthetic error
status so every waiter unblocks with a :class:`FunctionError` instead of
hanging.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core import context as ambient
from repro.dag import locality as _locality
from repro.dag.graph import Dag
from repro.dag.node import ARG_DEP, ARG_FUTURES, ARG_VALUE, DagNode, NodeState
from repro.retry import RetryPolicy
from repro.vtime import VEvent
from repro.vtime.kernel import vjoin, vsleep


def _dag_node_call(payload: dict[str, Any]) -> Any:
    """DAG node shim executed *as a cloud function*.

    Unlike the legacy in-cloud reducer shim there is no wait loop here:
    the scheduler only invokes a node once its dependencies' statuses are
    committed, so resolving each shipped future costs exactly one status
    GET and one result GET.
    """
    mode = payload["mode"]
    if mode == ARG_VALUE:
        arg: Any = payload["value"]
    else:
        environment = ambient.require_context().environment
        storage = environment.internal_storage_in_cloud()
        futures = payload["futures"]
        for future in futures:
            future.bind(storage, payload["poll_interval"])
        if mode == ARG_FUTURES:
            arg = futures
        elif mode == ARG_DEP:
            arg = futures[0].result()
        else:  # ARG_DEPS: dependency results in edge order
            arg = [future.result() for future in futures]
    value = arg
    for fn in payload["fns"]:
        value = fn(value)
    return value


class DagRun:
    """Handle on a submitted DAG: per-node futures plus completion."""

    def __init__(self, dag: Dag, scheduler: "DagScheduler", dag_id: str) -> None:
        self.dag = dag
        self.dag_id = dag_id
        self._scheduler = scheduler
        self._event = VEvent(scheduler.kernel)
        self._finished = False
        self.error: Optional[BaseException] = None
        # per-round journal batches (one record per round, not per call)
        self._obs_batch: list[list] = []
        self._fired_batch: list[list] = []
        self._buried_batch: list[list] = []

    @property
    def finished(self) -> bool:
        return all(n.state in NodeState.TERMINAL for n in self.dag.nodes)

    def future(self, node: DagNode):
        """The :class:`ResponseFuture` backing ``node``."""
        return node.future

    def expose(self, node: DagNode):
        """Register ``node``'s future with the executor and return it.

        Only exposed futures join ``executor.futures`` — interior nodes
        stay private so ``get_result()`` keeps returning what the public
        API promised (e.g. a single value for a sequence).
        """
        future = node.future
        if future not in self._scheduler.executor.futures:
            self._scheduler.executor.futures.append(future)
            self._scheduler.executor._journal_exposed([future])
        return future

    def failed_nodes(self) -> list[DagNode]:
        return [n for n in self.dag.nodes if n.state == NodeState.FAILED]

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block (virtual time) until every node reached a terminal state."""
        return self._event.wait(timeout)

    def _finish(self) -> None:
        if not self._finished:
            self._finished = True
            self._event.set()


class DagScheduler:
    """Submits :class:`Dag` graphs and watches their dependencies.

    ``label`` prefixes the generated callset ids (one callset per
    topological level).  ``node_retries`` bounds RetryPolicy-backed
    re-execution of nodes that *finished in error* (default 0: function
    errors propagate, matching executor semantics); lost-activation
    recovery is separate and follows the executor's ``recover_lost``
    setting.  ``retries`` is the per-call lost-invocation budget passed
    through to call preparation.
    """

    def __init__(
        self,
        executor,
        *,
        label: str = "D",
        locality: bool = True,
        node_retries: int = 0,
        retries: Optional[int] = None,
        poll_interval: Optional[float] = None,
        scheduler: Optional[str] = None,
        orphan_grace: Optional[float] = None,
    ) -> None:
        from repro.config import DagConfig

        self.executor = executor
        self.kernel = executor.kernel
        self.label = label
        self.locality = bool(locality)
        self.node_retries = int(node_retries)
        self.retries = retries
        self.poll_interval = (
            poll_interval
            if poll_interval is not None
            else executor.config.poll_interval
        )
        dag_config = getattr(executor.config, "dag", None) or DagConfig()
        self.scheduler = (
            scheduler if scheduler is not None else dag_config.scheduler
        )
        if self.scheduler not in DagConfig.SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {DagConfig.SCHEDULERS}, "
                f"got {self.scheduler!r}"
            )
        #: swarm mode: workers fire dependents in-cloud, this object is
        #: only the supervisor (recovery, retries, burials, re-drives)
        self.swarm = self.scheduler == "swarm"
        self.orphan_grace = (
            orphan_grace if orphan_grace is not None
            else dag_config.orphan_grace_s
        )
        self.claimed_grace_factor = dag_config.claimed_grace_factor
        self._policy = RetryPolicy(
            executor.config.retry, seed=executor.environment.seed
        )
        #: the executor's event journal (``None`` when events are off or
        #: this is an in-cloud executor); when set, node readiness is
        #: judged by the :class:`~repro.events.TriggerEngine` fed from
        #: journaled commits instead of the in-memory unresolved counter
        self.journal = executor.journal
        self.engine = None
        if self.journal is not None:
            from repro.events.triggers import TriggerEngine

            self.engine = TriggerEngine()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, dag: Dag) -> DagRun:
        """Upload all nodes, invoke the roots, start the watcher."""
        with self.executor._trace_scope():
            return self._submit_inner(dag)

    def _submit_inner(self, dag: Dag) -> DagRun:
        executor = self.executor
        executor._check_client()
        seq = getattr(executor, "_dag_seq", 0)
        executor._dag_seq = seq + 1
        dag_id = f"dag{seq:03d}"
        run = DagRun(dag, self, dag_id)

        for node in dag.nodes:
            if node.external:
                if node.external_future is None:
                    raise ValueError(f"external node {node.name!r} has no future")
                node.future = node.external_future
                node.state = NodeState.SUBMITTED

        internal = dag.internal_nodes
        self._validate_functions(internal)

        # One callset per topological level; payloads for level N embed the
        # futures created for level N-1, so prepare in ascending order.
        by_level: dict[int, list[DagNode]] = {}
        for node in internal:
            by_level.setdefault(node.level, []).append(node)
        for level in sorted(by_level):
            nodes = sorted(by_level[level], key=lambda n: n.node_id)
            payloads = [self._payload(node) for node in nodes]
            _, calls, futures = executor._prepare_calls(
                _dag_node_call,
                items=payloads,
                label=self.label,
                retries=self.retries,
            )
            for node, future, params in zip(nodes, futures, calls):
                node.future = future
                node.call_params = params
                node.state = (
                    NodeState.READY if node.unresolved == 0 else NodeState.PENDING
                )

        if self.swarm:
            self._ship_schedule(dag, dag_id)

        tracer = executor.tracer
        if tracer is not None and tracer.enabled:
            attrs = dict(
                nodes=len(dag.nodes),
                activations=len(internal),
                levels=len(by_level),
            )
            if self.swarm:
                # swarm-only attribute: centralized submits stay
                # byte-identical to pre-swarm traces
                attrs["scheduler"] = self.scheduler
            tracer.point(
                "dag.submit", "dag",
                ids={"executor_id": executor.executor_id, "dag_id": dag_id},
                **attrs,
            )

        if self.journal is not None:
            # Journal the graph's edges as trigger rules.  Replay folds
            # these back into a TriggerEngine, which is how a resumed
            # driver knows "when all N map statuses commit, fire the
            # reducer" without any surviving in-memory watcher state.
            from repro.events import records as ev

            specs = []
            for node in dag.nodes:
                future = node.future
                key = [future.callset_id, future.call_id]
                deps = [
                    [d.future.callset_id, d.future.call_id] for d in node.deps
                ]
                specs.append({
                    "call": key,
                    "deps": deps,
                    "name": node.display_name,
                    "external": bool(node.external),
                    "retries": future.max_retries,
                })
                if not node.external and node.deps:
                    self.engine.add_rule(tuple(key), [tuple(d) for d in deps])
            self.journal.append(
                ev.DAG_SUBMITTED,
                dag_id=dag_id,
                label=self.label,
                node_retries=self.node_retries,
                nodes=specs,
            )

        # First round runs synchronously in the caller: roots are in flight
        # before submit() returns, exactly like a plain executor.map.
        self._round(run)
        if not run.finished:
            self.kernel.spawn_model(
                self._watch_steps, run, name=f"dag-watch-{dag_id}"
            )
        return run

    def _validate_functions(self, nodes: list[DagNode]) -> None:
        import types as _types

        executor = self.executor
        if not executor.config.validate_runtime_packages:
            return
        from repro.core.modules import validate_runtime

        for node in nodes:
            for fn in node.fns:
                if isinstance(fn, _types.FunctionType):
                    validate_runtime(fn, executor._runtime_image)

    def _ship_schedule(self, dag: Dag, dag_id: str) -> None:
        """Stamp params with their swarm fan-out and ship the schedule.

        The stamp rides inside every node's call parameters (so both
        client- and worker-issued invocations carry it), then the frozen
        schedule — stamped params included — goes to COS as one object.
        Workers whose node has no drivable dependents skip the schedule
        fetch entirely thanks to the ``fan_out`` field.
        """
        from repro.dag import swarm as _swarm

        executor = self.executor
        for node in dag.internal_nodes:
            fan_out = sum(
                1 for dep in node.dependents if _swarm.is_drivable(dep)
            )
            params = {
                **node.call_params,
                "swarm": {"dag_id": dag_id, "fan_out": fan_out},
            }
            node.call_params = params
            node.future._call_params = params
        schedule = _swarm.build_schedule(
            dag, dag_id,
            namespace=executor.config.namespace,
            action=executor._runner_action,
        )
        executor._storage.put_swarm_schedule(
            executor.executor_id, dag_id, schedule
        )

    def _payload(self, node: DagNode) -> dict[str, Any]:
        payload: dict[str, Any] = {"mode": node.mode, "fns": node.fns}
        if node.mode == ARG_VALUE:
            payload["value"] = node.value
        else:
            payload["futures"] = [dep.future for dep in node.deps]
            payload["poll_interval"] = self.executor.config.poll_interval
        return payload

    # ------------------------------------------------------------------
    # Dependency watcher
    # ------------------------------------------------------------------
    def _watch_steps(self, run: DagRun):
        """Model task: wake each poll interval, run one round off-thread.

        The round itself uses the blocking storage/gateway APIs, so it runs
        as a short-lived thread task; between rounds no OS thread is held.
        """
        while not run.finished:
            yield vsleep(self.poll_interval)
            if self._client_dead():
                # The driver died (client-crash chaos): the watcher dies
                # with it, silently, leaving the DAG orphaned exactly as a
                # real process crash would.  reattach() adopts it later.
                return
            task = self.kernel.spawn(
                self._round_guard, run, name=f"dag-round-{run.dag_id}"
            )
            yield vjoin(task)
            if run.error is not None:
                break

    def _client_dead(self) -> bool:
        """Whether client-crash chaos has already killed this driver."""
        executor = self.executor
        if executor.in_cloud:
            return False
        chaos = getattr(executor.environment, "chaos", None)
        return chaos is not None and chaos.client_dead(
            executor._chaos_epoch, self.kernel.now()
        )

    def _round_guard(self, run: DagRun) -> None:
        try:
            self._round(run)
        except BaseException as exc:
            # A broken round must not leave waiters pending forever in
            # virtual time: fail every unfinished node, then surface.
            run.error = exc
            self._abort(run, f"DAG scheduler aborted: {exc!r}")

    def _round(self, run: DagRun) -> None:
        executor = self.executor
        if self._client_dead():
            # the driver died while this round was in flight: a real crash
            # stops mid-round, so do nothing more (no invokes, no burials,
            # no journal appends) and let the watcher notice and exit
            return
        with executor._trace_scope():
            self._poll(run)
            if executor._recover_lost_enabled:
                in_flight = [
                    n.future
                    for n in run.dag.nodes
                    if n.state == NodeState.SUBMITTED and not n.external
                ]
                if in_flight:
                    executor._recover_lost(in_flight)
                    # recovery buries exhausted calls by ingesting a
                    # synthetic status directly — pick those up now
                    for node in run.dag.nodes:
                        if (
                            node.state == NodeState.SUBMITTED
                            and node.future._status is not None
                        ):
                            self._complete(run, node)
            self._submit_ready(run)
            self._journal_flush(run)
            if run.finished:
                run._finish()

    def _journal_flush(self, run: DagRun) -> None:
        """Batch-append this round's transitions (O(rounds) journal cost)."""
        if self.journal is None:
            return
        from repro.events import records as ev

        if run._obs_batch:
            self.journal.append(
                ev.STATUS_OBSERVED, dag_id=run.dag_id, calls=run._obs_batch
            )
            run._obs_batch = []
        if run._buried_batch:
            self.journal.append(
                ev.NODE_BURIED, dag_id=run.dag_id, calls=run._buried_batch
            )
            run._buried_batch = []
        if run._fired_batch:
            self.journal.append(
                ev.NODE_FIRED, dag_id=run.dag_id, calls=run._fired_batch
            )
            run._fired_batch = []

    def _poll(self, run: DagRun) -> None:
        """One LIST per in-flight callset, then judge newly-done nodes."""
        storage = self.executor._storage
        groups: dict[tuple[str, str], list[DagNode]] = {}
        for node in run.dag.nodes:
            if node.state not in NodeState.IN_FLIGHT:
                continue
            future = node.future
            groups.setdefault(
                (future.executor_id, future.callset_id), []
            ).append(node)
        for key in sorted(groups):
            nodes = groups[key]
            if all(
                n.future._status is not None
                or getattr(n.future, "_status_seen", False)
                for n in nodes
            ):
                done_ids = None  # statuses already known; skip the LIST
            else:
                done_ids = storage.list_done_call_ids(*key)
            for node in nodes:
                future = node.future
                if (
                    future._status is not None
                    or getattr(future, "_status_seen", False)
                    or (done_ids is not None and future.call_id in done_ids)
                ):
                    self._complete(run, node)

    def _complete(self, run: DagRun, node: DagNode) -> None:
        future = node.future
        if future._status is None:
            status = self.executor._storage.get_status(
                future.executor_id, future.callset_id, future.call_id
            )
            if status is None:
                return  # raced a partial commit; next round sees it
            future._ingest_status(status)
        status = future._status
        success = bool(status.get("success"))
        if self.engine is not None:
            key = (future.callset_id, future.call_id)
            self.engine.note_commit(key, success)
            if key not in self.executor._journal_seen:
                self.executor._journal_seen.add(key)
                run._obs_batch.append([key[0], key[1], success])
        if success:
            node.state = NodeState.DONE
            _locality.record_invoker(node, status)
            self._trace_node(run, node, status, "done")
            for dependent in node.dependents:
                dependent.unresolved -= 1
                if dependent.state == NodeState.PENDING and self._node_ready(
                    dependent
                ):
                    dependent.state = self._ready_state(dependent)
        else:
            self._on_failure(run, node, status)

    def _ready_state(self, node: DagNode) -> str:
        """Where a dependency-complete node goes next.

        Centralized: READY, the next ``_submit_ready`` invokes it.  Swarm:
        drivable nodes are the finishing worker's job — DELEGATED starts
        the orphan-grace clock instead of an invocation; only nodes with
        external dependencies (invisible to workers) stay supervisor-fired.
        """
        if self.swarm:
            from repro import vtime
            from repro.dag import swarm as _swarm

            if _swarm.is_drivable(node):
                node.swarm_ready_at = vtime.now()
                return NodeState.DELEGATED
        return NodeState.READY

    def _node_ready(self, node: DagNode) -> bool:
        """Readiness of a pending node after one of its deps resolved.

        With the journal on, readiness is the TriggerEngine's call — the
        same log-derived judgement a resumed driver would make — instead
        of the in-memory ``unresolved`` counter.
        """
        if self.engine is not None:
            key = (node.future.callset_id, node.future.call_id)
            if self.engine.rule_for(key) is not None:
                return self.engine.satisfied(key)
        return node.unresolved == 0

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_failure(self, run: DagRun, node: DagNode, status: dict) -> None:
        from repro import vtime

        executor = self.executor
        if (
            not node.external
            and not status.get("lost")
            and node.error_attempts < self.node_retries
        ):
            node.error_attempts += 1
            self._reset_for_retry(node)
            node.retry_at = vtime.now() + self._policy.backoff(node.error_attempts)
            node.state = NodeState.READY
            executor._retries_total += 1
            tracer = executor.tracer
            if tracer is not None and tracer.enabled:
                future = node.future
                tracer.point(
                    "dag.retry", "dag",
                    ids={
                        "executor_id": future.executor_id,
                        "callset_id": future.callset_id,
                        "call_id": future.call_id,
                        "dag_id": run.dag_id,
                    },
                    node=node.display_name,
                    attempt=node.error_attempts,
                )
            return
        node.state = NodeState.FAILED
        self._trace_node(run, node, status, "failed")
        self._bury_dependents(run, node, status)

    def _reset_for_retry(self, node: DagNode) -> None:
        """Same reset as ``retry_failed``: clear state, drop stale objects."""
        from repro.cos.errors import NoSuchKey

        executor = self.executor
        future = node.future
        future._status = None
        future._status_seen = False
        future._value_loaded = False
        future._value = None
        future._state = "invoked"
        executor._push_buffer.pop((future.callset_id, future.call_id), None)
        for key in (
            executor._storage.status_key(
                future.executor_id, future.callset_id, future.call_id
            ),
            executor._storage.result_key(
                future.executor_id, future.callset_id, future.call_id
            ),
        ):
            try:
                executor._cos.delete_object(executor.config.storage_bucket, key)
            except NoSuchKey:
                pass
            # the retry will rewrite these objects; stale exchange-tier
            # copies on other nodes must not satisfy future reads
            executor.environment.exchange.invalidate(key)

    def _bury_dependents(self, run: DagRun, node: DagNode, status: dict) -> None:
        reason = (
            f"upstream DAG node '{node.display_name}' failed: "
            f"{status.get('error')}"
        )
        queue = list(node.dependents)
        while queue:
            dependent = queue.pop(0)
            if dependent.state in NodeState.TERMINAL:
                continue
            self._bury_node(run, dependent, reason)
            queue.extend(dependent.dependents)

    def _abort(self, run: DagRun, reason: str) -> None:
        for node in run.dag.nodes:
            if node.state not in NodeState.TERMINAL:
                self._bury_node(run, node, reason)
        self._journal_flush(run)
        run._finish()

    def _bury_node(self, run: DagRun, node: DagNode, reason: str) -> None:
        """Synthesize an error status so every waiter unblocks.

        Result first, then the conditional status commit (the worker's
        ordering): if a real status landed in the meantime the commit
        loses and the real outcome wins.
        """
        from repro import vtime

        storage = self.executor._storage
        future = node.future
        node.state = NodeState.FAILED
        now = vtime.now()
        storage.put_result(
            future.executor_id, future.callset_id, future.call_id, (None, reason)
        )
        status = {
            "executor_id": future.executor_id,
            "callset_id": future.callset_id,
            "call_id": future.call_id,
            "success": False,
            "error": reason,
            "buried": True,
            "start_time": now,
            "end_time": now,
            "activation_id": None,
            "container_id": None,
            "cold_start": False,
        }
        if storage.commit_status(
            future.executor_id, future.callset_id, future.call_id, status
        ):
            future._ingest_status(status)
        else:
            future._status_seen = True  # a real status exists; use it
        if self.engine is not None:
            key = (future.callset_id, future.call_id)
            self.engine.note_commit(key, False)
            self.executor._journal_seen.add(key)
            run._buried_batch.append([key[0], key[1]])
        self._trace_node(run, node, status, "buried")

    # ------------------------------------------------------------------
    # Node submission
    # ------------------------------------------------------------------
    def _submit_ready(self, run: DagRun) -> None:
        from repro import vtime

        executor = self.executor
        now = vtime.now()
        if self.swarm:
            self._redrive_orphans(run, now)
        ready = sorted(
            (
                n
                for n in run.dag.nodes
                if n.state == NodeState.READY and n.retry_at <= now
            ),
            key=lambda n: n.node_id,
        )
        if not ready:
            return
        calls: list[dict[str, Any]] = []
        futures = []
        for node in ready:
            params = node.call_params
            if self.locality:
                hint = _locality.placement_hint(
                    node,
                    exchange=executor.environment.exchange,
                    storage=executor._storage,
                )
                if hint is not None:
                    params = {**params, "placement_hint": hint}
                    node.call_params = params
                    node.future._call_params = params
            node.state = NodeState.SUBMITTED
            node.submit_time = now
            calls.append(params)
            futures.append(node.future)
        executor._make_invoker().invoke_calls(
            executor.config.namespace, executor._runner_action, calls, futures
        )
        if self.engine is not None:
            for future in futures:
                key = (future.callset_id, future.call_id)
                self.engine.mark_fired(key)
                run._fired_batch.append(
                    [key[0], key[1], future.activation_id,
                     max(1, future.invoke_count)]
                )

    def _redrive_orphans(self, run: DagRun, now: float) -> None:
        """Adopt delegated nodes whose handoff never produced a status.

        A worker that died between committing its own status and invoking
        a ready dependent (or whose invoked dependent activation was lost
        before the gateway recorded it for the client) leaves the node
        orphaned: dependency-complete, durable markers on COS, no status,
        and no activation id the lost-call scan could poll.  After the
        orphan grace the supervisor demotes the node to READY and invokes
        it itself — the at-most-once status commit makes this safe even
        if the worker-side invocation is merely slow.

        A status only appears at *completion*, so a long-running node
        would look orphaned too.  Before re-driving, the supervisor
        checks the node's fire token (one client GET, at most once per
        node): a claimed token means a worker committed to the
        invocation and the node is almost certainly running, so the fuse
        stretches to ``orphan_grace * claimed_grace_factor`` — long
        enough not to duplicate healthy work, finite so a worker that
        crashed between claim and invoke still gets covered.
        """
        from repro.dag import swarm as _swarm

        tracer = self.executor.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        for node in run.dag.nodes:
            if node.state != NodeState.DELEGATED:
                continue
            deadline = self.orphan_grace
            if node.swarm_token_seen:
                deadline *= self.claimed_grace_factor
            if now - node.swarm_ready_at < deadline:
                continue
            if not node.swarm_token_seen:
                future = node.future
                claimed = self.executor._storage.swarm_token_claimed(
                    future.executor_id,
                    run.dag_id,
                    _swarm.node_key(future.callset_id, future.call_id),
                )
                if claimed:
                    node.swarm_token_seen = True
                    continue
            node.state = NodeState.READY
            if tracer is not None:
                future = node.future
                tracer.point(
                    "swarm.redrive", "swarm",
                    ids={
                        "executor_id": future.executor_id,
                        "callset_id": future.callset_id,
                        "call_id": future.call_id,
                        "dag_id": run.dag_id,
                    },
                    node=node.display_name,
                    waited=round(now - node.swarm_ready_at, 6),
                    claimed=node.swarm_token_seen,
                )

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _trace_node(
        self, run: DagRun, node: DagNode, status: dict, outcome: str
    ) -> None:
        tracer = self.executor.tracer
        if tracer is None or not tracer.enabled:
            return
        future = node.future
        start = status.get("start_time")
        end = status.get("end_time")
        if start is None or end is None:
            from repro import vtime

            start = node.submit_time
            end = vtime.now()
        tracer.span_at(
            "dag.node", "dag", start, end,
            ids={
                "executor_id": future.executor_id,
                "callset_id": future.callset_id,
                "call_id": future.call_id,
                "dag_id": run.dag_id,
            },
            node=node.display_name,
            stage=run.dag.stage_name(node),
            level=node.level,
            outcome=outcome,
        )
