"""DAG node model: handles returned by :class:`repro.dag.DagBuilder`.

A node names one unit of work — a function (or a fused chain of
functions) applied to either a literal payload or the results of its
dependency nodes.  Edges are *data* dependencies: a node becomes ready
the moment every in-edge has resolved, which is what lets the scheduler
hand stages off without a client-side barrier.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

# How a node's single positional argument is assembled at execution time.
ARG_VALUE = "value"        # the literal payload shipped with the node
ARG_DEP = "dep"            # the (single) dependency's result
ARG_DEPS = "deps"          # list of dependency results, in edge order
ARG_FUTURES = "futures"    # list of the dependencies' resolved futures
ARG_EXTERNAL = "external"  # wraps an already-submitted ResponseFuture

_ARG_MODES = (ARG_VALUE, ARG_DEP, ARG_DEPS, ARG_FUTURES, ARG_EXTERNAL)


class NodeState:
    """Lifecycle of a node inside a running DAG."""

    PENDING = "pending"      # waiting on at least one dependency
    READY = "ready"          # all in-edges resolved, not yet invoked
    SUBMITTED = "submitted"  # invocation in flight
    #: swarm mode only: all in-edges resolved and the invocation is the
    #: finishing *worker's* job — the supervisor just watches for the
    #: status, re-driving the node itself if none appears within the
    #: orphan grace (worker died mid-handoff)
    DELEGATED = "delegated"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = (DONE, FAILED)
    #: believed in flight somewhere in the cloud
    IN_FLIGHT = (SUBMITTED, DELEGATED)


class DagNode:
    """One vertex of a :class:`repro.dag.Dag`; returned by builder calls.

    Treat instances as opaque handles: pass them back into the builder
    (``builder.reduce(fn, [a, b])``) or chain with :meth:`then`.  After
    :meth:`DagBuilder.build` the scheduler owns all mutable state.
    """

    __slots__ = (
        "node_id", "name", "stage", "fns", "mode", "value", "deps",
        "dependents", "fusable", "metadata", "external_future", "_builder",
        # runtime fields, owned by the scheduler
        "state", "future", "call_params", "level", "unresolved",
        "error_attempts", "retry_at", "invoker_id", "submit_time",
        "swarm_ready_at", "swarm_token_seen",
    )

    def __init__(
        self,
        builder,
        node_id: int,
        fn: Optional[Callable[[Any], Any]],
        mode: str,
        *,
        value: Any = None,
        deps: Optional[list["DagNode"]] = None,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        fusable: bool = True,
        external_future: Any = None,
    ) -> None:
        if mode not in _ARG_MODES:
            raise ValueError(f"unknown arg mode {mode!r}")
        self._builder = builder
        self.node_id = node_id
        self.fns: list[Callable[[Any], Any]] = [fn] if fn is not None else []
        self.mode = mode
        self.value = value
        self.deps: list[DagNode] = list(deps or [])
        self.dependents: list[DagNode] = []
        self.fusable = bool(fusable)
        self.stage = stage
        self.metadata: dict[str, Any] = {}
        self.external_future = external_future
        if name is not None:
            self.name = name
        elif fn is not None:
            self.name = getattr(fn, "__name__", "fn")
        else:
            self.name = "external"

        self.state = NodeState.PENDING
        self.future = None
        self.call_params = None
        self.level = 0
        self.unresolved = 0
        self.error_attempts = 0
        self.retry_at = 0.0
        self.invoker_id: Optional[int] = None
        self.submit_time = 0.0
        #: swarm mode: when the supervisor saw the last dependency commit
        #: (start of the orphan-grace clock); 0.0 until then
        self.swarm_ready_at = 0.0
        #: swarm mode: the supervisor observed a claimed fire token for
        #: this node, i.e. some worker committed to invoking it
        self.swarm_token_seen = False

    # -- builder sugar -------------------------------------------------------
    def then(
        self,
        fn: Callable[[Any], Any],
        *,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        fusable: bool = True,
    ) -> "DagNode":
        """Chain ``fn`` after this node (``fn ∘ self``); returns the new node."""
        return self._builder.then(
            self, fn, name=name, stage=stage, fusable=fusable
        )

    # -- introspection -------------------------------------------------------
    @property
    def external(self) -> bool:
        return self.mode == ARG_EXTERNAL

    @property
    def display_name(self) -> str:
        """Fusion-aware label: ``g∘f`` when two functions share the node."""
        if len(self.fns) > 1:
            return "∘".join(
                getattr(fn, "__name__", "fn") for fn in reversed(self.fns)
            )
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DagNode({self.node_id}, {self.display_name!r}, mode={self.mode},"
            f" deps={[d.node_id for d in self.deps]}, state={self.state})"
        )
