"""Declarative DAG construction: :class:`DagBuilder` and :class:`Dag`.

The builder's verbs mirror the executor API (``call``/``map``/``reduce``)
but return :class:`~repro.dag.node.DagNode` handles instead of futures —
edges between handles are data dependencies, and nothing runs until a
:class:`~repro.dag.scheduler.DagScheduler` submits the built graph.

``build()`` also performs *fusion*: a linear ``f2 ∘ f1`` chain (single
producer whose only consumer takes exactly that producer's result)
collapses into one node running both functions in a single activation,
skipping the intermediate COS round-trip entirely.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.dag.node import (
    ARG_DEP,
    ARG_DEPS,
    ARG_EXTERNAL,
    ARG_FUTURES,
    ARG_VALUE,
    DagNode,
)


class DagBuilder:
    """Accumulates nodes; ``build()`` freezes them into a :class:`Dag`."""

    def __init__(self) -> None:
        self._nodes: list[DagNode] = []
        self._built = False

    # -- construction verbs --------------------------------------------------
    def call(
        self,
        fn: Callable[[Any], Any],
        data: Any = None,
        *,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        fusable: bool = True,
    ) -> DagNode:
        """A single function application.

        ``data`` may be a plain value (shipped with the node) or another
        :class:`DagNode`, in which case the new node consumes its result.
        """
        if isinstance(data, DagNode):
            return self.then(data, fn, name=name, stage=stage, fusable=fusable)
        return self._add(
            DagNode(
                self, len(self._nodes), fn, ARG_VALUE,
                value=data, name=name, stage=stage, fusable=fusable,
            )
        )

    def map(
        self,
        fn: Callable[[Any], Any],
        iterdata: Iterable[Any],
        *,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        fusable: bool = True,
    ) -> list[DagNode]:
        """One node per element; elements may themselves be nodes."""
        base = name or getattr(fn, "__name__", "fn")
        out = []
        for i, item in enumerate(iterdata):
            out.append(
                self.call(
                    fn, item, name=f"{base}[{i}]", stage=stage, fusable=fusable
                )
            )
        return out

    def reduce(
        self,
        fn: Callable[..., Any],
        nodes: Iterable[DagNode],
        *,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        fusable: bool = True,
        pass_futures: bool = False,
    ) -> DagNode:
        """A node consuming *all* of ``nodes``.

        By default ``fn`` receives the list of dependency results in edge
        order.  With ``pass_futures=True`` it instead receives the resolved
        :class:`~repro.core.futures.ResponseFuture` handles — the shuffle
        reducers use this to fetch their partitions by (callset, call) id
        without re-downloading every map result.
        """
        deps = list(nodes)
        if not deps:
            raise ValueError("reduce() needs at least one input node")
        self._check_foreign(deps)
        mode = ARG_FUTURES if pass_futures else ARG_DEPS
        return self._add(
            DagNode(
                self, len(self._nodes), fn, mode,
                deps=deps, name=name, stage=stage, fusable=fusable,
            )
        )

    def then(
        self,
        node: DagNode,
        fn: Callable[[Any], Any],
        *,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        fusable: bool = True,
    ) -> DagNode:
        """Chain ``fn`` after ``node``: the new node gets its result."""
        self._check_foreign([node])
        return self._add(
            DagNode(
                self, len(self._nodes), fn, ARG_DEP,
                deps=[node], name=name, stage=stage, fusable=fusable,
            )
        )

    def external(
        self,
        future,
        *,
        name: Optional[str] = None,
        stage: Optional[str] = None,
    ) -> DagNode:
        """Adopt an already-submitted future as a level-0 graph node.

        Lets DAG stages depend on work launched through the plain executor
        API (e.g. reducers over ``executor.map`` futures).
        """
        return self._add(
            DagNode(
                self, len(self._nodes), None, ARG_EXTERNAL,
                name=name, stage=stage, fusable=False,
                external_future=future,
            )
        )

    # -- freeze --------------------------------------------------------------
    def build(self, fuse: bool = True) -> "Dag":
        """Validate, optionally fuse linear chains, and compute levels."""
        if self._built:
            raise ValueError("DagBuilder.build() may only be called once")
        self._built = True
        nodes = list(self._nodes)
        for node in nodes:
            for dep in node.deps:
                dep.dependents.append(node)
        if fuse:
            nodes = _fuse_chains(nodes)
        _compute_levels(nodes)
        return Dag(nodes)

    def submit(
        self,
        executor,
        *,
        fuse: bool = True,
        scheduler: Optional[str] = None,
        **scheduler_kwargs,
    ):
        """Build and submit in one call; returns the :class:`DagRun`.

        ``scheduler`` picks the driving mode per submission —
        ``"centralized"`` (default) or ``"swarm"`` — overriding the
        executor's :class:`~repro.config.DagConfig`; the remaining
        keyword arguments go to :class:`~repro.dag.DagScheduler` (e.g.
        ``node_retries``, ``poll_interval``).  The built graph stays
        reachable as ``run.dag``.
        """
        from repro.dag.scheduler import DagScheduler

        if scheduler is not None:
            scheduler_kwargs["scheduler"] = scheduler
        dag = self.build(fuse=fuse)
        return DagScheduler(executor, **scheduler_kwargs).submit(dag)

    # -- internals -----------------------------------------------------------
    def _add(self, node: DagNode) -> DagNode:
        if self._built:
            raise ValueError("cannot add nodes after build()")
        self._nodes.append(node)
        return node

    def _check_foreign(self, deps: list[DagNode]) -> None:
        for dep in deps:
            if dep._builder is not self:
                raise ValueError(
                    f"node {dep.name!r} belongs to a different DagBuilder"
                )


def _fuse_chains(nodes: list[DagNode]) -> list[DagNode]:
    """Collapse linear ``producer -> consumer`` edges into single nodes.

    An edge fuses when the consumer takes exactly the producer's result
    (mode ``dep``), the producer feeds nothing else, and both sides opted
    in.  The consumer absorbs the producer: it inherits the producer's
    functions (run first), argument mode, payload, and in-edges.  Applied
    repeatedly, a whole ``f1 -> f2 -> f3`` chain becomes one activation.
    """
    removed: set[int] = set()
    changed = True
    while changed:
        changed = False
        for consumer in nodes:
            if consumer.node_id in removed or consumer.mode != ARG_DEP:
                continue
            if len(consumer.deps) != 1 or not consumer.fusable:
                continue
            producer = consumer.deps[0]
            if (
                producer.node_id in removed
                or not producer.fusable
                or producer.external
                or len(producer.dependents) != 1
            ):
                continue
            # consumer absorbs producer
            consumer.fns = producer.fns + consumer.fns
            consumer.mode = producer.mode
            consumer.value = producer.value
            consumer.deps = producer.deps
            for dep in consumer.deps:
                dep.dependents = [
                    consumer if d is producer else d for d in dep.dependents
                ]
            consumer.name = f"{producer.name}∘{consumer.name}"
            if consumer.stage is None:
                consumer.stage = producer.stage
            removed.add(producer.node_id)
            changed = True
    return [n for n in nodes if n.node_id not in removed]


def _compute_levels(nodes: list[DagNode]) -> None:
    """Topological levels: sources at 0, else 1 + max over in-edges.

    Builder order is already topological (a node can only depend on nodes
    created before it), so one forward pass suffices.
    """
    for node in nodes:
        node.unresolved = len(node.deps)
        node.level = (
            0 if not node.deps else 1 + max(d.level for d in node.deps)
        )


class Dag:
    """A frozen, validated graph ready for :class:`DagScheduler.submit`."""

    def __init__(self, nodes: list[DagNode]) -> None:
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def internal_nodes(self) -> list[DagNode]:
        """Nodes that require an activation (everything non-external)."""
        return [n for n in self.nodes if not n.external]

    def levels(self) -> list[list[DagNode]]:
        """Nodes grouped by topological level, ascending."""
        by_level: dict[int, list[DagNode]] = {}
        for node in self.nodes:
            by_level.setdefault(node.level, []).append(node)
        return [by_level[level] for level in sorted(by_level)]

    def stage_name(self, node: DagNode) -> str:
        """Display stage: the user label, else ``stage<level>``."""
        return node.stage if node.stage is not None else f"stage{node.level}"
