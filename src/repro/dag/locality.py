"""Locality-aware placement hints for DAG nodes.

A node's inputs live in the warm containers (and their page caches) of
the invoker nodes that produced them.  When submitting a node, the
scheduler derives a *placement hint* — the ordered, de-duplicated list of
invoker nodes that ran its dependencies — and the controller's warm scan
tries those nodes first, so a chained function lands next to its data
(Wukong-style task cluster locality) instead of wherever round-robin
points.
"""

from __future__ import annotations

from typing import Optional

from repro.dag.node import DagNode

#: cap on hint length — beyond a few candidates the warm scan's fallback
#: round-robin is just as good and shorter params keep payloads small
MAX_HINT = 4


def placement_hint(node: DagNode, limit: int = MAX_HINT) -> Optional[list[int]]:
    """Invoker-node ids that produced ``node``'s inputs, dep order, deduped.

    Returns ``None`` when nothing useful is known (no dependencies, or the
    producing workers predate invoker-id stamping).
    """
    hint: list[int] = []
    seen: set[int] = set()
    for dep in node.deps:
        invoker = dep.invoker_id
        if invoker is None or invoker in seen:
            continue
        seen.add(invoker)
        hint.append(invoker)
        if len(hint) >= limit:
            break
    return hint or None


def record_invoker(node: DagNode, status: dict) -> None:
    """Remember which invoker node ran ``node`` (from its status dict)."""
    invoker = status.get("invoker_id")
    if isinstance(invoker, int):
        node.invoker_id = invoker
