"""Locality-aware placement hints for DAG nodes.

A node's inputs live in the warm containers (and their page caches) of
the invoker nodes that produced them.  When submitting a node, the
scheduler derives a *placement hint* — the ordered, de-duplicated list of
invoker nodes that ran its dependencies — and the controller's warm scan
tries those nodes first, so a chained function lands next to its data
(Wukong-style task cluster locality) instead of wherever round-robin
points.

With a locality-providing exchange backend attached (the cached-cos
tier) the hint gets sharper: instead of "the nodes that *ran* my
dependencies", it ranks candidates by how many of the node's input bytes
are still *resident* in each node's memory cache right now (a free
directory peek via :meth:`~repro.exchange.base.ExchangeBackend.locate` —
evictions, crashes and invalidations have already been applied), so the
warm scan aims at the node where a local cache hit is actually waiting.
Backends whose storage does not live on invoker nodes (direct COS, the
VM cluster) advertise ``provides_locality=False`` and the legacy
produced-here ordering applies.
"""

from __future__ import annotations

from typing import Optional

from repro.dag.node import DagNode

#: cap on hint length — beyond a few candidates the warm scan's fallback
#: round-robin is just as good and shorter params keep payloads small
MAX_HINT = 4


def placement_hint(
    node: DagNode,
    limit: int = MAX_HINT,
    exchange=None,
    storage=None,
) -> Optional[list[int]]:
    """Invoker-node ids that produced ``node``'s inputs, dep order, deduped.

    ``exchange`` (an :class:`~repro.exchange.base.ExchangeBackend` with
    ``provides_locality``) and ``storage`` (the executor's
    :class:`~repro.core.storage_client.InternalStorage`, for key
    construction) upgrade the ranking to cached-input residency: nodes
    holding more of this node's input bytes in memory come first, with the
    legacy produced-here order breaking ties.  Returns ``None`` when
    nothing useful is known (no dependencies, or the producing workers
    predate invoker-id stamping).
    """
    legacy: list[int] = []
    seen: set[int] = set()
    for dep in node.deps:
        invoker = dep.invoker_id
        if invoker is None or invoker in seen:
            continue
        seen.add(invoker)
        legacy.append(invoker)
    if (
        exchange is not None
        and storage is not None
        and exchange.provides_locality
    ):
        resident: dict[int, int] = {}
        for dep in node.deps:
            future = dep.future
            if future is None:
                continue
            key = storage.result_key(
                future.executor_id, future.callset_id, future.call_id
            )
            for node_id, nbytes in exchange.locate(key):
                resident[node_id] = resident.get(node_id, 0) + nbytes
        if resident:
            order = {node_id: i for i, node_id in enumerate(legacy)}
            ranked = sorted(
                resident,
                key=lambda n: (-resident[n], order.get(n, len(order)), n),
            )
            hint = ranked + [n for n in legacy if n not in resident]
            return hint[:limit] or None
    return legacy[:limit] or None


def record_invoker(node: DagNode, status: dict) -> None:
    """Remember which invoker node ran ``node`` (from its status dict)."""
    invoker = status.get("invoker_id")
    if isinstance(invoker, int):
        node.invoker_id = invoker
