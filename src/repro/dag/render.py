"""Graph rendering: Graphviz DOT text and a self-contained SVG layout.

The SVG needs no graphviz binary: nodes are laid out on a grid by
topological level (one row per level, builder order within a row), which
is exact for the stage-shaped graphs the builder produces.

Fused linear-chain groups (``build(fuse=True)``) render annotated: the
node label carries a ``⊕ fused ×N`` line and the box gets a double
border, so a collapsed ``f -> g -> h`` chain is visibly one activation.
Given a swarm trace (``invoked_by`` from :func:`swarm_invoked_by`), DOT
edges are additionally colored by the *invoking site* — the invoker node
whose worker fired the dependent — with the firing edge drawn bold, so
"who invoked whom" is readable straight off the graph.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from xml.sax.saxutils import escape

from repro.dag.graph import Dag
from repro.dag.node import DagNode

#: fill colors cycled per topological level (matches the trace SVG accents)
_LEVEL_FILLS = ("#dbeafe", "#dcfce7", "#fef9c3", "#fde2e2", "#ede9fe", "#e0f2fe")

#: edge colors cycled per invoking site (invoker node id) in swarm renders
_SITE_COLORS = (
    "#2563eb", "#16a34a", "#d97706", "#dc2626", "#7c3aed", "#0891b2",
    "#be185d", "#65a30d",
)


def _fill(level: int) -> str:
    return _LEVEL_FILLS[level % len(_LEVEL_FILLS)]


def _site_color(invoker_id: int) -> str:
    return _SITE_COLORS[invoker_id % len(_SITE_COLORS)]


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def swarm_invoked_by(events: Iterable[Any]) -> dict[str, dict[str, Any]]:
    """Extract "who invoked whom" from a swarm trace.

    Accepts :class:`~repro.trace.events.TraceEvent` objects (e.g. from
    ``repro.trace.export.from_jsonl``) and returns
    ``{node_display_name: {"by": firing_node_name, "invoker_id": site}}``
    for every ``swarm.invoke`` span — the mapping :func:`to_dot` takes to
    color edges by invoking site.
    """
    invoked: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.layer != "swarm" or event.name != "swarm.invoke":
            continue
        node = event.get_attr("node")
        if node is None:
            continue
        invoked[node] = {
            "by": event.get_attr("by"),
            "invoker_id": event.get_attr("invoker_id"),
        }
    return invoked


def _edge_attrs(
    dep: DagNode, node: DagNode, invoked_by: Optional[dict[str, dict[str, Any]]]
) -> str:
    if not invoked_by:
        return ""
    entry = invoked_by.get(node.display_name)
    if entry is None or entry.get("invoker_id") is None:
        return ""
    invoker = entry["invoker_id"]
    attrs = [f'color="{_site_color(invoker)}"']
    if entry.get("by") == dep.display_name:
        # the edge whose worker actually fired this node
        attrs.append("penwidth=2.2")
        attrs.append(f'label={_dot_quote(f"inv{invoker}")}')
        attrs.append(f'fontcolor="{_site_color(invoker)}"')
    else:
        attrs.append('style="dashed"')
    return " [" + ", ".join(attrs) + "]"


def to_dot(
    dag: Dag,
    invoked_by: Optional[dict[str, dict[str, Any]]] = None,
) -> str:
    """Graphviz source for ``dag``; stages become same-rank clusters.

    ``invoked_by`` (see :func:`swarm_invoked_by`) colors each in-edge of
    a worker-fired node by its invoking site and bolds the firing edge.
    """
    lines = [
        "digraph dag {",
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fontname="Helvetica"];',
    ]
    for level_nodes in dag.levels():
        for node in level_nodes:
            label = f"{node.display_name}\\n[{dag.stage_name(node)}]"
            extra = ""
            if len(node.fns) > 1:
                label += f"\\n⊕ fused ×{len(node.fns)}"
                extra = ", peripheries=2"
            lines.append(
                f"  n{node.node_id} [label={_dot_quote(label)}"
                f', fillcolor="{_fill(node.level)}"{extra}];'
            )
        if len(level_nodes) > 1:
            rank = " ".join(f"n{n.node_id};" for n in level_nodes)
            lines.append(f"  {{ rank=same; {rank} }}")
    for node in dag.nodes:
        for dep in node.deps:
            attrs = _edge_attrs(dep, node, invoked_by)
            lines.append(f"  n{dep.node_id} -> n{node.node_id}{attrs};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_svg(dag: Dag) -> str:
    """Standalone SVG of the graph, one row per topological level."""
    box_w, box_h = 150, 44
    gap_x, gap_y = 30, 56
    margin = 24
    levels = dag.levels()
    widest = max((len(row) for row in levels), default=0)
    width = margin * 2 + max(widest, 1) * box_w + max(widest - 1, 0) * gap_x
    height = margin * 2 + len(levels) * box_h + max(len(levels) - 1, 0) * gap_y

    centers: dict[int, tuple[float, float]] = {}
    boxes: list[str] = []
    for row_index, row in enumerate(levels):
        row_width = len(row) * box_w + (len(row) - 1) * gap_x
        x0 = (width - row_width) / 2
        y = margin + row_index * (box_h + gap_y)
        for col, node in enumerate(row):
            x = x0 + col * (box_w + gap_x)
            centers[node.node_id] = (x + box_w / 2, y + box_h / 2)
            title = escape(f"{node.display_name} [{dag.stage_name(node)}]")
            stroke_w = ""
            if len(node.fns) > 1:
                title = escape(
                    f"{node.display_name} [{dag.stage_name(node)}]"
                    f" — fused ×{len(node.fns)}"
                )
                stroke_w = ' stroke-width="2.5"'
            boxes.append(
                f'<g><rect x="{x:.1f}" y="{y:.1f}" width="{box_w}" '
                f'height="{box_h}" rx="8" fill="{_fill(node.level)}" '
                f'stroke="#64748b"{stroke_w}/>'
                f'<text x="{x + box_w / 2:.1f}" y="{y + box_h / 2 - 3:.1f}" '
                f'text-anchor="middle" font-size="12" '
                f'font-family="Helvetica,sans-serif">'
                f"{escape(_clip(node.display_name))}</text>"
                f'<text x="{x + box_w / 2:.1f}" y="{y + box_h / 2 + 13:.1f}" '
                f'text-anchor="middle" font-size="10" fill="#475569" '
                f'font-family="Helvetica,sans-serif">'
                f"{escape(dag.stage_name(node))}</text>"
                f"<title>{title}</title></g>"
            )

    edges: list[str] = []
    for node in dag.nodes:
        x1, y1 = centers[node.node_id]
        for dep in node.deps:
            x0, y0 = centers[dep.node_id]
            edges.append(
                f'<line x1="{x0:.1f}" y1="{y0 + box_h / 2:.1f}" '
                f'x2="{x1:.1f}" y2="{y1 - box_h / 2:.1f}" '
                f'stroke="#94a3b8" marker-end="url(#arrow)"/>'
            )

    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        "<defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" "
        "refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" orient=\"auto\">"
        '<path d="M0,0 L10,5 L0,10 z" fill="#94a3b8"/></marker></defs>'
        f'<rect width="{width}" height="{height}" fill="white"/>'
        + "".join(edges)
        + "".join(boxes)
        + "</svg>"
    )


def _clip(text: str, limit: int = 20) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def describe(dag: Dag) -> str:
    """One-line-per-node text rendering (used by the CLI)."""
    lines = []
    for row_index, row in enumerate(dag.levels()):
        names = ", ".join(_node_desc(dag, node) for node in row)
        lines.append(f"level {row_index}: {names}")
    return "\n".join(lines)


def _node_desc(dag: Dag, node: DagNode) -> str:
    deps = (
        "(" + ",".join(str(d.node_id) for d in node.deps) + ")"
        if node.deps
        else ""
    )
    return f"#{node.node_id} {node.display_name}{deps}"
