"""Graph rendering: Graphviz DOT text and a self-contained SVG layout.

The SVG needs no graphviz binary: nodes are laid out on a grid by
topological level (one row per level, builder order within a row), which
is exact for the stage-shaped graphs the builder produces.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.dag.graph import Dag
from repro.dag.node import DagNode

#: fill colors cycled per topological level (matches the trace SVG accents)
_LEVEL_FILLS = ("#dbeafe", "#dcfce7", "#fef9c3", "#fde2e2", "#ede9fe", "#e0f2fe")


def _fill(level: int) -> str:
    return _LEVEL_FILLS[level % len(_LEVEL_FILLS)]


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(dag: Dag) -> str:
    """Graphviz source for ``dag``; stages become same-rank clusters."""
    lines = [
        "digraph dag {",
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fontname="Helvetica"];',
    ]
    for level_nodes in dag.levels():
        for node in level_nodes:
            label = f"{node.display_name}\\n[{dag.stage_name(node)}]"
            lines.append(
                f"  n{node.node_id} [label={_dot_quote(label)}"
                f', fillcolor="{_fill(node.level)}"];'
            )
        if len(level_nodes) > 1:
            rank = " ".join(f"n{n.node_id};" for n in level_nodes)
            lines.append(f"  {{ rank=same; {rank} }}")
    for node in dag.nodes:
        for dep in node.deps:
            lines.append(f"  n{dep.node_id} -> n{node.node_id};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_svg(dag: Dag) -> str:
    """Standalone SVG of the graph, one row per topological level."""
    box_w, box_h = 150, 44
    gap_x, gap_y = 30, 56
    margin = 24
    levels = dag.levels()
    widest = max((len(row) for row in levels), default=0)
    width = margin * 2 + max(widest, 1) * box_w + max(widest - 1, 0) * gap_x
    height = margin * 2 + len(levels) * box_h + max(len(levels) - 1, 0) * gap_y

    centers: dict[int, tuple[float, float]] = {}
    boxes: list[str] = []
    for row_index, row in enumerate(levels):
        row_width = len(row) * box_w + (len(row) - 1) * gap_x
        x0 = (width - row_width) / 2
        y = margin + row_index * (box_h + gap_y)
        for col, node in enumerate(row):
            x = x0 + col * (box_w + gap_x)
            centers[node.node_id] = (x + box_w / 2, y + box_h / 2)
            title = escape(f"{node.display_name} [{dag.stage_name(node)}]")
            boxes.append(
                f'<g><rect x="{x:.1f}" y="{y:.1f}" width="{box_w}" '
                f'height="{box_h}" rx="8" fill="{_fill(node.level)}" '
                f'stroke="#64748b"/>'
                f'<text x="{x + box_w / 2:.1f}" y="{y + box_h / 2 - 3:.1f}" '
                f'text-anchor="middle" font-size="12" '
                f'font-family="Helvetica,sans-serif">'
                f"{escape(_clip(node.display_name))}</text>"
                f'<text x="{x + box_w / 2:.1f}" y="{y + box_h / 2 + 13:.1f}" '
                f'text-anchor="middle" font-size="10" fill="#475569" '
                f'font-family="Helvetica,sans-serif">'
                f"{escape(dag.stage_name(node))}</text>"
                f"<title>{title}</title></g>"
            )

    edges: list[str] = []
    for node in dag.nodes:
        x1, y1 = centers[node.node_id]
        for dep in node.deps:
            x0, y0 = centers[dep.node_id]
            edges.append(
                f'<line x1="{x0:.1f}" y1="{y0 + box_h / 2:.1f}" '
                f'x2="{x1:.1f}" y2="{y1 - box_h / 2:.1f}" '
                f'stroke="#94a3b8" marker-end="url(#arrow)"/>'
            )

    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        "<defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" "
        "refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" orient=\"auto\">"
        '<path d="M0,0 L10,5 L0,10 z" fill="#94a3b8"/></marker></defs>'
        f'<rect width="{width}" height="{height}" fill="white"/>'
        + "".join(edges)
        + "".join(boxes)
        + "</svg>"
    )


def _clip(text: str, limit: int = 20) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def describe(dag: Dag) -> str:
    """One-line-per-node text rendering (used by the CLI)."""
    lines = []
    for row_index, row in enumerate(dag.levels()):
        names = ", ".join(_node_desc(dag, node) for node in row)
        lines.append(f"level {row_index}: {names}")
    return "\n".join(lines)


def _node_desc(dag: Dag, node: DagNode) -> str:
    deps = (
        "(" + ",".join(str(d.node_id) for d in node.deps) + ")"
        if node.deps
        else ""
    )
    return f"#{node.node_id} {node.display_name}{deps}"
