"""repro.dag — serverless DAG workflow engine.

Declarative graph construction (:class:`DagBuilder`), barrier-free
dependency-driven scheduling on the virtual-time kernel
(:class:`DagScheduler`), locality-aware placement hints, linear-chain
fusion, graph rendering, and decentralized worker-driven scheduling
(:mod:`repro.dag.swarm`, opt-in via ``scheduler="swarm"``).  See
docs/ARCHITECTURE.md §8 and §9.
"""

from repro.dag.graph import Dag, DagBuilder
from repro.dag.node import DagNode, NodeState
from repro.dag.render import swarm_invoked_by, to_dot, to_svg
from repro.dag.scheduler import DagRun, DagScheduler
from repro.dag.swarm import build_schedule, swarm_handoff_steps

__all__ = [
    "Dag",
    "DagBuilder",
    "DagNode",
    "DagRun",
    "DagScheduler",
    "NodeState",
    "build_schedule",
    "swarm_handoff_steps",
    "swarm_invoked_by",
    "to_dot",
    "to_svg",
]
