"""repro.dag — serverless DAG workflow engine.

Declarative graph construction (:class:`DagBuilder`), barrier-free
dependency-driven scheduling on the virtual-time kernel
(:class:`DagScheduler`), locality-aware placement hints, linear-chain
fusion, and graph rendering.  See docs/ARCHITECTURE.md §8.
"""

from repro.dag.graph import Dag, DagBuilder
from repro.dag.node import DagNode, NodeState
from repro.dag.render import to_dot, to_svg
from repro.dag.scheduler import DagRun, DagScheduler

__all__ = [
    "Dag",
    "DagBuilder",
    "DagNode",
    "DagRun",
    "DagScheduler",
    "NodeState",
    "to_dot",
    "to_svg",
]
