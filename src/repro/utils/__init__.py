"""Small shared utilities."""

from repro.utils.ids import new_executor_id, new_hex_id
from repro.utils.sizes import format_size, parse_size

__all__ = ["new_executor_id", "new_hex_id", "parse_size", "format_size"]
