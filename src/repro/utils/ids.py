"""Identifier generation.

Executor ids track invocations and COS results per §4.1 ("Each executor
instance will generate a unique executor ID").  Ids are derived from a
process-wide counter plus a seeded suffix so simulations are reproducible.
"""

from __future__ import annotations

import hashlib
import itertools
import threading

_counter = itertools.count(1)
_lock = threading.Lock()


def new_hex_id(
    prefix: str, seed: int = 0, width: int = 8, serial: int | None = None
) -> str:
    """A unique, reproducible id like ``job-5f3a9c12``.

    With an explicit ``serial`` the id is a pure function of its inputs;
    otherwise a process-wide counter supplies one, which is unique but
    depends on everything else the process allocated before.
    """
    if serial is None:
        with _lock:
            serial = next(_counter)
    digest = hashlib.sha256(f"{prefix}:{seed}:{serial}".encode()).hexdigest()
    return f"{prefix}-{digest[:width]}"


def new_executor_id(seed: int = 0, serial: int | None = None) -> str:
    return new_hex_id("exec", seed, serial=serial)
