"""Human-friendly byte sizes ("64MB" <-> 67108864)."""

from __future__ import annotations

import re

_UNITS = {
    "": 1,
    "B": 1,
    "KB": 1024,
    "MB": 1024**2,
    "GB": 1024**3,
    "TB": 1024**4,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([KMGT]?B?)\s*$", re.IGNORECASE)


def parse_size(value) -> int:
    """Parse ``"64MB"``/``"1.9GB"``/``1024`` into bytes."""
    if isinstance(value, (int, float)):
        if value < 0:
            raise ValueError("size must be non-negative")
        return int(value)
    match = _SIZE_RE.match(str(value))
    if not match:
        raise ValueError(f"unparsable size: {value!r}")
    number, unit = match.groups()
    return int(float(number) * _UNITS[unit.upper()])


def format_size(nbytes: int) -> str:
    """Format bytes as the largest sensible unit (``67108864 -> '64.0MB'``)."""
    if nbytes < 0:
        raise ValueError("size must be non-negative")
    for unit in ("TB", "GB", "MB", "KB"):
        scale = _UNITS[unit]
        if nbytes >= scale:
            return f"{nbytes / scale:.1f}{unit}"
    return f"{nbytes}B"
