"""Errors raised by the emulated IBM Cloud Object Storage service."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage-service errors."""


class NoSuchBucket(StorageError):
    """The requested bucket does not exist."""


class BucketAlreadyExists(StorageError):
    """Attempted to create a bucket that already exists."""


class NoSuchKey(StorageError):
    """The requested object key does not exist in the bucket."""


class InvalidRange(StorageError):
    """A byte-range request fell outside the object."""


class ServiceUnavailable(StorageError):
    """HTTP 503: the service transiently refused the request (retryable)."""


class SlowDown(ServiceUnavailable):
    """S3/COS ``SlowDown`` pushback: the client is asked to reduce its
    request rate; retry after backing off."""


class PreconditionFailed(StorageError):
    """A conditional write (``If-None-Match: *``) lost the race: the key
    already exists.  Used for at-most-once status commits."""
