"""Emulated IBM Cloud Object Storage (COS)."""

from repro.cos.bucket import Bucket
from repro.cos.client import COSClient, ObjectSummary
from repro.cos.errors import (
    BucketAlreadyExists,
    InvalidRange,
    NoSuchBucket,
    NoSuchKey,
    PreconditionFailed,
    ServiceUnavailable,
    SlowDown,
    StorageError,
)
from repro.cos.obj import StoredObject
from repro.cos.object_store import CloudObjectStorage
from repro.cos.virtual import make_text_content_fn

__all__ = [
    "Bucket",
    "COSClient",
    "ObjectSummary",
    "StoredObject",
    "CloudObjectStorage",
    "make_text_content_fn",
    "StorageError",
    "NoSuchBucket",
    "NoSuchKey",
    "BucketAlreadyExists",
    "InvalidRange",
    "ServiceUnavailable",
    "SlowDown",
    "PreconditionFailed",
]
