"""The emulated IBM Cloud Object Storage service (data plane, no latency).

This is the authoritative store shared by every client in a simulation.
Latency/bandwidth accounting lives in :class:`repro.cos.client.COSClient`,
so the same store can be reached through different network paths (WAN
client vs in-cloud function), like the real service.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.cos.bucket import Bucket
from repro.cos.errors import (
    BucketAlreadyExists,
    NoSuchBucket,
    PreconditionFailed,
)
from repro.cos.obj import StoredObject
from repro.vtime import Kernel


class CloudObjectStorage:
    """Thread-safe bucket/object store with virtual-object support."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        #: optional :class:`repro.chaos.ChaosPlane`; COS clients consult it
        #: to inject transient 503/SlowDown errors and slow reads
        self.chaos = None
        #: optional :class:`repro.trace.Tracer`; COS clients emit ``cos.*``
        #: request spans onto it
        self.tracer = None
        self._buckets: dict[str, Bucket] = {}
        self._lock = threading.Lock()
        self._put_count = 0
        self._get_count = 0
        self._request_counts: dict[str, int] = {}

    # -- buckets -----------------------------------------------------------
    def create_bucket(self, name: str, exist_ok: bool = False) -> Bucket:
        if not name or "/" in name:
            raise ValueError(f"invalid bucket name: {name!r}")
        with self._lock:
            if name in self._buckets:
                if exist_ok:
                    return self._buckets[name]
                raise BucketAlreadyExists(name)
            bucket = Bucket(name)
            self._buckets[name] = bucket
            return bucket

    def delete_bucket(self, name: str) -> None:
        with self._lock:
            if name not in self._buckets:
                raise NoSuchBucket(name)
            del self._buckets[name]

    def bucket(self, name: str) -> Bucket:
        with self._lock:
            try:
                return self._buckets[name]
            except KeyError:
                raise NoSuchBucket(name) from None

    def bucket_exists(self, name: str) -> bool:
        with self._lock:
            return name in self._buckets

    def list_buckets(self) -> list[str]:
        with self._lock:
            return sorted(self._buckets)

    # -- objects -----------------------------------------------------------
    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        metadata: Optional[dict[str, str]] = None,
        if_none_match: bool = False,
    ) -> StoredObject:
        """Store an object; ``if_none_match`` makes the write conditional
        (``If-None-Match: *``): it atomically fails with
        :class:`PreconditionFailed` when the key already exists, which is
        what gives retried calls at-most-once status commits."""
        obj = StoredObject(
            key, data=data, metadata=metadata, last_modified=self.kernel.now()
        )
        b = self.bucket(bucket)
        with self._lock:
            if if_none_match and b.contains(key):
                raise PreconditionFailed(f"{bucket}/{key}")
            b.put(obj)
            self._put_count += 1
        return obj

    def put_virtual_object(
        self,
        bucket: str,
        key: str,
        size: int,
        content_fn: Optional[Callable[[int, int], bytes]] = None,
        metadata: Optional[dict[str, str]] = None,
    ) -> StoredObject:
        """Store a size-only object whose content is generated on read."""
        obj = StoredObject(
            key,
            size=size,
            content_fn=content_fn,
            metadata=metadata,
            last_modified=self.kernel.now(),
        )
        b = self.bucket(bucket)
        with self._lock:
            b.put(obj)
            self._put_count += 1
        return obj

    def get_object(self, bucket: str, key: str) -> StoredObject:
        b = self.bucket(bucket)
        with self._lock:
            obj = b.get(key)
            self._get_count += 1
            return obj

    def object_exists(self, bucket: str, key: str) -> bool:
        b = self.bucket(bucket)
        with self._lock:
            return b.contains(key)

    def delete_object(self, bucket: str, key: str) -> None:
        b = self.bucket(bucket)
        with self._lock:
            b.delete(key)

    def list_keys(self, bucket: str, prefix: str = "") -> list[str]:
        b = self.bucket(bucket)
        with self._lock:
            return b.list_keys(prefix)

    def copy_object(
        self, src_bucket: str, src_key: str, dst_bucket: str, dst_key: str
    ) -> StoredObject:
        """Server-side copy (S3 ``CopyObject``): no client data movement."""
        source = self.get_object(src_bucket, src_key)
        dst = self.bucket(dst_bucket)
        if source.is_virtual:
            copied = StoredObject(
                dst_key,
                size=source.size,
                content_fn=source._content_fn,
                metadata=dict(source.metadata),
                last_modified=self.kernel.now(),
            )
        else:
            copied = StoredObject(
                dst_key,
                data=source.read(),
                metadata=dict(source.metadata),
                last_modified=self.kernel.now(),
            )
        with self._lock:
            dst.put(copied)
            self._put_count += 1
        return copied

    def bucket_size(self, bucket: str, prefix: str = "") -> int:
        """Total logical bytes under a prefix."""
        b = self.bucket(bucket)
        with self._lock:
            return b.total_size(prefix)

    # -- statistics ----------------------------------------------------------
    @property
    def put_count(self) -> int:
        return self._put_count

    @property
    def get_count(self) -> int:
        return self._get_count

    def count_request(self, op: str) -> None:
        """Tally one billed API request by operation name.

        Called by every :class:`~repro.cos.client.COSClient` once per
        *logical* request (retried attempts are one charge, like the real
        service refunds failed calls is not modeled — the refusal already
        reached the service).  Pure accounting: no clock, no RNG.
        """
        with self._lock:
            self._request_counts[op] = self._request_counts.get(op, 0) + 1

    def request_counts(self) -> dict[str, int]:
        """Billed request tallies by operation, for the cost model."""
        with self._lock:
            return dict(self._request_counts)
