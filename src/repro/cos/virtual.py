"""Deterministic content generation for virtual objects.

Content is defined block-wise: the object is a concatenation of fixed-size
text blocks, block ``i`` derived from ``sha256(seed, i)``.  Any byte range
can therefore be produced in O(range) work without storing the object.  The
generated text is newline-delimited so line-oriented map functions behave
like they would on real CSV/JSON review data.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable

BLOCK_SIZE = 4096

_WORDS = (
    "great clean cozy terrible loud amazing host location dirty lovely "
    "noisy perfect awful wonderful stay room view bed quiet charming "
    "broken helpful rude spacious cramped bright smelly friendly walk "
    "metro beach downtown kitchen shower comfortable disappointing"
).split()


def _block(seed: int, index: int) -> bytes:
    """One deterministic BLOCK_SIZE text block of pseudo review lines."""
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    rng = random.Random(digest)
    out = bytearray()
    while len(out) < BLOCK_SIZE:
        n_words = rng.randint(6, 14)
        line = " ".join(rng.choice(_WORDS) for _ in range(n_words))
        out += line.encode("ascii") + b"\n"
    return bytes(out[:BLOCK_SIZE])


def make_text_content_fn(seed: int) -> Callable[[int, int], bytes]:
    """Return a ``content_fn(start, end)`` producing deterministic text."""

    def content_fn(start: int, end: int) -> bytes:
        if end <= start:
            return b""
        first = start // BLOCK_SIZE
        last = (end - 1) // BLOCK_SIZE
        parts = [_block(seed, i) for i in range(first, last + 1)]
        blob = b"".join(parts)
        offset = start - first * BLOCK_SIZE
        return blob[offset : offset + (end - start)]

    return content_fn
