"""COS client: the latency-accounted API surface components talk to.

One client per endpoint (laptop client, invoker function, map function),
each with its own :class:`~repro.net.NetworkLink`, all sharing one
:class:`~repro.cos.object_store.CloudObjectStorage` data plane — mirroring
how IBM-PyWren's client and its cloud functions all hit the same COS
buckets over very different network paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.config import RetryConfig
from repro.cos.errors import NoSuchKey, ServiceUnavailable, SlowDown
from repro.cos.object_store import CloudObjectStorage
from repro.net.link import NetworkLink
from repro.retry import RetryPolicy
from repro.vtime.kernel import vsleep


@dataclass(frozen=True)
class ObjectSummary:
    """Metadata returned by HEAD/LIST requests."""

    bucket: str
    key: str
    size: int
    etag: str
    last_modified: float


class COSClient:
    """Latency-charging facade over :class:`CloudObjectStorage`.

    Transient failures — lost requests on the wire, chaos-injected
    503/SlowDown responses — are retried under the shared
    :class:`~repro.retry.RetryPolicy` (exponential backoff + full jitter),
    configured by :class:`~repro.config.RetryConfig`.
    """

    def __init__(
        self,
        store: CloudObjectStorage,
        link: NetworkLink,
        retry: Optional[RetryConfig] = None,
    ) -> None:
        self.store = store
        self.link = link
        self.policy = RetryPolicy(retry, seed=link.seed)
        self._req_seq = itertools.count()

    @property
    def retries(self) -> int:
        """Backoff-retries this client has taken (observability)."""
        return self.policy.retries

    # -- write path ----------------------------------------------------------
    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        metadata: Optional[dict[str, str]] = None,
        if_none_match: bool = False,
    ) -> None:
        self._request(len(data), op="put")
        self.store.put_object(
            bucket, key, data, metadata=metadata, if_none_match=if_none_match
        )

    def put_object_steps(
        self,
        bucket: str,
        key: str,
        data: bytes,
        metadata: Optional[dict[str, str]] = None,
        if_none_match: bool = False,
    ):
        """Steps twin of :meth:`put_object` (model tasks ``yield from``)."""
        yield from self._request_steps(len(data), op="put")
        self.store.put_object(
            bucket, key, data, metadata=metadata, if_none_match=if_none_match
        )

    def delete_object(self, bucket: str, key: str) -> None:
        self._request(0, op="delete")
        self.store.delete_object(bucket, key)

    # -- read path -----------------------------------------------------------
    def get_object(self, bucket: str, key: str) -> bytes:
        obj = self.store.get_object(bucket, key)
        self._request(obj.size, op="get")
        return obj.read()

    def get_object_steps(self, bucket: str, key: str):
        """Steps twin of :meth:`get_object` (model tasks ``yield from``)."""
        obj = self.store.get_object(bucket, key)
        yield from self._request_steps(obj.size, op="get")
        return obj.read()

    def read_range(
        self,
        bucket: str,
        key: str,
        start: int,
        end: Optional[int] = None,
        materialize_cap: Optional[int] = None,
    ) -> bytes:
        """Read bytes ``[start, end)`` of an object.

        ``materialize_cap`` supports GB-scale *virtual* objects: the full
        range is charged to the virtual clock (it models a streaming read),
        but at most ``materialize_cap`` bytes of content are synthesized and
        returned, so real CPU/memory stays bounded.  Byte-backed objects and
        ``materialize_cap=None`` return the whole range.
        """
        obj = self.store.get_object(bucket, key)
        if end is None or end > obj.size:
            end = obj.size
        span = max(0, end - start)
        self._request(span, op="range")
        if materialize_cap is not None and span > materialize_cap:
            return obj.read(start, start + materialize_cap)
        return obj.read(start, end)

    def read_range_steps(
        self,
        bucket: str,
        key: str,
        start: int,
        end: Optional[int] = None,
        materialize_cap: Optional[int] = None,
    ):
        """Steps twin of :meth:`read_range` (model tasks ``yield from``)."""
        obj = self.store.get_object(bucket, key)
        if end is None or end > obj.size:
            end = obj.size
        span = max(0, end - start)
        yield from self._request_steps(span, op="range")
        if materialize_cap is not None and span > materialize_cap:
            return obj.read(start, start + materialize_cap)
        return obj.read(start, end)

    def head_object(self, bucket: str, key: str) -> ObjectSummary:
        self._request(0, op="head")
        obj = self.store.get_object(bucket, key)
        return ObjectSummary(bucket, obj.key, obj.size, obj.etag, obj.last_modified)

    def object_exists(self, bucket: str, key: str) -> bool:
        try:
            self.head_object(bucket, key)
            return True
        except NoSuchKey:
            return False

    def head_bucket(self, bucket: str) -> bool:
        self._request(0, op="head_bucket")
        return self.store.bucket_exists(bucket)

    def copy_object(
        self, src_bucket: str, src_key: str, dst_bucket: str, dst_key: str
    ) -> None:
        """Server-side copy: one control round trip, no payload transfer."""
        self._request(0, op="copy")
        self.store.copy_object(src_bucket, src_key, dst_bucket, dst_key)

    def list_objects(self, bucket: str, prefix: str = "") -> list[ObjectSummary]:
        self._request(0, op="list")
        summaries = []
        for key in self.store.list_keys(bucket, prefix):
            obj = self.store.get_object(bucket, key)
            summaries.append(
                ObjectSummary(bucket, obj.key, obj.size, obj.etag, obj.last_modified)
            )
        return summaries

    def list_keys(self, bucket: str, prefix: str = "") -> list[str]:
        self._request(0, op="list")
        return self.store.list_keys(bucket, prefix)

    def list_keys_steps(self, bucket: str, prefix: str = ""):
        """Steps twin of :meth:`list_keys` (model tasks ``yield from``)."""
        yield from self._request_steps(0, op="list")
        return self.store.list_keys(bucket, prefix)

    # -- internals -----------------------------------------------------------
    def _request(self, payload_bytes: int, op: str = "request") -> None:
        """One COS request: network round trip + chaos faults + retries.

        Blocking wrapper over :meth:`_request_steps` (thread tasks only).
        """
        self.link.kernel.drive(self._request_steps(payload_bytes, op))

    def _request_steps(self, payload_bytes: int, op: str = "request"):
        """One COS request as a steps generator (model tasks ``yield from``).

        Each attempt may be degraded by the environment's chaos plane:
        503/SlowDown responses cost the control round trip and raise (the
        request had to reach the service to be refused); slow reads charge
        extra transfer time.  All of it is retried under the shared policy.
        ``op`` labels the resulting ``cos.<op>`` trace span.
        """
        self.store.count_request(op)
        chaos = self.store.chaos
        tracer = getattr(self.store, "tracer", None)
        if tracer is not None and tracer.enabled:
            t0 = self.link.kernel.now()
            try:
                yield from self._request_inner_steps(payload_bytes, chaos)
            finally:
                tracer.span_at(
                    f"cos.{op}", "cos", t0, self.link.kernel.now(),
                    bytes=payload_bytes,
                )
            return
        yield from self._request_inner_steps(payload_bytes, chaos)

    def _request_inner_steps(self, payload_bytes: int, chaos):
        def attempt_steps():
            fault = (
                chaos.cos_fault(self.link.seed, next(self._req_seq))
                if chaos is not None
                else None
            )
            if fault is None:
                yield from self.link.request_steps(payload_bytes)
                return
            kind, factor = fault
            if kind in ("503", "slowdown"):
                # the refusal still costs a round trip
                yield from self.link.request_steps(0)
                chaos.record(
                    self.link.kernel.now(), "cos", kind, f"link-{self.link.seed}"
                )
                if kind == "503":
                    raise ServiceUnavailable("chaos: COS answered 503")
                raise SlowDown("chaos: COS asked the client to slow down")
            # slow read/write: the transfer happens, at a fraction of the
            # usual bandwidth
            yield from self.link.request_steps(payload_bytes)
            chaos.record(
                self.link.kernel.now(), "cos", "slow-read", f"link-{self.link.seed}"
            )
            extra = (factor - 1.0) * self.link.transfer_time(payload_bytes)
            if extra > 0:
                yield vsleep(extra)

        yield from self.policy.run_steps(attempt_steps)
