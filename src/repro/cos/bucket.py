"""Buckets: flat namespaces of objects with prefix listing."""

from __future__ import annotations

from typing import Optional

from repro.cos.errors import NoSuchKey
from repro.cos.obj import StoredObject


class Bucket:
    """A named collection of :class:`StoredObject`.

    Not thread-safe on its own; :class:`~repro.cos.object_store
    .CloudObjectStorage` serializes access.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._objects: dict[str, StoredObject] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def put(self, obj: StoredObject) -> None:
        self._objects[obj.key] = obj

    def get(self, key: str) -> StoredObject:
        try:
            return self._objects[key]
        except KeyError:
            raise NoSuchKey(f"{self.name}/{key}") from None

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise NoSuchKey(f"{self.name}/{key}")
        del self._objects[key]

    def contains(self, key: str) -> bool:
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        """All keys under ``prefix``, sorted (S3-style listing order)."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    def list_objects(self, prefix: str = "") -> list[StoredObject]:
        return [self._objects[k] for k in self.list_keys(prefix)]

    def total_size(self, prefix: str = "") -> int:
        return sum(o.size for o in self.list_objects(prefix))
