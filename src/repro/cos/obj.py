"""Stored objects: byte-backed or *virtual* (size-only with generated content).

Virtual objects let the reproduction host the paper's 1.9 GB dataset without
materialising it: the partitioner and HEAD requests see the true logical
size, while reads synthesize deterministic content for just the requested
range.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional

ContentFn = Callable[[int, int], bytes]


class StoredObject:
    """An immutable object in a bucket.

    Exactly one of ``data`` / (``size`` + ``content_fn``) is provided.
    """

    def __init__(
        self,
        key: str,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        content_fn: Optional[ContentFn] = None,
        metadata: Optional[dict[str, str]] = None,
        last_modified: float = 0.0,
    ) -> None:
        if data is not None:
            if size is not None or content_fn is not None:
                raise ValueError("pass either data or (size, content_fn), not both")
            self._data: Optional[bytes] = bytes(data)
            self.size = len(self._data)
            self._content_fn: Optional[ContentFn] = None
            self.etag = hashlib.md5(self._data).hexdigest()
        else:
            if size is None or size < 0:
                raise ValueError("virtual objects require a non-negative size")
            self._data = None
            self.size = int(size)
            self._content_fn = content_fn
            self.etag = hashlib.md5(f"virtual:{key}:{size}".encode()).hexdigest()
        self.key = key
        self.metadata = dict(metadata or {})
        self.last_modified = last_modified

    @property
    def is_virtual(self) -> bool:
        return self._data is None

    def read(self, start: int = 0, end: Optional[int] = None) -> bytes:
        """Read bytes ``[start, end)``; ``end=None`` means end of object."""
        if end is None:
            end = self.size
        if start < 0 or start > self.size or end < start:
            from repro.cos.errors import InvalidRange

            raise InvalidRange(
                f"range [{start}, {end}) invalid for object of size {self.size}"
            )
        end = min(end, self.size)
        if self._data is not None:
            return self._data[start:end]
        if self._content_fn is None:
            return b"\x00" * (end - start)
        chunk = self._content_fn(start, end)
        if len(chunk) != end - start:
            raise ValueError(
                f"content_fn returned {len(chunk)} bytes for range "
                f"[{start}, {end})"
            )
        return chunk
