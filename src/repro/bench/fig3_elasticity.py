"""Fig. 3 — elasticity and concurrency (§6.2).

A ~60-second compute-bound function is launched 500, 1,000, 1,500 and
2,000 times (massive spawning enabled).  The claim reproduced: "for all the
workloads, we obtained full concurrency, i.e., the black line met the
target workload size in all the experiments", and the platform scales each
successive +500 step without trouble.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import Figure, Table, concurrency_timeline
from repro.config import InvokerMode
from repro.core import cost
from repro.core.environment import CloudEnvironment
from repro.core.worker import RUNNER_ACTION_BASENAME
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel

#: §6.2's workload sizes
WORKLOADS = (500, 1000, 1500, 2000)


@dataclass
class ElasticityResult:
    """Outcome of one workload size."""

    n_functions: int
    peak_concurrency: int
    reached_full_concurrency: bool
    total_s: float
    mean_duration_s: float
    concurrency: list[tuple[float, int]] = field(default_factory=list)


def run_workload(n_functions: int, seed: int = 42) -> ElasticityResult:
    """One elasticity run at a given concurrency target."""
    limits = SystemLimits(
        # "the number of concurrent functions can be increased if needed"
        max_concurrent=max(WORKLOADS) + 64,
    )
    env = CloudEnvironment.create(
        client_latency=LatencyModel.wan(), limits=limits, seed=seed
    )

    def _task(_: object) -> int:
        import repro

        repro.sleep(cost.FIG3_TASK_SECONDS)
        return 1

    def main():
        import repro

        executor = repro.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
        t0 = env.now()
        futures = executor.map(_task, [0] * n_functions)
        executor.get_result(futures)
        records = [
            r
            for r in env.platform.activations()
            if r.action_name.startswith(RUNNER_ACTION_BASENAME)
        ]
        assert all(r.status == "success" for r in records)
        intervals = [r.interval() for r in records]
        total = max(end for _s, end in intervals) - t0
        durations = [end - start for start, end in intervals]
        return intervals, total, durations

    intervals, total, durations = env.run(main)
    timeline = concurrency_timeline(intervals, resolution=1.0)
    peak = max(level for _t, level in timeline)
    return ElasticityResult(
        n_functions=n_functions,
        peak_concurrency=peak,
        reached_full_concurrency=peak >= n_functions,
        total_s=total,
        mean_duration_s=sum(durations) / len(durations),
        concurrency=timeline,
    )


def run_fig3(workloads=WORKLOADS, seed: int = 42) -> list[ElasticityResult]:
    return [run_workload(n, seed=seed) for n in workloads]


def report(results: list[ElasticityResult]) -> Table:
    table = Table(
        "Fig. 3 — elasticity and concurrency (60 s functions)",
        [
            "workload",
            "peak concurrency",
            "full concurrency?",
            "total (s)",
            "mean fn duration (s)",
        ],
    )
    for result in results:
        table.add_row(
            result.n_functions,
            result.peak_concurrency,
            "yes" if result.reached_full_concurrency else "NO",
            round(result.total_s, 1),
            round(result.mean_duration_s, 1),
        )
    return table


def concurrency_figure(results: list[ElasticityResult]) -> Figure:
    fig = Figure(
        "Fig. 3 — concurrent functions over time per workload",
        x_label="time (s)",
        y_label="concurrent functions",
    )
    for result in results:
        series = fig.add_series(f"{result.n_functions} invocations")
        for t, level in result.concurrency:
            if int(t) % 10 == 0:
                series.add(t, level)
    return fig
