"""Fig. 2 + the §6.1 text numbers: massive function spawning.

The experiment: 1,000 invocations of a 50-second compute-bound function.
From a high-latency client, local invocation needs ~38 s to spawn the job
(whole experiment ~88 s); with massive function spawning the invocation
phase drops to ~8 s (~58 s total).  The §5.1 narrative also gives two more
data points we reproduce: ~8 s from a *low-latency* client, and ~20 s with
the first single-remote-invoker design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.reporting import Figure, Table, concurrency_timeline
from repro.config import InvokerMode
from repro.core import cost
from repro.core.environment import CloudEnvironment
from repro.core.worker import RUNNER_ACTION_BASENAME
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel


def fig2_task(_: object) -> int:
    """The paper's 'arbitrary compute-bound task of 50-seconds duration'."""
    import repro

    repro.sleep(cost.FIG2_TASK_SECONDS)
    return 1


@dataclass
class SpawningResult:
    """Measured outcome of one spawning run."""

    label: str
    mode: str
    client: str
    n_functions: int
    #: seconds until the last function *started* (the invocation phase)
    invocation_phase_s: float
    #: seconds until the last function finished (the whole experiment)
    total_s: float
    #: (t, concurrent running functions) samples — Fig. 2's black line
    concurrency: list[tuple[float, int]] = field(default_factory=list)


def run_spawning(
    mode: str = InvokerMode.MASSIVE,
    n_functions: int = 1000,
    task_seconds: Optional[float] = None,
    client_latency: Optional[LatencyModel] = None,
    label: Optional[str] = None,
    seed: int = 42,
    max_concurrent: Optional[int] = None,
) -> SpawningResult:
    """Run one spawning experiment and extract its timeline."""
    client_latency = client_latency or LatencyModel.wan()
    limits = SystemLimits(
        # headroom for the remote invoker functions themselves
        max_concurrent=max_concurrent or (n_functions + 32),
    )
    env = CloudEnvironment.create(
        client_latency=client_latency, limits=limits, seed=seed
    )
    task_time = task_seconds if task_seconds is not None else cost.FIG2_TASK_SECONDS

    def _task(_: object) -> int:
        import repro

        repro.sleep(task_time)
        return 1

    def main() -> tuple[float, float, list[tuple[float, float]]]:
        import repro

        executor = repro.ibm_cf_executor(invoker_mode=mode)
        t0 = env.now()
        futures = executor.map(_task, [0] * n_functions)
        executor.get_result(futures)
        records = [
            r
            for r in env.platform.activations()
            if r.action_name.startswith(RUNNER_ACTION_BASENAME)
        ]
        assert len(records) == n_functions
        assert all(r.status == "success" for r in records)
        intervals = [r.interval() for r in records]
        last_start = max(start for start, _end in intervals)
        last_end = max(end for _start, end in intervals)
        return last_start - t0, last_end - t0, intervals

    invocation_phase, total, intervals = env.run(main)
    return SpawningResult(
        label=label or f"{mode} ({client_latency.name} client)",
        mode=mode,
        client=client_latency.name,
        n_functions=n_functions,
        invocation_phase_s=invocation_phase,
        total_s=total,
        concurrency=concurrency_timeline(intervals, resolution=1.0),
    )


#: paper-reported numbers for the four §5.1/§6.1 configurations
PAPER_NUMBERS = {
    "local (wan client)": (38.0, 88.0),
    "local (lan client)": (8.0, None),
    "remote (wan client)": (20.0, None),
    "massive (wan client)": (8.0, 58.0),
}


def run_fig2(n_functions: int = 1000, seed: int = 42) -> list[SpawningResult]:
    """The two Fig. 2 configurations: local WAN vs massive spawning."""
    return [
        run_spawning(InvokerMode.LOCAL, n_functions, seed=seed),
        run_spawning(InvokerMode.MASSIVE, n_functions, seed=seed),
    ]


def run_invoker_sweep(n_functions: int = 1000, seed: int = 42) -> list[SpawningResult]:
    """All four configurations discussed in §5.1/§6.1."""
    return [
        run_spawning(
            InvokerMode.LOCAL,
            n_functions,
            client_latency=LatencyModel.lan(),
            label="local (lan client)",
            seed=seed,
        ),
        run_spawning(InvokerMode.LOCAL, n_functions, seed=seed),
        run_spawning(InvokerMode.REMOTE, n_functions, seed=seed),
        run_spawning(InvokerMode.MASSIVE, n_functions, seed=seed),
    ]


def report(results: list[SpawningResult]) -> Table:
    table = Table(
        "Fig. 2 / §6.1 — invocation of 1,000 x 50 s functions",
        ["configuration", "invocation phase (s)", "total (s)", "paper inv. (s)", "paper total (s)"],
    )
    for result in results:
        key = f"{result.mode} ({result.client} client)"
        paper_inv, paper_total = PAPER_NUMBERS.get(key, (None, None))
        table.add_row(
            result.label,
            round(result.invocation_phase_s, 1),
            round(result.total_s, 1),
            paper_inv if paper_inv is not None else "-",
            paper_total if paper_total is not None else "-",
        )
    return table


def concurrency_figure(results: list[SpawningResult]) -> Figure:
    fig = Figure(
        "Fig. 2 — concurrent invocations over time",
        x_label="time (s)",
        y_label="concurrent functions",
    )
    for result in results:
        series = fig.add_series(result.label)
        # subsample to every 5 s to keep the rendering readable
        for t, level in result.concurrency:
            if int(t) % 5 == 0:
                series.add(t, level)
    return fig
