"""Benchmark harness: one module per paper table/figure.

* :mod:`repro.bench.fig2_spawning` — massive function spawning (Fig. 2 + §6.1)
* :mod:`repro.bench.fig3_elasticity` — elasticity & concurrency (Fig. 3)
* :mod:`repro.bench.fig4_mergesort` — dynamic composition (Fig. 4)
* :mod:`repro.bench.table3_airbnb` — the real MapReduce job (Table 3)

Each module exposes ``run_*`` functions returning structured results plus
``report()``/``figure()`` renderers; the ``benchmarks/`` pytest-benchmark
suite drives them and prints the paper-vs-measured comparisons.
"""

from repro.bench import (
    fig2_spawning,
    fig3_elasticity,
    fig4_mergesort,
    fig5_tone_map,
    table3_airbnb,
)
from repro.bench.reporting import Figure, Series, Table, concurrency_timeline

__all__ = [
    "fig2_spawning",
    "fig3_elasticity",
    "fig4_mergesort",
    "fig5_tone_map",
    "table3_airbnb",
    "Table",
    "Figure",
    "Series",
    "concurrency_timeline",
]
