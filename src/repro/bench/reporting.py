"""Plain-text rendering of reproduced tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence


@dataclass
class Table:
    """An ASCII table mirroring one of the paper's tables."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


@dataclass
class Series:
    """One line of a figure: a labelled list of (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))


@dataclass
class Figure:
    """A figure reproduced as labelled numeric series."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def add_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title), f"x: {self.x_label}   y: {self.y_label}"]
        for s in self.series:
            pts = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in s.points)
            lines.append(f"  {s.label}: {pts}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


# re-exported here because every bench module builds its concurrency series
# through the reporting layer
from repro.analytics.timeline import concurrency_timeline  # noqa: E402,F401
