"""Plain-text rendering of reproduced tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence


@dataclass
class Table:
    """An ASCII table mirroring one of the paper's tables."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


@dataclass
class Series:
    """One line of a figure: a labelled list of (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))


@dataclass
class Figure:
    """A figure reproduced as labelled numeric series."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def add_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title), f"x: {self.x_label}   y: {self.y_label}"]
        for s in self.series:
            pts = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in s.points)
            lines.append(f"  {s.label}: {pts}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


# re-exported here because every bench module builds its concurrency series
# through the reporting layer
from repro.analytics.timeline import concurrency_timeline  # noqa: E402,F401


def concurrency_series_from_trace(
    events: Iterable,
    label: str = "total concurrent",
    executor_id: Optional[str] = None,
    callset_id: Optional[str] = None,
) -> Series:
    """A figure series built straight off the trace spine.

    Derives execution intervals from the event stream and sweeps them into
    the Fig. 2/3-style concurrency curve — no activation-record scraping.
    """
    from repro.trace import derive

    intervals = derive.execution_intervals(events, executor_id, callset_id)
    series = Series(label)
    for t, level in concurrency_timeline(intervals):
        series.add(t, level)
    return series


def job_stats_table_from_trace(events: Iterable, title: str = "Job statistics") -> Table:
    """Render trace-derived :class:`JobStats` as a reporting table."""
    from repro.trace import derive

    stats = derive.job_stats_from_events(events)
    table = Table(title, ("metric", "value"))
    table.add_row("calls", stats.n_calls)
    table.add_row("spawn spread (s)", stats.spawn_spread)
    table.add_row("makespan (s)", stats.makespan)
    table.add_row("mean duration (s)", stats.mean_duration)
    table.add_row("p50 duration (s)", stats.p50_duration)
    table.add_row("p95 duration (s)", stats.p95_duration)
    table.add_row("max duration (s)", stats.max_duration)
    table.add_row("retries", stats.retries_total)
    table.add_row("failed calls", stats.failed_calls)
    return table
