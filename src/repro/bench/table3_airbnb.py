"""Table 3 — the real MapReduce job (§6.4).

33 city review datasets (1.9 GB total) in COS are tone-analyzed with
``map_reduce`` + ``reducer_one_per_object=True`` (one reducer renders one
city map), sweeping the partitioner chunk size 64 MB → 2 MB.  Reproduced
columns: concurrency (number of map executors, a pure function of the
city-size distribution), execution time, and speedup over the sequential
Watson-Studio-notebook baseline (5,160 s in the paper).

Map functions really read (a sample of) their partition and really classify
review lines; the partition's full-size compute cost is charged through the
calibrated model (DESIGN.md §5), so the *shape* of the table — sub-linear
concurrency growth, >100x top speedup, diminishing returns per halving —
emerges from the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analytics.geoplot import render_city_map
from repro.analytics.tone import ToneStats, analyze_csv_reviews
from repro.bench.reporting import Table
from repro.config import InvokerMode
from repro.core import cost
from repro.core.environment import CloudEnvironment
from repro.datasets import airbnb
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel
from repro.utils.sizes import parse_size

#: Table 3's chunk-size sweep
CHUNK_SIZES_MB = (64, 32, 16, 8, 4, 2)

#: paper-reported rows: chunk MB -> (concurrency, exec seconds, speedup)
PAPER_ROWS = {
    64: (47, 471, 10.95),
    32: (72, 297, 17.37),
    16: (129, 181, 28.51),
    8: (242, 112, 46.07),
    4: (471, 63, 81.90),
    2: (923, 38, 135.79),
}

#: paper's sequential baseline: "1 hour and 26 minutes"
PAPER_SEQUENTIAL_S = 5160.0

#: bytes of real content each map function samples for classification
DEFAULT_SAMPLE_CAP = 16_384


def make_tone_map(sample_cap: int = DEFAULT_SAMPLE_CAP):
    """Build the map function: tone-analyze one partition.

    Reads up to ``sample_cap`` real bytes (the rest of the partition is
    charged to the virtual clock by the cost model) and extrapolates the
    tone counts to the partition size.
    """

    def tone_map(partition) -> dict:
        import repro
        from repro.analytics.tone import analyze_csv_reviews as _analyze
        from repro.core import cost as _cost

        data = partition.read(materialize_cap=sample_cap)
        stats, points = _analyze(data)
        sampled = min(partition.size, sample_cap)
        scale = partition.size / sampled if sampled else 0.0
        repro.sleep(_cost.tone_map_seconds(partition.size))
        return {
            "key": partition.key,
            "bytes": partition.size,
            "stats": stats.scaled(scale),
            # a bounded sample of points for the city map
            "points": points[:150],
        }

    return tone_map


def tone_reduce(results: list[dict]) -> dict:
    """Reduce function: merge one city's partials and render its map."""
    import repro
    from repro.analytics.geoplot import render_city_map as _render
    from repro.analytics.tone import ToneStats as _ToneStats
    from repro.core import cost as _cost

    merged = _ToneStats()
    points: list[tuple[float, float, str]] = []
    total_bytes = 0
    key = results[0]["key"]
    for partial in results:
        merged.merge(partial["stats"])
        points.extend(partial["points"])
        total_bytes += partial["bytes"]
    svg = _render(key, points)
    repro.sleep(_cost.render_seconds(1))
    return {
        "key": key,
        "bytes": total_bytes,
        "comments": merged.comments,
        "counts": dict(merged.counts),
        "dominant": merged.dominant(),
        "svg_bytes": len(svg),
    }


@dataclass
class AirbnbRow:
    """One measured row of Table 3."""

    chunk_size: Optional[int]  # bytes; None = sequential baseline
    concurrency: int
    exec_time_s: float
    speedup: float
    cities: int = 33
    comments: int = 0


def run_sequential_baseline(seed: int = 42) -> AirbnbRow:
    """The non-PyWren baseline: a Watson Studio notebook (4 vCPU / 16 GB)
    processes each city sequentially, exactly like §6.4's first test.

    One notebook cell per city; compute is charged through the calibrated
    notebook rate + per-city render cost, on the same virtual clock as the
    parallel runs.
    """
    env = CloudEnvironment.create(seed=seed)
    from repro.studio import WatsonStudio

    studio = WatsonStudio(env)
    notebook = studio.create_notebook(
        "airbnb-sequential", vcpus=4, memory_gb=16
    )

    def make_city_cell(size: int):
        def cell(_namespace) -> int:
            import repro

            repro.sleep(cost.notebook_tone_seconds(size))
            repro.sleep(cost.render_seconds(1))
            return size

        return cell

    for city, size in airbnb.city_sizes().items():
        notebook.add_cell(make_city_cell(size), label=city)
    cells = notebook.run()
    assert all(cell.ok for cell in cells)
    seconds = sum(cell.duration for cell in cells)
    return AirbnbRow(
        chunk_size=None,
        concurrency=0,
        exec_time_s=seconds,
        speedup=1.0,
        comments=airbnb.TOTAL_COMMENTS,
    )


def run_airbnb(
    chunk_size,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
    seed: int = 42,
    sequential_s: Optional[float] = None,
) -> AirbnbRow:
    """One parallel row: map_reduce the full dataset at ``chunk_size``."""
    chunk = parse_size(chunk_size)
    limits = SystemLimits(max_concurrent=1000)
    env = CloudEnvironment.create(
        client_latency=LatencyModel.wan(), limits=limits, seed=seed
    )
    airbnb.load_dataset(env.storage)

    def main() -> tuple[int, float, int]:
        import repro

        executor = repro.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
        t0 = env.now()
        reducers = executor.map_reduce(
            make_tone_map(sample_cap),
            f"cos://{airbnb.DEFAULT_BUCKET}",
            tone_reduce,
            chunk_size=chunk,
            reducer_one_per_object=True,
        )
        summaries = executor.get_result(reducers)
        elapsed = env.now() - t0
        n_maps = sum(
            1 for f in executor.futures if f.callset_id.startswith("M")
        )
        assert len(summaries) == 33, f"expected 33 city maps, got {len(summaries)}"
        comments = sum(s["comments"] for s in summaries)
        return n_maps, elapsed, comments

    concurrency, elapsed, comments = env.run(main)
    baseline = sequential_s if sequential_s is not None else PAPER_SEQUENTIAL_S
    return AirbnbRow(
        chunk_size=chunk,
        concurrency=concurrency,
        exec_time_s=elapsed,
        speedup=baseline / elapsed,
        comments=comments,
    )


def run_table3(
    chunk_sizes_mb=CHUNK_SIZES_MB,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
    seed: int = 42,
) -> list[AirbnbRow]:
    """The full Table 3: sequential baseline + chunk-size sweep."""
    sequential = run_sequential_baseline(seed=seed)
    rows = [sequential]
    for chunk_mb in chunk_sizes_mb:
        rows.append(
            run_airbnb(
                f"{chunk_mb}MB",
                sample_cap=sample_cap,
                seed=seed,
                sequential_s=sequential.exec_time_s,
            )
        )
    return rows


def report(rows: list[AirbnbRow]) -> Table:
    table = Table(
        "Table 3 — MapReduce job execution results (Airbnb tone analysis)",
        [
            "chunk size",
            "concurrency",
            "exec. time (s)",
            "speedup",
            "paper conc.",
            "paper time (s)",
            "paper speedup",
        ],
    )
    for row in rows:
        if row.chunk_size is None:
            table.add_row(
                "No / Sequential",
                "0 executors",
                round(row.exec_time_s),
                "1.00x (base)",
                "0 executors",
                round(PAPER_SEQUENTIAL_S),
                "(base)",
            )
            continue
        chunk_mb = row.chunk_size // (1024 * 1024)
        paper = PAPER_ROWS.get(chunk_mb)
        table.add_row(
            f"{chunk_mb}MB",
            f"{row.concurrency} executors",
            round(row.exec_time_s),
            f"{row.speedup:.2f}x",
            f"{paper[0]} executors" if paper else "-",
            paper[1] if paper else "-",
            f"{paper[2]:.2f}x" if paper else "-",
        )
    return table
