"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench fig2              # Fig. 2 + §6.1 sweep
    python -m repro.bench fig3              # Fig. 3 elasticity
    python -m repro.bench fig4 [--quick]    # Fig. 4 mergesort grid
    python -m repro.bench table3 [--chunks 64,8,2]
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import (
    fig2_spawning,
    fig3_elasticity,
    fig4_mergesort,
    fig5_tone_map,
    table3_airbnb,
)


def _run_fig2(args: argparse.Namespace) -> None:
    results = fig2_spawning.run_invoker_sweep(n_functions=args.n, seed=args.seed)
    fig2_spawning.report(results).print()
    fig2_spawning.concurrency_figure(results).print()


def _run_fig3(args: argparse.Namespace) -> None:
    results = fig3_elasticity.run_fig3(seed=args.seed)
    fig3_elasticity.report(results).print()
    fig3_elasticity.concurrency_figure(results).print()


def _run_fig4(args: argparse.Namespace) -> None:
    sizes = fig4_mergesort.ARRAY_SIZES
    depths = fig4_mergesort.DEPTHS
    if args.quick:
        sizes = sizes[:2]
        depths = depths[:3]
    points = fig4_mergesort.run_fig4(sizes, depths, seed=args.seed)
    fig4_mergesort.report(points).print()
    fig4_mergesort.figure(points).print()


def _run_fig5(args: argparse.Namespace) -> None:
    result = fig5_tone_map.run_fig5(seed=args.seed)
    print(fig5_tone_map.describe(result))
    out = getattr(args, "out", None) or "fig5_new_york.svg"
    with open(out, "w") as handle:
        handle.write(result.svg)
    print(f"SVG written to {out}")


def _run_table3(args: argparse.Namespace) -> None:
    chunks = tuple(int(c) for c in args.chunks.split(",")) if args.chunks else None
    rows = table3_airbnb.run_table3(
        chunk_sizes_mb=chunks or table3_airbnb.CHUNK_SIZES_MB, seed=args.seed
    )
    table3_airbnb.report(rows).print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("--seed", type=int, default=42)
    sub = parser.add_subparsers(dest="experiment", required=True)

    p_fig2 = sub.add_parser("fig2", help="massive function spawning")
    p_fig2.add_argument("--n", type=int, default=1000, help="functions to spawn")

    sub.add_parser("fig3", help="elasticity and concurrency")

    p_fig4 = sub.add_parser("fig4", help="mergesort composition")
    p_fig4.add_argument("--quick", action="store_true", help="reduced grid")

    p_fig5 = sub.add_parser("fig5", help="New York tone map artifact")
    p_fig5.add_argument("--out", default=None, help="output SVG path")

    p_t3 = sub.add_parser("table3", help="Airbnb MapReduce job")
    p_t3.add_argument(
        "--chunks", default=None, help="comma-separated chunk sizes in MB"
    )

    sub.add_parser("all", help="everything")

    args = parser.parse_args(argv)
    runners = {
        "fig2": _run_fig2,
        "fig3": _run_fig3,
        "fig4": _run_fig4,
        "fig5": _run_fig5,
        "table3": _run_table3,
    }
    if args.experiment == "all":
        for name, runner in runners.items():
            if name == "fig2":
                args.n = 1000
            if name == "fig4":
                args.quick = False
            if name == "fig5":
                args.out = None
            if name == "table3":
                args.chunks = None
            print(f"### {name}")
            runner(args)
    else:
        runners[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
