"""Fig. 5 — the New York City tone map.

"Tone analysis of the airbnb reviews of the city of New York.  Green
points are good comments, blue points are neutral comments and red points
are bad comments."  We regenerate the artifact: run the §6.4 map/reduce
over the New York object only and render its SVG scatter map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.geoplot import TONE_COLORS, render_city_map
from repro.analytics.tone import NEGATIVE, NEUTRAL, POSITIVE, ToneStats
from repro.bench.table3_airbnb import make_tone_map
from repro.config import InvokerMode
from repro.core.environment import CloudEnvironment
from repro.datasets import airbnb
from repro.net.latency import LatencyModel
from repro.utils.sizes import parse_size

CITY = "new-york"


@dataclass
class ToneMapResult:
    """The rendered figure plus its summary statistics."""

    city: str
    svg: str
    points: int
    comments_estimated: int
    tone_counts: dict[str, int]
    map_executors: int
    exec_time_s: float


def run_fig5(
    chunk_size="16MB", sample_cap: int = 32_768, seed: int = 42
) -> ToneMapResult:
    """Analyze the New York reviews and render the Fig. 5 map."""
    env = CloudEnvironment.create(client_latency=LatencyModel.wan(), seed=seed)
    airbnb.load_dataset(env.storage)
    chunk = parse_size(chunk_size)

    def reduce_to_map(results: list[dict]) -> dict:
        merged = ToneStats()
        points: list[tuple[float, float, str]] = []
        for partial in results:
            merged.merge(partial["stats"])
            points.extend(partial["points"])
        svg = render_city_map(CITY, points)
        return {
            "svg": svg,
            "points": len(points),
            "comments": merged.comments,
            "counts": dict(merged.counts),
        }

    def main():
        import repro

        executor = repro.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
        t0 = env.now()
        reducer = executor.map_reduce(
            make_tone_map(sample_cap),
            f"cos://{airbnb.DEFAULT_BUCKET}/reviews/{CITY}.csv",
            reduce_to_map,
            chunk_size=chunk,
        )
        summary = executor.get_result(reducer)
        elapsed = env.now() - t0
        maps = sum(1 for f in executor.futures if f.callset_id.startswith("M"))
        return summary, maps, elapsed

    summary, maps, elapsed = env.run(main)
    return ToneMapResult(
        city=CITY,
        svg=summary["svg"],
        points=summary["points"],
        comments_estimated=summary["comments"],
        tone_counts=summary["counts"],
        map_executors=maps,
        exec_time_s=elapsed,
    )


def describe(result: ToneMapResult) -> str:
    counts = result.tone_counts
    total = sum(counts.values()) or 1
    lines = [
        f"Fig. 5 — tone map of {result.city}",
        f"  map executors : {result.map_executors}",
        f"  exec time     : {result.exec_time_s:.1f}s virtual",
        f"  comments (est): {result.comments_estimated:,}",
        f"  plotted points: {result.points}",
    ]
    for tone, label in ((POSITIVE, "good"), (NEUTRAL, "neutral"), (NEGATIVE, "bad")):
        share = 100.0 * counts.get(tone, 0) / total
        lines.append(
            f"  {label:<8} {share:5.1f}%  (color {TONE_COLORS[tone]})"
        )
    return "\n".join(lines)
