"""Fig. 4 — dynamic composition: serverless mergesort (§6.3).

Arrays of N = 500 K ... 25 M integers are sorted with a *function tree* of
depth d = 0..4 (a function at depth < d spawns two children through a
nested executor; leaves sort locally).  Expected shape, per the paper:
sort time grows linearly with N for every depth; greater depth wins at
larger workloads; improvements level off beyond d = 3 because spawning
overheads start to dominate.

The real algorithm lives in :mod:`repro.sort.mergesort` and is exercised
with genuine data by tests and the example.  Here N reaches 25 M, so leaf
sorts and merges are charged through the calibrated cost model
(:mod:`repro.core.cost`) while the composition machinery — nested
executors, futures through COS, function spawning — runs for real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import Figure, Table
from repro.core import cost
from repro.core.environment import CloudEnvironment
from repro.net.latency import LatencyModel
from repro.net.link import DEFAULT_BANDWIDTH_BPS

#: §6.3's sweep: 500 K to 25 M integers
ARRAY_SIZES = (500_000, 1_000_000, 5_000_000, 10_000_000, 25_000_000)

#: function-tree depths of Fig. 4
DEPTHS = (0, 1, 2, 3, 4)


def _transfer_seconds(n: int) -> float:
    """Modelled COS transfer time for an n-integer array (one direction)."""
    return cost.array_bytes(n) / DEFAULT_BANDWIDTH_BPS


def _bench_sort_task(payload: dict) -> dict:
    """Cost-modelled mergesort tree node (runs as a real cloud function)."""
    import repro
    from repro.core import cost as _cost

    n: int = payload["n"]
    depth: int = payload["depth"]
    if depth <= 0 or n <= 1:
        repro.sleep(_cost.sort_seconds(n))
        return {"n": n}
    executor = repro.ibm_cf_executor()
    half = n // 2
    # shipping both halves through COS to the children
    repro.sleep(_transfer_seconds(n))
    futures = executor.map(
        _bench_sort_task,
        [
            {"n": half, "depth": depth - 1},
            {"n": n - half, "depth": depth - 1},
        ],
    )
    executor.get_result(futures)
    # children results come back through COS, then the local merge pass
    repro.sleep(_transfer_seconds(n))
    repro.sleep(_cost.merge_seconds(n))
    return {"n": n}


@dataclass
class MergesortPoint:
    n: int
    depth: int
    seconds: float
    functions_spawned: int


def run_point(n: int, depth: int, seed: int = 42) -> MergesortPoint:
    """Time one (N, depth) configuration in a fresh environment."""
    env = CloudEnvironment.create(client_latency=LatencyModel.wan(), seed=seed)

    def main() -> float:
        import repro

        executor = repro.ibm_cf_executor()
        t0 = env.now()
        future = executor.call_async(_bench_sort_task, {"n": n, "depth": depth})
        future.result()
        return env.now() - t0

    seconds = env.run(main)
    n_functions = 2 ** (depth + 1) - 1
    return MergesortPoint(n=n, depth=depth, seconds=seconds, functions_spawned=n_functions)


def run_fig4(
    array_sizes=ARRAY_SIZES, depths=DEPTHS, seed: int = 42
) -> list[MergesortPoint]:
    return [
        run_point(n, depth, seed=seed) for depth in depths for n in array_sizes
    ]


def figure(points: list[MergesortPoint]) -> Figure:
    fig = Figure(
        "Fig. 4 — mergesort execution time vs array length",
        x_label="integers sorted",
        y_label="execution time (s)",
    )
    for depth in sorted({p.depth for p in points}):
        series = fig.add_series(f"depth d={depth}")
        for point in sorted((p for p in points if p.depth == depth), key=lambda p: p.n):
            series.add(point.n, round(point.seconds, 1))
    return fig


def report(points: list[MergesortPoint]) -> Table:
    table = Table(
        "Fig. 4 — mergesort sort times (s) by depth",
        ["N"] + [f"d={d}" for d in sorted({p.depth for p in points})],
    )
    by_n: dict[int, dict[int, float]] = {}
    for point in points:
        by_n.setdefault(point.n, {})[point.depth] = point.seconds
    for n in sorted(by_n):
        row = [f"{n:,}"] + [
            round(by_n[n][d], 1) for d in sorted(by_n[n])
        ]
        table.add_row(*row)
    return table
