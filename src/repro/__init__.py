"""repro — reproduction of "Serverless Data Analytics in the IBM Cloud".

This package reimplements IBM-PyWren (Middleware Industry '18) together
with every substrate it runs on: an OpenWhisk-like FaaS platform
(:mod:`repro.faas`), an IBM-COS-like object store (:mod:`repro.cos`),
network latency models (:mod:`repro.net`) and a virtual-time thread kernel
(:mod:`repro.vtime`) that lets minute-scale cloud experiments run in
milliseconds while executing real Python user code.

Quickstart (mirrors Fig. 1 of the paper)::

    import repro as pw

    def my_function(x):
        return x + 7

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor()
        executor.map(my_function, [3, 6, 9])
        return executor.get_result()

    print(env.run(main))   # [10, 13, 16]
"""

from repro.cache import CachePlane
from repro.chaos import ChaosPlane, ChaosProfile
from repro.config import (
    CacheConfig,
    DagConfig,
    EventsConfig,
    ExchangeConfig,
    InvokerMode,
    PyWrenConfig,
    RetryConfig,
    TenantConfig,
)
from repro.core import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    CallFailure,
    ClientCrashError,
    CloudEnvironment,
    FailureReport,
    FunctionError,
    FunctionExecutor,
    NoActiveEnvironmentError,
    PyWrenError,
    ResponseFuture,
    ResultTimeoutError,
    StoragePartition,
    compose,
    ibm_cf_executor,
    sequence,
    wait,
)
from repro.core.stats import JobStats, collect_job_stats
from repro.dag import Dag, DagBuilder, DagNode, DagRun, DagScheduler
from repro.exchange import (
    CachedCosExchange,
    CosExchange,
    ExchangeBackend,
    VmExchange,
)
from repro.events import (
    EventJournal,
    EventRecord,
    JournalConflictError,
    ResumedJob,
    TriggerEngine,
    TriggerRule,
)
from repro.faas import FairDispatchQueue, TenantRegistry
from repro.retry import RetryPolicy
from repro.trace import TraceEvent, Tracer
from repro.vtime import now, sleep
from repro.workloads import (
    Col,
    Predicate,
    ScanResult,
    ScanSpec,
    StreamSource,
    TableInfo,
    WindowResult,
    load_table,
    review_analytics,
    scan,
    windowed_map_reduce,
    windows_for,
)


def compute(seconds: float) -> None:
    """Model CPU-bound compute.

    Inside a running cloud function this charges contention-aware time
    (see ExecutionContext.compute — busy invoker nodes slow functions
    down, the §6.2 variability); elsewhere it is a plain virtual sleep.
    """
    from repro.core import context as _context

    ctx = _context.current_context()
    if ctx is not None and ctx.execution_context is not None:
        ctx.execution_context.compute(seconds)
    else:
        sleep(seconds)


__version__ = "1.0.0"

__all__ = [
    "CloudEnvironment",
    "FunctionExecutor",
    "ibm_cf_executor",
    "ResponseFuture",
    "wait",
    "ALWAYS",
    "ANY_COMPLETED",
    "ALL_COMPLETED",
    "StoragePartition",
    "compose",
    "sequence",
    "Dag",
    "DagBuilder",
    "DagConfig",
    "DagNode",
    "DagRun",
    "DagScheduler",
    "PyWrenConfig",
    "InvokerMode",
    "RetryConfig",
    "RetryPolicy",
    "CacheConfig",
    "CachePlane",
    "ExchangeConfig",
    "ExchangeBackend",
    "CosExchange",
    "CachedCosExchange",
    "VmExchange",
    "ChaosProfile",
    "ChaosPlane",
    "TenantConfig",
    "TenantRegistry",
    "FairDispatchQueue",
    "EventsConfig",
    "EventRecord",
    "EventJournal",
    "TriggerRule",
    "TriggerEngine",
    "ResumedJob",
    "JournalConflictError",
    "CallFailure",
    "FailureReport",
    "PyWrenError",
    "FunctionError",
    "ResultTimeoutError",
    "NoActiveEnvironmentError",
    "ClientCrashError",
    "sleep",
    "now",
    "compute",
    "JobStats",
    "collect_job_stats",
    "Col",
    "Predicate",
    "ScanSpec",
    "ScanResult",
    "scan",
    "TableInfo",
    "load_table",
    "StreamSource",
    "WindowResult",
    "windowed_map_reduce",
    "windows_for",
    "review_analytics",
    "Tracer",
    "TraceEvent",
    "__version__",
]
