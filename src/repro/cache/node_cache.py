"""Per-invoker-node memory cache: a byte-budgeted LRU keyed by virtual time.

One :class:`NodeCache` lives on each :class:`~repro.faas.invoker_node.
InvokerNode` and holds recently produced/consumed intermediate objects
(shuffle partitions, DAG node results) in memory.  Two properties matter
beyond plain LRU:

* **Recency is virtual time, not wall order.**  Touches are stamped with
  the kernel clock and eviction picks the minimum ``(last_used, key)``.
  Two entries touched at the same virtual instant order by key, so the
  victim choice — and therefore the whole cache timeline — is a pure
  function of the simulated history, independent of how the OS interleaves
  the real threads that model concurrent functions.  This is what lets
  same-seed cached runs export byte-identical traces.
* **Entries are tagged with the container that produced (or fetched)
  them.**  Warm-container memory is where the data physically lives, so
  when a container is reclaimed — idle-TTL expiry, pressure eviction, or a
  chaos-injected crash — its entries vanish with it and readers fall back
  to a peer or to COS.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

__all__ = ["NodeCache"]


class _Entry:
    __slots__ = ("blob", "container_id", "last_used")

    def __init__(self, blob: bytes, container_id: Optional[str], now: float) -> None:
        self.blob = blob
        self.container_id = container_id
        self.last_used = now


class NodeCache:
    """Byte-budgeted LRU cache hosted by one invoker node."""

    def __init__(
        self,
        node_id: int,
        budget_bytes: int,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        self.node_id = node_id
        self.budget_bytes = int(budget_bytes)
        self._clock = clock or (lambda: 0.0)
        self._entries: dict[str, _Entry] = {}
        self._used = 0
        self._lock = threading.Lock()
        # counters (observability; aggregated by the plane)
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # -- introspection -----------------------------------------------------
    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def peek_size(self, key: str) -> Optional[int]:
        """Size of a resident entry without touching its recency."""
        with self._lock:
            entry = self._entries.get(key)
            return len(entry.blob) if entry is not None else None

    def container_bytes(self, container_id: str) -> int:
        """Bytes currently held on behalf of one container."""
        with self._lock:
            return sum(
                len(e.blob)
                for e in self._entries.values()
                if e.container_id == container_id
            )

    # -- reads -------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The cached blob, refreshing its recency; ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            entry.last_used = self._clock()
            self.hits += 1
            return entry.blob

    # -- writes ------------------------------------------------------------
    def put(
        self, key: str, blob: bytes, container_id: Optional[str]
    ) -> list[tuple[str, int]]:
        """Insert (or refresh) an entry, evicting LRU victims for room.

        Returns the ``(key, size)`` pairs evicted to make space — the
        caller (the plane) deregisters them from the directory and emits
        their trace points.  An object larger than the whole budget is not
        cached at all (returning ``[]``): correctness never depends on
        residency, so the write-through copy in COS simply serves alone.
        """
        size = len(blob)
        with self._lock:
            existing = self._entries.pop(key, None)
            if existing is not None:
                self._used -= len(existing.blob)
            if size > self.budget_bytes:
                return []
            evicted: list[tuple[str, int]] = []
            while self._used + size > self.budget_bytes:
                victim = min(
                    self._entries.items(),
                    key=lambda item: (item[1].last_used, item[0]),
                )[0]
                victim_entry = self._entries.pop(victim)
                self._used -= len(victim_entry.blob)
                self.evictions += 1
                evicted.append((victim, len(victim_entry.blob)))
            self._entries[key] = _Entry(blob, container_id, self._clock())
            self._used += size
            self.insertions += 1
            return evicted

    # -- removal -----------------------------------------------------------
    def drop(self, key: str) -> Optional[int]:
        """Remove one entry; returns its size, or ``None`` if absent."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self._used -= len(entry.blob)
            return len(entry.blob)

    def drop_container(self, container_id: str) -> list[tuple[str, int]]:
        """Remove every entry the given container held (reclaim/crash)."""
        with self._lock:
            doomed = sorted(
                key
                for key, entry in self._entries.items()
                if entry.container_id == container_id
            )
            dropped = []
            for key in doomed:
                entry = self._entries.pop(key)
                self._used -= len(entry.blob)
                dropped.append((key, len(entry.blob)))
            return dropped
