"""The cache plane: per-node memory caches + a consistent-hash directory.

:class:`CachePlane` is the cluster-wide view of the intermediate-data
cache tier (ARCHITECTURE.md §10).  It owns one
:class:`~repro.cache.node_cache.NodeCache` per invoker node and the
directory that records *which* nodes hold a key.  The directory metadata
itself is free at simulation granularity — registration piggybacks on the
status/result writes producers already make — but *consulting* a remote
directory owner and *moving* the bytes are charged by the reader through
its own in-cloud :class:`~repro.net.link.NetworkLink`
(see ``InternalStorage._exchange_get_steps``).

Consistency story: the cache is strictly a performance tier.  Every write
goes through to COS first (write-through), a publish invalidates stale
copies on other nodes, and any lookup path — local, peer, directory — may
fail or find nothing, in which case the reader transparently falls back
to COS.  Correctness therefore never depends on cache residency, which is
what lets the chaos plane crash containers (dropping their entries)
without any recovery protocol.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.cache.node_cache import NodeCache
from repro.cache.ring import HashRing

__all__ = ["CachePlane"]


class CachePlane:
    """One cache tier per emulated cloud; inert unless config enables it."""

    def __init__(
        self,
        config: Any,
        n_nodes: int,
        kernel: Any = None,
        tracer: Any = None,
    ) -> None:
        self.config = config
        self.kernel = kernel
        #: optional :class:`repro.trace.Tracer`; cache traffic is emitted
        #: as ``cache.*`` events on the "cache" layer
        self.tracer = tracer
        clock = kernel.now if kernel is not None else None
        self.nodes = [
            NodeCache(i, config.node_budget_bytes, clock=clock)
            for i in range(n_nodes)
        ]
        self.ring = HashRing(n_nodes, config.ring_vnodes)
        self._directory: dict[str, set[int]] = {}
        self._lock = threading.Lock()
        # aggregate read-path counters (virtual seconds + bytes by source)
        self._counters = {
            "local_hits": 0,
            "peer_hits": 0,
            "cos_misses": 0,
            "peer_failures": 0,
            "bytes_from_memory": 0,
            "bytes_from_peers": 0,
            "bytes_from_cos": 0,
            "read_seconds_local": 0.0,
            "read_seconds_peer": 0.0,
            "read_seconds_cos": 0.0,
        }
        self._evictions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self.config.enabled)

    def node(self, node_id: int) -> NodeCache:
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Cost model (virtual seconds; far below the COS path)
    # ------------------------------------------------------------------
    def hit_delay(self, nbytes: int) -> float:
        """Local memory read: fixed latency + bytes / memory bandwidth."""
        return self.config.hit_latency_s + nbytes / self.config.memory_bandwidth_bps

    def peer_transfer_delay(self, nbytes: int) -> float:
        """Node-to-node payload time (the RTT rides the reader's link)."""
        return nbytes / self.config.peer_bandwidth_bps

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------
    def holders(self, key: str) -> list[int]:
        """Node ids recorded as holding ``key`` (sorted, deterministic)."""
        with self._lock:
            return sorted(self._directory.get(key, ()))

    def directory_owner(self, key: str) -> int:
        """The node owning ``key``'s directory shard (consistent hash)."""
        return self.ring.owner(key)

    def locate(self, key: str) -> list[tuple[int, int]]:
        """``(node_id, resident_bytes)`` for every live copy of ``key``.

        Consults the node caches directly (without touching recency) and
        prunes directory entries that turn out stale — the peer-lookup
        consistency invariant the tests pin.
        """
        located: list[tuple[int, int]] = []
        for node_id in self.holders(key):
            size = self.nodes[node_id].peek_size(key)
            if size is None:
                self._deregister(key, node_id)
            else:
                located.append((node_id, size))
        return located

    def _register(self, key: str, node_id: int, exclusive: bool = False) -> set[int]:
        """Record a holder; ``exclusive`` replaces the holder set (a fresh
        write supersedes every older copy).  Returns the displaced ids."""
        with self._lock:
            previous = self._directory.get(key, set())
            if exclusive:
                displaced = previous - {node_id}
                self._directory[key] = {node_id}
                return displaced
            self._directory.setdefault(key, set()).add(node_id)
            return set()

    def _deregister(self, key: str, node_id: int) -> None:
        with self._lock:
            holders = self._directory.get(key)
            if holders is not None:
                holders.discard(node_id)
                if not holders:
                    del self._directory[key]

    # ------------------------------------------------------------------
    # Data path (bookkeeping only — callers charge the virtual time)
    # ------------------------------------------------------------------
    def local_get(self, key: str, node_id: int) -> Optional[bytes]:
        return self.nodes[node_id].get(key)

    def peer_get(
        self, key: str, reader_node: int
    ) -> Optional[tuple[bytes, int]]:
        """Fetch ``key`` from the first live peer copy (lowest node id)."""
        for node_id, _size in self.locate(key):
            if node_id == reader_node:
                continue
            blob = self.nodes[node_id].get(key)
            if blob is not None:
                return blob, node_id
            self._deregister(key, node_id)
        return None

    def publish(
        self, key: str, blob: bytes, node_id: int, container_id: Optional[str]
    ) -> None:
        """Write-through insert by the producer: supersedes older copies."""
        displaced = self._register(key, node_id, exclusive=True)
        for stale_node in sorted(displaced):
            if self.nodes[stale_node].drop(key) is not None:
                self._count_eviction("invalidate")
                self.trace_point(
                    "cache.evict", node=stale_node, key=key, reason="invalidate"
                )
        self._admit_local(key, blob, node_id, container_id)
        self.trace_point("cache.put", node=node_id, key=key, bytes=len(blob))

    def admit(
        self, key: str, blob: bytes, node_id: int, container_id: Optional[str]
    ) -> None:
        """Populate a reader's local cache with an additional copy."""
        self._register(key, node_id)
        self._admit_local(key, blob, node_id, container_id)

    def _admit_local(
        self, key: str, blob: bytes, node_id: int, container_id: Optional[str]
    ) -> None:
        evicted = self.nodes[node_id].put(key, blob, container_id)
        if not self.nodes[node_id].__contains__(key):
            # over-budget object: it was never stored, only written through
            self._deregister(key, node_id)
        for victim, size in evicted:
            self._deregister(victim, node_id)
            self._count_eviction("lru")
            self.trace_point(
                "cache.evict", node=node_id, key=victim, bytes=size, reason="lru"
            )

    # ------------------------------------------------------------------
    # Invalidation & reclaim
    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> None:
        """Drop every copy of ``key`` (its COS object was deleted/replaced)."""
        for node_id in self.holders(key):
            if self.nodes[node_id].drop(key) is not None:
                self._count_eviction("invalidate")
                self.trace_point(
                    "cache.evict", node=node_id, key=key, reason="invalidate"
                )
            self._deregister(key, node_id)

    def invalidate_prefix(self, prefix: str) -> None:
        """Invalidate every cached key under ``prefix`` (executor.clean)."""
        with self._lock:
            doomed = sorted(k for k in self._directory if k.startswith(prefix))
        for key in doomed:
            self.invalidate(key)

    def reclaim_container(
        self, node_id: int, container_id: str, reason: str
    ) -> int:
        """A container died or was reclaimed: its entries vanish with it.

        Returns the number of bytes dropped.  Called by
        :class:`~repro.faas.invoker_node.InvokerNode` on idle eviction,
        TTL expiry and chaos-injected crashes — the transparent-fallback
        half of the chaos interplay.
        """
        dropped = self.nodes[node_id].drop_container(container_id)
        total = 0
        for key, size in dropped:
            self._deregister(key, node_id)
            self._count_eviction(reason)
            total += size
            self.trace_point(
                "cache.evict", node=node_id, key=key, bytes=size, reason=reason
            )
        return total

    # ------------------------------------------------------------------
    # Counters / stats
    # ------------------------------------------------------------------
    def _count_eviction(self, reason: str) -> None:
        with self._lock:
            self._evictions[reason] = self._evictions.get(reason, 0) + 1

    def note_read(self, source: str, nbytes: int, seconds: float) -> None:
        """Account one intermediate read: source is local|peer|cos."""
        with self._lock:
            if source == "local":
                self._counters["local_hits"] += 1
                self._counters["bytes_from_memory"] += nbytes
                self._counters["read_seconds_local"] += seconds
            elif source == "peer":
                self._counters["peer_hits"] += 1
                self._counters["bytes_from_peers"] += nbytes
                self._counters["read_seconds_peer"] += seconds
            else:
                self._counters["cos_misses"] += 1
                self._counters["bytes_from_cos"] += nbytes
                self._counters["read_seconds_cos"] += seconds

    def note_peer_failure(self) -> None:
        with self._lock:
            self._counters["peer_failures"] += 1

    def stats(self) -> dict[str, Any]:
        """Aggregate counters for reports and benchmarks."""
        with self._lock:
            stats = dict(self._counters)
            stats["evictions"] = dict(self._evictions)
        stats["intermediate_reads"] = (
            stats["local_hits"] + stats["peer_hits"] + stats["cos_misses"]
        )
        stats["read_seconds_total"] = (
            stats["read_seconds_local"]
            + stats["read_seconds_peer"]
            + stats["read_seconds_cos"]
        )
        stats["resident_bytes"] = sum(n.used_bytes for n in self.nodes)
        return stats

    # ------------------------------------------------------------------
    # Trace emission (no-ops unless the environment traces)
    # ------------------------------------------------------------------
    def trace_point(self, name: str, **attrs: Any) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.point(name, "cache", **attrs)

    def trace_span(self, name: str, t0: float, t1: float, **attrs: Any) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.span_at(name, "cache", t0, t1, **attrs)
