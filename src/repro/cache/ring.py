"""Consistent-hash ring: stable key → node assignment for the cache directory.

The directory that tells readers *where* an intermediate object is cached
is itself sharded: every key has one deterministic *owner* node, computed
by consistent hashing, so any function can find the owner without a
central lookup service.  Virtual nodes smooth the assignment — with
``vnodes`` points per physical node the share each node owns concentrates
around ``1/n`` — and the hash is built on :func:`hashlib.sha256` of the
key text, so the mapping is identical across processes and runs
(independent of ``PYTHONHASHSEED``), which the byte-identical-trace
guarantee relies on.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _hash64(text: str) -> int:
    """Stable 64-bit position on the ring."""
    digest = hashlib.sha256(text.encode("utf-8", "backslashreplace")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps string keys onto ``n_nodes`` integer node ids, consistently.

    Immutable after construction: the emulated cluster has a fixed node
    count (``SystemLimits.invoker_count``), so there is no rebalancing
    path — what matters here is that every participant computes the same
    owner for the same key.
    """

    def __init__(self, n_nodes: int, vnodes: int = 64) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.n_nodes = n_nodes
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for node_id in range(n_nodes):
            for replica in range(vnodes):
                points.append((_hash64(f"node-{node_id}#{replica}"), node_id))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [o for _, o in points]

    def owner(self, key: str) -> int:
        """The node id owning ``key``'s directory entry."""
        position = _hash64(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def shares(self) -> dict[int, float]:
        """Fraction of the ring each node owns (diagnostics/tests)."""
        totals = dict.fromkeys(range(self.n_nodes), 0)
        span = 2**64
        previous = self._positions[-1] - span
        for position, owner in zip(self._positions, self._owners):
            totals[owner] += position - previous
            previous = position
        return {node: arc / span for node, arc in totals.items()}
