"""repro.cache — the memory-tier intermediate-data cache plane.

A tiered data-exchange path for intermediates (shuffle partitions, DAG
node outputs, mergesort runs): write-through to COS, read cache-first —
local memory hit, then a peer node over the emulated network, then the
COS fallback that correctness always rests on.  See ARCHITECTURE.md §10.
"""

from repro.cache.node_cache import NodeCache
from repro.cache.plane import CachePlane
from repro.cache.ring import HashRing

__all__ = ["CachePlane", "HashRing", "NodeCache"]
