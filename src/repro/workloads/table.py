"""Partitioned tabular dataset with zone maps — the scan substrate.

A "listings" table is hosted as one fixed-width-row CSV virtual object per
city (same hosting trick as the Airbnb reviews: true size, content
generated deterministically per byte range) plus a *zone-map manifest*: a
JSON sidecar recording, for every row group, its byte range and the
min/max of every column.  Fixed-width rows make the byte layout algebraic
— row group ``g`` of an object occupies exactly
``[g * rows_per_group * ROW_BYTES, ...)`` — so a scan planner can turn
"which row groups might match" directly into COS byte ranges without ever
touching the data, and range boundaries never cut a row in half.

The ``day`` column is monotonically non-decreasing within each object
(rows are date-ordered, like real review/booking exports), which is what
makes zone-map pruning on day-range predicates effective; ``price`` /
``stars`` / ``nights`` are per-row randoms, so predicates on them
exercise the worker-side filter rather than the planner.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Optional

from repro.cos.object_store import CloudObjectStorage
from repro.datasets.airbnb import CITIES

#: column order of every row (and of the fixed-width CSV layout)
COLUMNS = ("id", "day", "city", "price", "stars", "nights")

#: columns whose zone-map min/max are numeric
NUMERIC_COLUMNS = ("id", "day", "price", "stars", "nights")

#: bytes per row, newline included — fixed width so group ``g`` starts at
#: byte ``g * rows_per_group * ROW_BYTES`` and rows never straddle ranges
ROW_BYTES = 36

#: days spanned by each object's date ordering
DAYS = 365

#: zone-map granularity (rows per group) unless ``load_table`` overrides
DEFAULT_ROWS_PER_GROUP = 64

DEFAULT_BUCKET = "listings"

#: the zone-map manifest sidecar, one per table bucket
MANIFEST_KEY = "_meta/zonemap.json"

_PRICE_RANGE = (20, 500)
_STARS_RANGE = (1, 5)
_NIGHTS_RANGE = (1, 30)

#: widest city name must fit the fixed-width city field
_CITY_WIDTH = 13


@dataclass(frozen=True)
class TableInfo:
    """Handle returned by :func:`load_table` (the manifest is the truth)."""

    bucket: str
    keys: tuple[str, ...]
    total_rows: int
    rows_per_group: int

    @property
    def total_bytes(self) -> int:
        return self.total_rows * ROW_BYTES


def format_row(values: dict) -> bytes:
    """Fixed-width CSV encoding of one row (exactly ``ROW_BYTES`` bytes)."""
    line = (
        f"{values['id']:08d},{values['day']:03d},"
        f"{values['city']:<{_CITY_WIDTH}s},{values['price']:03d},"
        f"{values['stars']:d},{values['nights']:02d}\n"
    )
    encoded = line.encode("ascii")
    if len(encoded) != ROW_BYTES:
        raise ValueError(f"row {values!r} encodes to {len(encoded)} bytes")
    return encoded


def parse_row(line: bytes) -> Optional[dict]:
    """Decode one fixed-width row; ``None`` for blank/malformed lines."""
    parts = line.split(b",")
    if len(parts) != len(COLUMNS):
        return None
    try:
        return {
            "id": int(parts[0]),
            "day": int(parts[1]),
            "city": parts[2].decode("ascii").rstrip(),
            "price": int(parts[3]),
            "stars": int(parts[4]),
            "nights": int(parts[5]),
        }
    except ValueError:
        return None


def parse_rows(data: bytes) -> list[dict]:
    """Decode a group-aligned byte range into row dicts."""
    rows = []
    for offset in range(0, len(data) - ROW_BYTES + 1, ROW_BYTES):
        row = parse_row(data[offset : offset + ROW_BYTES - 1])
        if row is not None:
            rows.append(row)
    return rows


def group_rows(
    city: str, group: int, object_rows: int, rows_per_group: int
) -> list[dict]:
    """The rows of one zone-map group, generated deterministically.

    Shared by the content generator and the zone-map computation, so the
    manifest's statistics are exact for the bytes a scan will read.
    """
    first = group * rows_per_group
    last = min(object_rows, first + rows_per_group)
    digest = hashlib.sha256(f"listings:{city}:{group}".encode()).digest()
    rng = random.Random(digest)
    rows = []
    for rid in range(first, last):
        rows.append(
            {
                "id": rid,
                # date-ordered: monotone non-decreasing over the object
                "day": rid * DAYS // max(1, object_rows),
                "city": city,
                "price": rng.randint(*_PRICE_RANGE),
                "stars": rng.randint(*_STARS_RANGE),
                "nights": rng.randint(*_NIGHTS_RANGE),
            }
        )
    return rows


def _group_stats(rows: list[dict]) -> dict:
    stats: dict[str, dict] = {"min": {}, "max": {}}
    for col in NUMERIC_COLUMNS + ("city",):
        values = [row[col] for row in rows]
        stats["min"][col] = min(values)
        stats["max"][col] = max(values)
    return stats


def make_table_content_fn(city: str, object_rows: int, rows_per_group: int):
    """Deterministic byte-range generator for one table object."""
    group_bytes = rows_per_group * ROW_BYTES

    def content_fn(start: int, end: int) -> bytes:
        if end <= start:
            return b""
        first = start // group_bytes
        last = (end - 1) // group_bytes
        blob = b"".join(
            b"".join(
                format_row(row)
                for row in group_rows(city, g, object_rows, rows_per_group)
            )
            for g in range(first, last + 1)
        )
        offset = start - first * group_bytes
        return blob[offset : offset + (end - start)]

    return content_fn


def load_table(
    storage: CloudObjectStorage,
    bucket: str = DEFAULT_BUCKET,
    total_rows: int = 50_000,
    n_cities: int = 8,
    rows_per_group: int = DEFAULT_ROWS_PER_GROUP,
) -> TableInfo:
    """Create the table as virtual objects plus its zone-map manifest.

    One object per city (``rows/{city}.csv``), rows split evenly; the
    manifest at :data:`MANIFEST_KEY` records per-group byte ranges and
    min/max statistics that :func:`repro.workloads.scan.scan` prunes with.
    """
    if n_cities < 1 or n_cities > len(CITIES):
        raise ValueError(f"n_cities must be in [1, {len(CITIES)}]")
    if rows_per_group < 1:
        raise ValueError("rows_per_group must be positive")
    storage.create_bucket(bucket, exist_ok=True)
    cities = CITIES[:n_cities]
    base = total_rows // n_cities
    manifest: dict = {
        "row_bytes": ROW_BYTES,
        "rows_per_group": rows_per_group,
        "columns": list(COLUMNS),
        "objects": {},
    }
    keys = []
    for i, city in enumerate(cities):
        object_rows = base + (1 if i < total_rows % n_cities else 0)
        if object_rows == 0:
            continue
        key = f"rows/{city}.csv"
        keys.append(key)
        storage.put_virtual_object(
            bucket,
            key,
            object_rows * ROW_BYTES,
            content_fn=make_table_content_fn(city, object_rows, rows_per_group),
            metadata={"city": city, "rows": str(object_rows)},
        )
        groups = []
        n_groups = -(-object_rows // rows_per_group)
        for g in range(n_groups):
            rows = group_rows(city, g, object_rows, rows_per_group)
            start = g * rows_per_group * ROW_BYTES
            groups.append(
                {
                    "start": start,
                    "end": start + len(rows) * ROW_BYTES,
                    "rows": len(rows),
                    **_group_stats(rows),
                }
            )
        manifest["objects"][key] = {
            "rows": object_rows,
            "size": object_rows * ROW_BYTES,
            "groups": groups,
        }
    storage.put_object(
        bucket,
        MANIFEST_KEY,
        json.dumps(manifest, sort_keys=True).encode("ascii"),
        metadata={"kind": "zonemap"},
    )
    return TableInfo(
        bucket=bucket,
        keys=tuple(keys),
        total_rows=total_rows,
        rows_per_group=rows_per_group,
    )
