"""Predicate-pushdown scan operator over zone-mapped table objects.

``ScanSpec(columns, predicate, aggregate)`` describes a BI-style query —
projection, selection, optional aggregation with ``group_by`` — and
:func:`scan` compiles it against a table's zone-map manifest:

1. **plan**: row groups whose min/max statistics rule the predicate out
   are pruned; surviving groups coalesce into contiguous byte ranges and
   become :class:`~repro.core.partitioner.StoragePartition` units;
2. **push down**: each partition runs as one activation that reads only
   its byte range, applies selection + projection in the worker, and
   returns a pre-aggregated *partial*;
3. **merge**: partials meet in a single DAG reduce node (the same
   dependency-watched path ``map_reduce`` uses), so the client downloads
   one small result instead of every row.

``pushdown=False`` is the honest baseline the bench compares against:
no pruning, workers ship projected-but-unfiltered rows, and the client
filters and aggregates — the "full scan + client filter" shape naive
map-over-objects code produces.

Selectivity and byte counts are stamped on the ``scan`` trace layer
(``scan.plan`` / ``scan.partition`` / ``scan.merge`` / ``scan.result``).

The predicate/aggregation core (:class:`Col`, :func:`scan_rows`,
:func:`merge_partials`, :func:`plan_ranges`) is environment-free on
purpose: property tests check pushdown results against an in-memory
reference without spinning up a cloud.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.core import context as ambient
from repro.core.partitioner import StoragePartition
from repro.workloads import table as tbl

AGGREGATES = ("count", "sum", "min", "max", "avg")

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


# ---------------------------------------------------------------------------
# Predicate algebra
# ---------------------------------------------------------------------------


class Predicate:
    """A boolean expression over row columns.

    Implementations provide :meth:`matches` (exact, per row) and
    :meth:`possible` (conservative, per zone: may this predicate hold for
    *some* row whose column values lie within ``[lo, hi]``?).  ``possible``
    must never return ``False`` for a zone containing a matching row —
    that soundness contract is what makes pruning safe, and is what the
    hypothesis property in ``tests/workloads`` checks.
    """

    def matches(self, row: dict) -> bool:
        raise NotImplementedError

    def possible(self, lo: dict, hi: dict) -> bool:
        raise NotImplementedError

    def negated(self) -> "Predicate":
        raise NotImplementedError

    def columns(self) -> set[str]:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return self.negated()


@dataclass(frozen=True)
class Cmp(Predicate):
    """``column <op> value`` — the predicate leaves :class:`Col` builds."""

    col: str
    op: str
    value: Any

    def matches(self, row: dict) -> bool:
        return _OPS[self.op](row[self.col], self.value)

    def possible(self, lo: dict, hi: dict) -> bool:
        if self.col not in lo or self.col not in hi:
            return True  # no statistics for this column: cannot prune
        low, high = lo[self.col], hi[self.col]
        if self.op == "<":
            return low < self.value
        if self.op == "<=":
            return low <= self.value
        if self.op == ">":
            return high > self.value
        if self.op == ">=":
            return high >= self.value
        if self.op == "==":
            return low <= self.value <= high
        # "!=": only an all-equal zone pinned to exactly `value` is prunable
        return not (low == high == self.value)

    def negated(self) -> Predicate:
        return Cmp(self.col, _NEGATED[self.op], self.value)

    def columns(self) -> set[str]:
        return {self.col}

    def __repr__(self) -> str:
        return f"({self.col} {self.op} {self.value!r})"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, row: dict) -> bool:
        return self.left.matches(row) and self.right.matches(row)

    def possible(self, lo: dict, hi: dict) -> bool:
        return self.left.possible(lo, hi) and self.right.possible(lo, hi)

    def negated(self) -> Predicate:
        return Or(self.left.negated(), self.right.negated())

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, row: dict) -> bool:
        return self.left.matches(row) or self.right.matches(row)

    def possible(self, lo: dict, hi: dict) -> bool:
        return self.left.possible(lo, hi) or self.right.possible(lo, hi)

    def negated(self) -> Predicate:
        return And(self.left.negated(), self.right.negated())

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class Col:
    """Column reference: ``Col("price") < 100`` builds a :class:`Cmp`.

    Comparison operators return predicates (pandas-style), so ``Col``
    instances deliberately do not support equality-based hashing.
    """

    __hash__ = None  # type: ignore[assignment]

    def __init__(self, name: str) -> None:
        self.name = name

    def __lt__(self, value: Any) -> Cmp:
        return Cmp(self.name, "<", value)

    def __le__(self, value: Any) -> Cmp:
        return Cmp(self.name, "<=", value)

    def __gt__(self, value: Any) -> Cmp:
        return Cmp(self.name, ">", value)

    def __ge__(self, value: Any) -> Cmp:
        return Cmp(self.name, ">=", value)

    def __eq__(self, value: Any) -> Cmp:  # type: ignore[override]
        return Cmp(self.name, "==", value)

    def __ne__(self, value: Any) -> Cmp:  # type: ignore[override]
        return Cmp(self.name, "!=", value)

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


# ---------------------------------------------------------------------------
# Scan specification and the environment-free execution core
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanSpec:
    """What to project, filter and aggregate.

    * ``columns`` — projection (also the tuple order of returned rows);
    * ``predicate`` — selection, or ``None`` for all rows;
    * ``aggregate`` — one of ``count|sum|min|max|avg`` (``None`` returns
      the projected rows themselves);
    * ``agg_column`` — the aggregated column (required except ``count``);
    * ``group_by`` — optional grouping column for the aggregate.
    """

    columns: tuple[str, ...]
    predicate: Optional[Predicate] = None
    aggregate: Optional[str] = None
    agg_column: Optional[str] = None
    group_by: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("ScanSpec needs at least one projected column")
        if self.aggregate is not None:
            if self.aggregate not in AGGREGATES:
                raise ValueError(
                    f"aggregate must be one of {AGGREGATES}, "
                    f"got {self.aggregate!r}"
                )
            if self.aggregate != "count" and self.agg_column is None:
                raise ValueError(f"aggregate {self.aggregate!r} needs agg_column")
        elif self.agg_column is not None:
            raise ValueError("agg_column without aggregate")
        if self.group_by is not None and self.aggregate is None:
            raise ValueError("group_by without aggregate")

    def required_columns(self) -> set[str]:
        """Columns a worker must materialize to evaluate this spec."""
        needed = set(self.columns)
        if self.predicate is not None:
            needed |= self.predicate.columns()
        if self.agg_column is not None:
            needed.add(self.agg_column)
        if self.group_by is not None:
            needed.add(self.group_by)
        return needed


def _empty_partial(spec: ScanSpec) -> Any:
    if spec.group_by is not None:
        return {}
    return _empty_leaf(spec)


def _empty_leaf(spec: ScanSpec) -> Any:
    if spec.aggregate is None:
        return []
    if spec.aggregate == "count":
        return 0
    if spec.aggregate == "sum":
        return 0
    if spec.aggregate == "avg":
        return [0, 0]
    return None  # min/max over zero rows


def _fold_leaf(spec: ScanSpec, leaf: Any, row: dict) -> Any:
    if spec.aggregate is None:
        leaf.append(tuple(row[c] for c in spec.columns))
        return leaf
    if spec.aggregate == "count":
        return leaf + 1
    value = row[spec.agg_column]
    if spec.aggregate == "sum":
        return leaf + value
    if spec.aggregate == "avg":
        leaf[0] += value
        leaf[1] += 1
        return leaf
    if leaf is None:
        return value
    return min(leaf, value) if spec.aggregate == "min" else max(leaf, value)


def _merge_leaf(spec: ScanSpec, a: Any, b: Any) -> Any:
    if spec.aggregate is None:
        return a + b
    if spec.aggregate in ("count", "sum"):
        return a + b
    if spec.aggregate == "avg":
        return [a[0] + b[0], a[1] + b[1]]
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b) if spec.aggregate == "min" else max(a, b)


def scan_rows(spec: ScanSpec, rows: list[dict]) -> tuple[Any, int, int]:
    """Apply a spec to in-memory rows → ``(partial, scanned, matched)``."""
    partial = _empty_partial(spec)
    matched = 0
    for row in rows:
        if spec.predicate is not None and not spec.predicate.matches(row):
            continue
        matched += 1
        if spec.group_by is not None:
            key = row[spec.group_by]
            partial[key] = _fold_leaf(
                spec, partial.get(key, _empty_leaf(spec)), row
            )
        else:
            partial = _fold_leaf(spec, partial, row)
    return partial, len(rows), matched


def scan_partition_bytes(spec: ScanSpec, data: bytes) -> tuple[Any, int, int]:
    """Apply a spec to a group-aligned byte range of a table object."""
    return scan_rows(spec, tbl.parse_rows(data))


def merge_partials(spec: ScanSpec, partials: list[Any]) -> Any:
    """Associatively merge per-partition partials (order-insensitive for
    aggregates; row lists concatenate in partition order)."""
    merged = _empty_partial(spec)
    for partial in partials:
        if spec.group_by is not None:
            for key, leaf in partial.items():
                if key in merged:
                    merged[key] = _merge_leaf(spec, merged[key], leaf)
                else:
                    merged[key] = leaf
        else:
            merged = _merge_leaf(spec, merged, partial)
    return merged


def finalize(spec: ScanSpec, partial: Any) -> Any:
    """Turn a merged partial into the user-facing result value."""
    if spec.group_by is not None:
        return {k: _finalize_leaf(spec, v) for k, v in sorted(partial.items())}
    return _finalize_leaf(spec, partial)


def _finalize_leaf(spec: ScanSpec, leaf: Any) -> Any:
    if spec.aggregate == "avg":
        total, count = leaf
        return total / count if count else None
    return leaf


# ---------------------------------------------------------------------------
# Planning: zone maps → pruned, coalesced byte-range partitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanPlan:
    partitions: tuple[StoragePartition, ...]
    groups_total: int
    groups_pruned: int
    bytes_total: int
    bytes_planned: int


def plan_ranges(
    groups: list[dict], predicate: Optional[Predicate]
) -> list[tuple[int, int]]:
    """Surviving-group byte ranges for one object, adjacent runs coalesced."""
    ranges: list[tuple[int, int]] = []
    for group in groups:
        if predicate is not None and not predicate.possible(
            group["min"], group["max"]
        ):
            continue
        if ranges and ranges[-1][1] == group["start"]:
            ranges[-1] = (ranges[-1][0], group["end"])
        else:
            ranges.append((group["start"], group["end"]))
    return ranges


def plan_scan(
    manifest: dict,
    bucket: str,
    predicate: Optional[Predicate],
    groups_per_partition: int,
) -> ScanPlan:
    """Prune row groups against zone maps and cut survivors into partitions."""
    group_bytes = manifest["rows_per_group"] * manifest["row_bytes"]
    chunk = groups_per_partition * group_bytes
    partitions: list[StoragePartition] = []
    groups_total = groups_pruned = bytes_total = bytes_planned = 0
    for key in sorted(manifest["objects"]):
        obj = manifest["objects"][key]
        groups_total += len(obj["groups"])
        bytes_total += obj["size"]
        ranges = plan_ranges(obj["groups"], predicate)
        kept = sum(
            1
            for g in obj["groups"]
            if predicate is None or predicate.possible(g["min"], g["max"])
        )
        groups_pruned += len(obj["groups"]) - kept
        object_parts: list[tuple[int, int]] = []
        for start, end in ranges:
            bytes_planned += end - start
            cursor = start
            while cursor < end:
                object_parts.append((cursor, min(end, cursor + chunk)))
                cursor += chunk
        for i, (start, end) in enumerate(object_parts):
            partitions.append(
                StoragePartition(
                    bucket=bucket,
                    key=key,
                    range_start=start,
                    range_end=end,
                    object_size=obj["size"],
                    partition_index=i,
                    partitions_of_object=len(object_parts),
                )
            )
    return ScanPlan(
        partitions=tuple(partitions),
        groups_total=groups_total,
        groups_pruned=groups_pruned,
        bytes_total=bytes_total,
        bytes_planned=bytes_planned,
    )


# ---------------------------------------------------------------------------
# The distributed operator
# ---------------------------------------------------------------------------


@dataclass
class ScanResult:
    """What :func:`scan` returns: the value plus execution statistics."""

    value: Any
    rows_scanned: int
    rows_matched: int
    bytes_read: int
    partitions: int
    groups_total: int
    groups_pruned: int
    pushdown: bool

    @property
    def selectivity(self) -> float:
        if self.rows_scanned == 0:
            return 0.0
        return self.rows_matched / self.rows_scanned


def _worker_tracer():
    """The environment tracer as seen from inside a running activation."""
    ctx = ambient.require_context()
    ec = ctx.execution_context
    tracer = getattr(ctx.environment, "tracer", None)
    if tracer is not None and not tracer.enabled:
        tracer = None
    return tracer, ec


def _make_scan_worker(spec: ScanSpec, pushdown: bool):
    if pushdown:
        worker_spec = spec
    else:
        # baseline workers only project: selection/aggregation happen at
        # the client, so every (projected) row crosses the network
        worker_spec = ScanSpec(columns=tuple(sorted(spec.required_columns())))

    def scan_partition(partition: StoragePartition):
        tracer, ec = _worker_tracer()
        t0 = ec.kernel.now()
        data = partition.read()
        partial, scanned, matched = scan_partition_bytes(worker_spec, data)
        if tracer is not None:
            tracer.span_at(
                "scan.partition",
                "scan",
                t0,
                ec.kernel.now(),
                key=partition.key,
                bytes_read=len(data),
                rows_scanned=scanned,
                rows_matched=matched,
                selectivity=round(matched / scanned, 6) if scanned else 0.0,
                pushdown=pushdown,
            )
        return {
            "partial": partial,
            "rows_scanned": scanned,
            "rows_matched": matched,
            "bytes_read": len(data),
        }

    return scan_partition


def _make_scan_merge(spec: ScanSpec):
    def merge_scan(results: list[dict]):
        tracer, ec = _worker_tracer()
        t0 = ec.kernel.now()
        merged = {
            "partial": merge_partials(spec, [r["partial"] for r in results]),
            "rows_scanned": sum(r["rows_scanned"] for r in results),
            "rows_matched": sum(r["rows_matched"] for r in results),
            "bytes_read": sum(r["bytes_read"] for r in results),
        }
        if tracer is not None:
            tracer.span_at(
                "scan.merge",
                "scan",
                t0,
                ec.kernel.now(),
                partials=len(results),
                rows_matched=merged["rows_matched"],
            )
        return merged

    return merge_scan


def scan(
    executor,
    table: Union[str, tbl.TableInfo],
    spec: ScanSpec,
    *,
    pushdown: bool = True,
    groups_per_partition: int = 8,
    retries: Optional[int] = None,
) -> ScanResult:
    """Run a scan over a zone-mapped table (see the module docstring).

    ``table`` is a bucket name or the :class:`~repro.workloads.table.TableInfo`
    handle ``load_table`` returned; the zone-map manifest is fetched from
    the bucket.  ``groups_per_partition`` sets how many surviving row
    groups one activation covers.
    """
    if groups_per_partition < 1:
        raise ValueError("groups_per_partition must be positive")
    bucket = table if isinstance(table, str) else table.bucket
    manifest = json.loads(executor._cos.get_object(bucket, tbl.MANIFEST_KEY))
    plan = plan_scan(
        manifest,
        bucket,
        spec.predicate if pushdown else None,
        groups_per_partition,
    )
    tracer = executor.tracer
    if tracer is not None and tracer.enabled:
        tracer.point(
            "scan.plan",
            "scan",
            executor.kernel.now(),
            groups_total=plan.groups_total,
            groups_pruned=plan.groups_pruned,
            partitions=len(plan.partitions),
            bytes_planned=plan.bytes_planned,
            pushdown=pushdown,
        )
    if not plan.partitions:
        return ScanResult(
            value=finalize(spec, _empty_partial(spec)),
            rows_scanned=0,
            rows_matched=0,
            bytes_read=0,
            partitions=0,
            groups_total=plan.groups_total,
            groups_pruned=plan.groups_pruned,
            pushdown=pushdown,
        )
    futures = executor.map_partitions(
        _make_scan_worker(spec, pushdown),
        list(plan.partitions),
        retries=retries,
    )
    if pushdown:
        merged_future = executor._spawn_reducer(
            _make_scan_merge(spec), futures, retries=retries
        )
        merged = executor.get_result(merged_future)
        partial = merged["partial"]
    else:
        results = executor.get_result(futures)
        baseline_columns = tuple(sorted(spec.required_columns()))
        rows = [
            dict(zip(baseline_columns, values))
            for result in results
            for values in result["partial"]
        ]
        partial, _, matched = scan_rows(spec, rows)
        merged = {
            "partial": partial,
            "rows_scanned": sum(r["rows_scanned"] for r in results),
            "rows_matched": matched,
            "bytes_read": sum(r["bytes_read"] for r in results),
        }
    result = ScanResult(
        value=finalize(spec, partial),
        rows_scanned=merged["rows_scanned"],
        rows_matched=merged["rows_matched"],
        bytes_read=merged["bytes_read"],
        partitions=len(plan.partitions),
        groups_total=plan.groups_total,
        groups_pruned=plan.groups_pruned,
        pushdown=pushdown,
    )
    if tracer is not None and tracer.enabled:
        tracer.point(
            "scan.result",
            "scan",
            executor.kernel.now(),
            rows_scanned=result.rows_scanned,
            rows_matched=result.rows_matched,
            selectivity=round(result.selectivity, 6),
            bytes_read=result.bytes_read,
            pushdown=pushdown,
        )
    return result
