"""BI/analytics workload suite on top of the IBM-PyWren core.

The paper's §6 use cases are one-shot batch shapes (mergesort, wordcount,
tone maps).  This package adds the workload families that BI work is
actually made of underneath:

* :mod:`repro.workloads.table` — a partitioned tabular dataset hosted as
  fixed-width-row virtual COS objects with a *zone-map* manifest (per
  row-group min/max statistics), the substrate scans prune against;
* :mod:`repro.workloads.scan` — a predicate-pushdown scan operator:
  ``ScanSpec(columns, predicate, aggregate)`` compiled to per-partition
  activations that read only the byte ranges the zone maps cannot rule
  out, apply selection/projection in the worker, and merge pre-aggregated
  partials through the DAG path;
* :mod:`repro.workloads.streaming` — micro-batch streaming: a virtual-time
  source appends objects on a schedule and ``windowed_map_reduce`` submits
  one DAG per window, with watermark/late-arrival handling and partial
  reuse across overlapping windows;
* :mod:`repro.workloads.reviewlens` — a review-analytics pipeline
  composing scan → tone analysis → per-city roll-ups over the Airbnb
  dataset, runnable under the centralized and swarm DAG schedulers.

See ``docs/WORKLOADS.md`` for the guide and ``make bench-workloads`` for
the measured claims (BENCH_workloads.json).
"""

from repro.workloads.reviewlens import review_analytics
from repro.workloads.scan import (
    Col,
    Predicate,
    ScanResult,
    ScanSpec,
    scan,
)
from repro.workloads.streaming import (
    StreamSource,
    WindowResult,
    windowed_map_reduce,
    windows_for,
)
from repro.workloads.table import TableInfo, load_table

__all__ = [
    "Col",
    "Predicate",
    "ScanResult",
    "ScanSpec",
    "scan",
    "StreamSource",
    "WindowResult",
    "windowed_map_reduce",
    "windows_for",
    "TableInfo",
    "load_table",
    "review_analytics",
]
