"""Micro-batch streaming: windowed map_reduce over arriving objects.

Serverless "streaming" on a COS substrate is micro-batching: a source
appends objects to a bucket on a schedule (virtual time makes the schedule
exact and free), and a driver turns every window of event time into one
DAG — map nodes per source object, one reduce node per window — submitted
the moment the *watermark* passes the window's end.

The pieces:

* :class:`StreamSource` — a pre-planned sequence of ``(arrival, key,
  event_time, payload)`` batches; :meth:`StreamSource.synthetic` builds a
  deterministic one with configurable out-of-orderness and late stragglers;
* :func:`windowed_map_reduce` — the driver.  Windows are
  ``[k*slide, k*slide + window)``; the watermark trails the maximum event
  time seen by ``allowed_lateness_s``.  An object arriving for a window
  that already fired is *late*: policy ``"drop"`` records it,
  ``"refire"`` resubmits the window with the straggler included (a
  revised :class:`WindowResult`);
* **partial reuse** — with ``slide < window`` consecutive windows share
  source objects.  Each object's map partial is computed once and adopted
  into later window DAGs as an external node, so overlapping windows
  re-read the same small result object — which the ``cached-cos``
  exchange tier serves from memory (``make bench-workloads`` measures the
  hit rate).

Ingests, fires, and late events are stamped on the ``stream`` trace layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core import context as ambient
from repro.core import serializer
from repro.vtime import now, sleep


@dataclass(frozen=True)
class StreamBatch:
    """One object the source will append."""

    arrival_s: float
    key: str
    event_time_s: float
    payload: Any


@dataclass
class WindowResult:
    """The outcome of one fired window."""

    index: int
    start_s: float
    end_s: float
    value: Any
    keys: tuple[str, ...]
    reused_partials: int
    late_dropped: tuple[str, ...] = ()
    revision: int = 0


def windows_for(
    event_time_s: float, window_s: float, slide_s: float
) -> list[int]:
    """Indices ``k`` with ``k*slide <= t < k*slide + window`` (k >= 0)."""
    if event_time_s < 0:
        raise ValueError("event time must be non-negative")
    k_max = int(event_time_s // slide_s)
    k_min = max(0, int((event_time_s - window_s) // slide_s) + 1)
    # floor() via int() mis-rounds exact boundaries: correct both ends
    while k_min * slide_s + window_s <= event_time_s:
        k_min += 1
    while (k_max + 1) * slide_s <= event_time_s:
        k_max += 1
    return list(range(k_min, k_max + 1))


class StreamSource:
    """A virtual-time object source: appends ``batches`` to ``bucket``."""

    def __init__(self, bucket: str, batches: list[StreamBatch]) -> None:
        self.bucket = bucket
        self.batches = sorted(
            batches, key=lambda b: (b.arrival_s, b.key)
        )
        keys = [b.key for b in self.batches]
        if len(set(keys)) != len(keys):
            raise ValueError("stream batch keys must be unique")

    @staticmethod
    def synthetic(
        n_objects: int,
        period_s: float,
        *,
        bucket: str = "stream",
        seed: int = 7,
        values_per_object: int = 32,
        jitter_s: float = 0.0,
        late_every: int = 0,
        late_by_s: float = 0.0,
    ) -> "StreamSource":
        """A deterministic synthetic stream.

        Object ``i`` has event time ``i * period_s`` and payload
        ``values_per_object`` seeded random ints.  Arrival is event time
        plus uniform jitter in ``[0, jitter_s]``; every ``late_every``-th
        object (when > 0) additionally arrives ``late_by_s`` late — the
        stragglers the watermark machinery exists for.
        """
        import hashlib
        import random

        batches = []
        for i in range(n_objects):
            digest = hashlib.sha256(f"stream:{seed}:{i}".encode()).digest()
            rng = random.Random(digest)
            event_time = i * period_s
            arrival = event_time + (rng.random() * jitter_s)
            if late_every > 0 and i > 0 and i % late_every == 0:
                arrival += late_by_s
            batches.append(
                StreamBatch(
                    arrival_s=arrival,
                    key=f"events/{i:06d}.bin",
                    event_time_s=event_time,
                    payload=[rng.randint(0, 1000) for _ in range(values_per_object)],
                )
            )
        return StreamSource(bucket, batches)


def _make_stream_map(bucket: str, map_function: Callable[[Any], Any]):
    def stream_map(key: str):
        ctx = ambient.require_context()
        data = ctx.execution_context.cos.get_object(bucket, key)
        return map_function(serializer.deserialize(data))

    return stream_map


class _Window:
    __slots__ = (
        "index", "keys", "fired", "future", "reused",
        "late_dropped", "revision",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.keys: list[str] = []
        self.fired = False
        self.future = None
        self.reused = 0
        self.late_dropped: list[str] = []
        self.revision = -1  # first fire is revision 0


def windowed_map_reduce(
    executor,
    source: StreamSource,
    map_function: Callable[[Any], Any],
    reduce_function: Callable[[list[Any]], Any],
    *,
    window_s: float,
    slide_s: Optional[float] = None,
    allowed_lateness_s: float = 0.0,
    late_policy: str = "drop",
    reuse_partials: bool = True,
    retries: Optional[int] = None,
) -> list[WindowResult]:
    """Consume a :class:`StreamSource` as windowed micro-batches.

    Blocks (in virtual time) until the source is exhausted and every
    window's DAG has completed; returns :class:`WindowResult` objects in
    window order.  Windows that never saw an object are not reported.

    With ``reuse_partials=True`` (default) each object's map partial is
    computed by the first window that fires over it; later overlapping
    windows adopt the already-submitted future as an external DAG node
    instead of re-running the map.
    """
    if late_policy not in ("drop", "refire"):
        raise ValueError("late_policy must be 'drop' or 'refire'")
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    slide = slide_s if slide_s is not None else window_s
    if slide <= 0:
        raise ValueError("slide_s must be positive")
    tracer = executor.tracer
    if tracer is not None and not tracer.enabled:
        tracer = None

    executor.environment.storage.create_bucket(source.bucket, exist_ok=True)
    stream_map = _make_stream_map(source.bucket, map_function)
    windows: dict[int, _Window] = {}
    partial_futures: dict[str, Any] = {}
    max_event_time = float("-inf")

    def _fire(win: _Window) -> None:
        from repro.dag import DagBuilder, DagScheduler

        builder = DagBuilder()
        inputs = []
        reused = 0
        fresh: list[tuple[str, Any]] = []
        for key in win.keys:
            if reuse_partials and key in partial_futures:
                inputs.append(
                    builder.external(
                        partial_futures[key], name=f"partial:{key}", stage="map"
                    )
                )
                reused += 1
            else:
                node = builder.call(
                    stream_map, key, name=f"map:{key}", stage="map",
                    fusable=False,
                )
                inputs.append(node)
                fresh.append((key, node))
        reduce_node = builder.reduce(
            reduce_function,
            inputs,
            name=f"window:{win.index}",
            stage="reduce",
            fusable=False,
        )
        run = DagScheduler(executor, label="W", retries=retries).submit(
            builder.build(fuse=False)
        )
        if reuse_partials:
            for key, node in fresh:
                partial_futures[key] = run.expose(node)
        win.future = run.expose(reduce_node)
        win.fired = True
        win.reused = reused
        win.revision += 1
        if tracer is not None:
            tracer.point(
                "stream.fire",
                "stream",
                executor.kernel.now(),
                window=win.index,
                start=win.index * slide,
                end=win.index * slide + window_s,
                objects=len(win.keys),
                reused=reused,
                revision=win.revision,
            )

    def _fire_ready(watermark: float) -> None:
        for k in sorted(windows):
            win = windows[k]
            if not win.fired and win.keys and k * slide + window_s <= watermark:
                _fire(win)

    cos = executor._cos
    for batch in source.batches:
        delay = batch.arrival_s - now()
        if delay > 0:
            sleep(delay)
        cos.put_object(
            source.bucket,
            batch.key,
            serializer.serialize(batch.payload),
            metadata={"event_time": repr(batch.event_time_s)},
        )
        max_event_time = max(max_event_time, batch.event_time_s)
        watermark = max_event_time - allowed_lateness_s
        if tracer is not None:
            tracer.point(
                "stream.ingest",
                "stream",
                executor.kernel.now(),
                key=batch.key,
                event_time=batch.event_time_s,
                watermark=watermark,
            )
        for k in windows_for(batch.event_time_s, window_s, slide):
            win = windows.setdefault(k, _Window(k))
            if win.fired:
                if tracer is not None:
                    tracer.point(
                        "stream.late",
                        "stream",
                        executor.kernel.now(),
                        key=batch.key,
                        window=k,
                        event_time=batch.event_time_s,
                        watermark=watermark,
                        policy=late_policy,
                    )
                if late_policy == "drop":
                    win.late_dropped.append(batch.key)
                else:
                    win.keys.append(batch.key)
                    _fire(win)  # refire with the straggler included
            else:
                win.keys.append(batch.key)
        _fire_ready(watermark)

    # source exhausted: the watermark advances past every open window
    _fire_ready(float("inf"))

    results = []
    for k in sorted(windows):
        win = windows[k]
        if win.future is None:
            continue
        value = executor.get_result(win.future)
        results.append(
            WindowResult(
                index=win.index,
                start_s=win.index * slide,
                end_s=win.index * slide + window_s,
                value=value,
                keys=tuple(win.keys),
                reused_partials=win.reused,
                late_dropped=tuple(win.late_dropped),
                revision=win.revision,
            )
        )
    return results
