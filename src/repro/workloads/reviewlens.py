"""Review analytics: scan → tone analysis → per-city roll-ups, as one DAG.

A reviewlens-style pipeline over the synthetic Airbnb dataset (§6.4's
data): every partition of every city object is read with line-split
semantics, each comment is tone-classified by the lexicon analyzer, and
per-city reduce nodes roll partials up into a city scorecard; a final
summary node ranks cities by positivity.  The scan and tone stages are
built as separate chained nodes — the DAG builder's linear-chain fusion
collapses them into one activation, so no intermediate bytes ever touch
COS — and the whole graph runs under either the centralized or the
swarm scheduler (``scheduler="swarm"``).
"""

from __future__ import annotations

from typing import Optional

from repro.analytics import tone
from repro.core import context as ambient
from repro.core.partitioner import StoragePartition, build_partitions
from repro.datasets import airbnb


def _read_partition(spec: dict) -> bytes:
    """Scan stage: one partition's review lines (fused into the tone node)."""
    ctx = ambient.require_context()
    partition = StoragePartition.from_spec(
        spec, cos=ctx.execution_context.cos
    )
    return partition.read_lines()


def _tone_partition(data: bytes) -> dict:
    """Tone stage: classify every comment of one partition."""
    stats, _points = tone.analyze_csv_reviews(data)
    return {"counts": dict(stats.counts), "comments": stats.comments}


def _city_key(object_key: str) -> str:
    """``reviews/{city}.csv`` → ``{city}``."""
    name = object_key.rsplit("/", 1)[-1]
    return name[:-4] if name.endswith(".csv") else name


def _make_city_rollup(city: str):
    def rollup_city(partials: list[dict]) -> dict:
        counts = {t: 0 for t in tone.TONES}
        comments = 0
        for partial in partials:
            for t in tone.TONES:
                counts[t] += partial["counts"][t]
            comments += partial["comments"]
        positive = counts[tone.POSITIVE]
        negative = counts[tone.NEGATIVE]
        classified = positive + negative
        return {
            "city": city,
            "comments": comments,
            "counts": counts,
            "dominant": max(tone.TONES, key=lambda t: counts[t]),
            "positivity": positive / classified if classified else 0.0,
        }

    return rollup_city


def _make_summary(top_k: int):
    def summarize(cities: list[dict]) -> dict:
        ranked = sorted(
            cities, key=lambda c: (-c["positivity"], c["city"])
        )
        return {
            "cities": {c["city"]: c for c in sorted(cities, key=lambda c: c["city"])},
            "happiest": [c["city"] for c in ranked[:top_k]],
            "grumpiest": [c["city"] for c in ranked[::-1][:top_k]],
            "total_comments": sum(c["comments"] for c in cities),
        }

    return summarize


def review_analytics(
    executor,
    *,
    bucket: str = airbnb.DEFAULT_BUCKET,
    chunk_size: Optional[int] = 256 * 1024,
    scheduler: Optional[str] = None,
    top_k: int = 5,
    retries: Optional[int] = None,
) -> dict:
    """Run the review-analytics pipeline; returns the summary dict.

    ``{"cities": {city: {comments, counts, dominant, positivity}},
    "happiest": [...], "grumpiest": [...], "total_comments": N}``.

    ``scheduler`` selects the DAG driving mode (``"centralized"`` default,
    ``"swarm"`` for worker-driven in-cloud handoff) — results are
    identical under both, which ``tests/workloads`` asserts.
    """
    from repro.dag import DagBuilder

    partitions = build_partitions(executor._cos, [bucket], chunk_size)
    if not partitions:
        raise ValueError(f"no review objects found in bucket {bucket!r}")
    builder = DagBuilder()
    by_city: dict[str, list] = {}
    for partition in partitions:
        scan_node = builder.call(
            _read_partition,
            partition.spec(),
            name=f"scan:{partition.key}[{partition.partition_index}]",
            stage="scan",
        )
        tone_node = builder.then(
            scan_node,
            _tone_partition,
            name=f"tone:{partition.key}[{partition.partition_index}]",
            stage="tone",
        )
        by_city.setdefault(_city_key(partition.key), []).append(tone_node)
    city_nodes = [
        builder.reduce(
            _make_city_rollup(city),
            nodes,
            name=f"city:{city}",
            stage="rollup",
        )
        for city, nodes in sorted(by_city.items())
    ]
    summary_node = builder.reduce(
        _make_summary(top_k), city_nodes, name="summary", stage="summary"
    )
    run = builder.submit(
        executor, scheduler=scheduler, label="V", retries=retries
    )
    return executor.get_result(run.expose(summary_node))
