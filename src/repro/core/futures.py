"""Response futures (§4.2).

All three computing methods return futures "to track the status of the
executors and get the results when available".  A future is a *pure
reference*: executor id + callset id + call id.  It discovers completion by
polling the status object in COS, which makes it picklable — a function can
return futures from a nested executor, ship them through COS, and the
client's composition-aware ``get_result`` resolves them transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro import vtime
from repro.core.errors import FunctionError, ResultTimeoutError
from repro.core.storage_client import InternalStorage

#: ``wait()`` unlock conditions (§4.2).
ALWAYS = 0
ANY_COMPLETED = 1
ALL_COMPLETED = 2


class CallState:
    """Lifecycle of a call as the client observes it."""

    NEW = "new"
    INVOKED = "invoked"
    SUCCESS = "success"
    ERROR = "error"


@dataclass(frozen=True)
class CallFailure:
    """One call that exhausted its retries (or failed unrecoverably)."""

    call_id: str
    callset_id: str
    executor_id: str
    activation_id: Optional[str]
    attempts: int
    error: Optional[str]
    lost: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "call_id": self.call_id,
            "callset_id": self.callset_id,
            "executor_id": self.executor_id,
            "activation_id": self.activation_id,
            "attempts": self.attempts,
            "error": self.error,
            "lost": self.lost,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "CallFailure":
        return cls(
            call_id=str(raw["call_id"]),
            callset_id=str(raw["callset_id"]),
            executor_id=str(raw["executor_id"]),
            activation_id=raw.get("activation_id"),
            attempts=int(raw.get("attempts", 0)),
            error=raw.get("error"),
            lost=bool(raw.get("lost", False)),
        )


@dataclass
class FailureReport:
    """Structured account of what ``get_result(throw_except=False)`` lost.

    Picklable — the executor also persists it as a dead-letter object in
    COS so a later process can inspect what went wrong.
    """

    executor_id: str
    failures: list[CallFailure] = field(default_factory=list)
    retries_total: int = 0

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    def summary(self) -> str:
        if not self.failures:
            return "no failures"
        lines = [
            f"{len(self.failures)} call(s) failed "
            f"({self.retries_total} retries spent):"
        ]
        for f in self.failures:
            kind = "lost" if f.lost else "error"
            lines.append(
                f"  {f.callset_id}/{f.call_id} [{kind}, "
                f"{f.attempts} attempt(s)]: {f.error}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Lossless JSON form, used for the COS dead-letter object.

        JSON rather than pickle so any process — a different Python, a
        human with ``curl`` — can read why a job lost calls.  Exception
        text and retry counters survive the round-trip exactly.
        """
        import json

        return json.dumps(
            {
                "executor_id": self.executor_id,
                "retries_total": self.retries_total,
                "failures": [f.to_dict() for f in self.failures],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FailureReport":
        import json

        raw = json.loads(text)
        return cls(
            executor_id=str(raw["executor_id"]),
            failures=[CallFailure.from_dict(f) for f in raw.get("failures", [])],
            retries_total=int(raw.get("retries_total", 0)),
        )


class ResponseFuture:
    """Handle for one function executor's eventual result."""

    def __init__(
        self,
        executor_id: str,
        callset_id: str,
        call_id: str,
        metadata: Optional[dict[str, Any]] = None,
    ) -> None:
        self.executor_id = executor_id
        self.callset_id = callset_id
        self.call_id = call_id
        #: free-form labels, e.g. the COS object a partition came from
        self.metadata = dict(metadata or {})
        self.activation_id: Optional[str] = None
        #: how many times this call has been invoked (first try + re-invokes)
        self.invoke_count = 0
        #: re-invocation budget for lost-call recovery (set by the executor)
        self.max_retries = 0
        self._state = CallState.NEW
        self._status: Optional[dict[str, Any]] = None
        self._value: Any = None
        self._value_loaded = False
        self._storage: Optional[InternalStorage] = None
        self._poll_interval = 1.0

    # -- plumbing -------------------------------------------------------------
    def bind(self, storage: InternalStorage, poll_interval: float = 1.0) -> "ResponseFuture":
        """Attach the storage this future polls.  Returns self."""
        self._storage = storage
        self._poll_interval = poll_interval
        return self

    @property
    def bound(self) -> bool:
        return self._storage is not None

    def _require_storage(self) -> InternalStorage:
        if self._storage is None:
            raise RuntimeError(
                f"future {self.call_id} is not bound to storage; "
                "call bind() or resolve it through an executor"
            )
        return self._storage

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_storage"] = None  # futures travel as pure references
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResponseFuture {self.executor_id}/{self.callset_id}/"
            f"{self.call_id} {self._state}>"
        )

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def mark_invoked(self, activation_id: Optional[str] = None) -> None:
        if self._state == CallState.NEW:
            self._state = CallState.INVOKED
        self.invoke_count += 1
        if activation_id is not None:
            self.activation_id = activation_id

    def mark_done(self) -> None:
        """Record that a status object exists without fetching it yet.

        The success/error split happens when the status is actually read.
        """
        self._status_seen = True

    def done(self) -> bool:
        """One status check (no blocking)."""
        if self._status is not None or getattr(self, "_status_seen", False):
            return True
        status = self._require_storage().get_status(
            self.executor_id, self.callset_id, self.call_id
        )
        if status is None:
            return False
        self._ingest_status(status)
        return True

    def _ingest_status(self, status: dict[str, Any]) -> None:
        self._status = status
        self._state = CallState.SUCCESS if status.get("success") else CallState.ERROR

    def status(self, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until the call finishes; return its status dict."""
        self._wait_done(timeout)
        if self._status is None:
            status = self._require_storage().get_status(
                self.executor_id, self.callset_id, self.call_id
            )
            assert status is not None
            self._ingest_status(status)
        return dict(self._status)

    # -- results ---------------------------------------------------------------
    def result(
        self,
        timeout: Optional[float] = None,
        throw_except: bool = True,
    ) -> Any:
        """Block (virtual time) until the result is available and return it.

        Composition-aware: when the remote function returned futures (from a
        nested executor), those are resolved recursively so callers always
        receive final values (§4.2's ``get_result`` behaviour).
        """
        status = self.status(timeout)
        if not self._value_loaded:
            if status.get("lost"):
                # synthetic status for a call whose activations all died
                # without writing anything — there is no result blob
                raw: Any = (None, status.get("error"))
            else:
                raw = self._require_storage().get_result(
                    self.executor_id, self.callset_id, self.call_id
                )
            self._value = raw
            self._value_loaded = True
        if status.get("success"):
            self._value = self._resolve_composition(self._value, timeout)
            return self._value
        # Error path: the stored result is (exception|None, traceback string).
        cause, remote_tb = self._value
        if throw_except:
            raise FunctionError(
                f"function executor {self.call_id} of callset "
                f"{self.callset_id} raised: {status.get('error', '')}",
                cause=cause,
                remote_traceback=remote_tb,
            )
        return None

    def _resolve_composition(self, value: Any, timeout: Optional[float]) -> Any:
        storage = self._require_storage()
        while isinstance(value, ResponseFuture):
            value = value.bind(storage, self._poll_interval).result(timeout)
        if (
            isinstance(value, (list, tuple))
            and value
            and all(isinstance(v, ResponseFuture) for v in value)
        ):
            resolved = [
                v.bind(storage, self._poll_interval).result(timeout) for v in value
            ]
            value = type(value)(resolved) if isinstance(value, tuple) else resolved
        return value

    def _wait_done(self, timeout: Optional[float]) -> None:
        deadline = None if timeout is None else vtime.now() + timeout
        while not self.done():
            if deadline is not None and vtime.now() >= deadline:
                raise ResultTimeoutError(
                    f"call {self.call_id} did not finish within {timeout}s"
                )
            vtime.sleep(self._poll_interval)
