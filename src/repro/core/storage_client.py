"""Internal storage: the COS key layout the framework hides from users.

Per execution flow (§3/Fig. 1), the client serializes function code and data
into COS, functions read them, and write results plus a small status object
back.  The key scheme mirrors the real framework's::

    {prefix}/{executor_id}/funcs/{sha}.pickle           (content-addressed)
    {prefix}/{executor_id}/{callset_id}/aggdata.pickle
    {prefix}/{executor_id}/{callset_id}/{call_id}/status.pickle
    {prefix}/{executor_id}/{callset_id}/{call_id}/result.pickle
    {prefix}/{executor_id}/{callset_id}/{call_id}/shuffle/{r}.pickle

Status objects double as the completion signal: ``wait()`` discovers
finished calls with a single LIST request over the status prefix.

*Intermediate* objects — shuffle partitions and result blobs — route
through the environment's :class:`~repro.exchange.base.ExchangeBackend`
(ARCHITECTURE.md "Exchange backends"): the direct COS path by default, a
write-through memory tier or a provisioned ephemeral-store VM cluster by
configuration.  The backend decides per call whether its tier engages
(only for in-cloud sites); a worker's storage carries a *bound* backend
view pinned to its ``(invoker_id, container_id)``, and a storage built
without a backend gets a private direct-COS one.  Everything that is not
an intermediate — status, func, agg-data, journal, dead-letter, trace
objects — is the execution record and always talks straight to COS.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core import serializer
from repro.cos.client import COSClient
from repro.cos.errors import NoSuchKey, PreconditionFailed


class InternalStorage:
    """Key-schema-aware wrapper over a :class:`COSClient`."""

    def __init__(
        self,
        cos: COSClient,
        bucket: str,
        prefix: str = "pywren.jobs",
        exchange=None,
    ) -> None:
        self.cos = cos
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        if exchange is None:
            from repro.exchange import CosExchange

            exchange = CosExchange()
        #: the :class:`~repro.exchange.base.ExchangeBackend` (possibly a
        #: site-bound view) serving intermediate reads and writes
        self.exchange = exchange

    # -- key construction ---------------------------------------------------
    def callset_prefix(self, executor_id: str, callset_id: str) -> str:
        return f"{self.prefix}/{executor_id}/{callset_id}"

    def func_key(self, executor_id: str, callset_id: str) -> str:
        return f"{self.callset_prefix(executor_id, callset_id)}/func.pickle"

    def agg_data_key(self, executor_id: str, callset_id: str) -> str:
        return f"{self.callset_prefix(executor_id, callset_id)}/aggdata.pickle"

    def status_key(self, executor_id: str, callset_id: str, call_id: str) -> str:
        return f"{self.callset_prefix(executor_id, callset_id)}/{call_id}/status.pickle"

    def result_key(self, executor_id: str, callset_id: str, call_id: str) -> str:
        return f"{self.callset_prefix(executor_id, callset_id)}/{call_id}/result.pickle"

    # -- function code --------------------------------------------------------
    def put_func(self, executor_id: str, callset_id: str, blob: bytes) -> str:
        key = self.func_key(executor_id, callset_id)
        self.cos.put_object(self.bucket, key, blob)
        return key

    def get_func(self, executor_id: str, callset_id: str) -> bytes:
        return self.cos.get_object(self.bucket, self.func_key(executor_id, callset_id))

    def get_func_steps(self, executor_id: str, callset_id: str):
        """Steps twin of :meth:`get_func` (model tasks ``yield from``)."""
        blob = yield from self.cos.get_object_steps(
            self.bucket, self.func_key(executor_id, callset_id)
        )
        return blob

    def shared_func_key(self, executor_id: str, digest: str) -> str:
        """Content-addressed function object, shared across callsets.

        Re-submitting the same function (e.g. repeated maps in a loop)
        reuses the already-uploaded blob instead of paying the WAN upload
        again.
        """
        return f"{self.prefix}/{executor_id}/funcs/{digest}.pickle"

    def put_blob(self, key: str, blob: bytes) -> None:
        self.cos.put_object(self.bucket, key, blob)

    def get_blob(self, key: str) -> bytes:
        return self.cos.get_object(self.bucket, key)

    def get_blob_steps(self, key: str):
        """Steps twin of :meth:`get_blob` (model tasks ``yield from``)."""
        blob = yield from self.cos.get_object_steps(self.bucket, key)
        return blob

    def blob_exists(self, key: str) -> bool:
        return self.cos.object_exists(self.bucket, key)

    # -- aggregated call data -------------------------------------------------
    def put_agg_data(self, executor_id: str, callset_id: str, blob: bytes) -> str:
        key = self.agg_data_key(executor_id, callset_id)
        self.cos.put_object(self.bucket, key, blob)
        return key

    def get_data_range(
        self, executor_id: str, callset_id: str, start: int, end: int
    ) -> bytes:
        key = self.agg_data_key(executor_id, callset_id)
        return self.cos.read_range(self.bucket, key, start, end)

    def get_data_range_steps(
        self, executor_id: str, callset_id: str, start: int, end: int
    ):
        """Steps twin of :meth:`get_data_range` (model tasks ``yield from``)."""
        key = self.agg_data_key(executor_id, callset_id)
        blob = yield from self.cos.read_range_steps(self.bucket, key, start, end)
        return blob

    # -- status ---------------------------------------------------------------
    def put_status(
        self, executor_id: str, callset_id: str, call_id: str, status: dict[str, Any]
    ) -> None:
        blob = serializer.serialize(status)
        self.cos.put_object(
            self.bucket, self.status_key(executor_id, callset_id, call_id), blob
        )

    def commit_status(
        self, executor_id: str, callset_id: str, call_id: str, status: dict[str, Any]
    ) -> bool:
        """At-most-once status write: first committer wins.

        A re-invoked call can race its presumed-dead predecessor; both may
        finish and both will try to publish a status object.  The write is
        conditional (``If-None-Match: *``) so exactly one attempt's outcome
        becomes *the* outcome; the loser's duplicate result blob is harmless
        (same function, same input).  Returns whether this attempt won.
        """
        blob = serializer.serialize(status)
        try:
            self.cos.put_object(
                self.bucket,
                self.status_key(executor_id, callset_id, call_id),
                blob,
                if_none_match=True,
            )
        except PreconditionFailed:
            return False
        return True

    def commit_status_steps(
        self, executor_id: str, callset_id: str, call_id: str, status: dict[str, Any]
    ):
        """Steps twin of :meth:`commit_status` (model tasks ``yield from``)."""
        blob = serializer.serialize(status)
        try:
            yield from self.cos.put_object_steps(
                self.bucket,
                self.status_key(executor_id, callset_id, call_id),
                blob,
                if_none_match=True,
            )
        except PreconditionFailed:
            return False
        return True

    def get_status(
        self, executor_id: str, callset_id: str, call_id: str
    ) -> Optional[dict[str, Any]]:
        """The status dict, or ``None`` if the call has not finished."""
        try:
            blob = self.cos.get_object(
                self.bucket, self.status_key(executor_id, callset_id, call_id)
            )
        except NoSuchKey:
            return None
        return serializer.deserialize(blob)

    def list_done_call_ids(self, executor_id: str, callset_id: str) -> set[str]:
        """Call ids with a status object, via one LIST request (§4.2 wait)."""
        prefix = self.callset_prefix(executor_id, callset_id) + "/"
        done = set()
        for key in self.cos.list_keys(self.bucket, prefix):
            if key.endswith("/status.pickle"):
                parts = key[len(prefix):].split("/")
                if len(parts) == 2:
                    done.add(parts[0])
        return done

    # -- shuffle partitions ------------------------------------------------------
    def shuffle_key(
        self, executor_id: str, callset_id: str, call_id: str, reducer: int
    ) -> str:
        return (
            f"{self.callset_prefix(executor_id, callset_id)}/{call_id}"
            f"/shuffle/{reducer:05d}.pickle"
        )

    def put_shuffle_partition(
        self,
        executor_id: str,
        callset_id: str,
        call_id: str,
        reducer: int,
        pairs: list,
    ) -> int:
        blob = serializer.serialize(pairs)
        key = self.shuffle_key(executor_id, callset_id, call_id, reducer)
        self.exchange.put(self.cos, self.bucket, key, blob)
        return len(blob)

    def get_shuffle_partition(
        self, executor_id: str, callset_id: str, call_id: str, reducer: int
    ) -> list:
        """A map task's bucket for one reducer; missing means 'emitted none'.

        Served through the exchange backend (shuffle partitions are the
        intermediate the faster planes exist for); only in-cloud readers
        see a tier, everyone else gets the direct COS path.
        """
        try:
            blob = self.exchange.get(
                self.cos,
                self.bucket,
                self.shuffle_key(executor_id, callset_id, call_id, reducer),
            )
        except NoSuchKey:
            return []
        return serializer.deserialize(blob)

    # -- dead letters ----------------------------------------------------------
    def deadletter_key(self, executor_id: str, callset_id: str) -> str:
        return f"{self.callset_prefix(executor_id, callset_id)}/deadletter.json"

    def put_deadletter(
        self, executor_id: str, callset_id: str, report: Any
    ) -> str:
        """Persist a failure report next to the callset's other objects.

        Stored as lossless JSON (``FailureReport.to_json``) rather than
        pickle so the dead-letter object is inspectable by anything that
        can read COS, and round-trips exception text and retry counters
        exactly.
        """
        key = self.deadletter_key(executor_id, callset_id)
        self.cos.put_object(self.bucket, key, report.to_json().encode("utf-8"))
        return key

    def get_deadletter(self, executor_id: str, callset_id: str) -> Any:
        """The persisted :class:`~repro.core.futures.FailureReport`, or
        ``None`` if the callset has none."""
        try:
            blob = self.cos.get_object(
                self.bucket, self.deadletter_key(executor_id, callset_id)
            )
        except NoSuchKey:
            return None
        from repro.core.futures import FailureReport  # lazy: avoid cycle

        return FailureReport.from_json(blob.decode("utf-8"))

    # -- event journal ---------------------------------------------------------
    def journal_prefix(self, executor_id: str) -> str:
        return f"{self.prefix}/{executor_id}/journal/"

    def journal_key(self, executor_id: str, seq: int) -> str:
        return f"{self.journal_prefix(executor_id)}{seq:08d}.json"

    def append_journal_record(
        self, executor_id: str, seq: int, text: str
    ) -> bool:
        """Durably append one event record at position ``seq``.

        The write is conditional (``If-None-Match: *``, the same primitive
        as :meth:`commit_status`), so the log is append-once: two drivers
        racing for the same slot cannot silently overwrite each other —
        the loser learns it lost and must re-read the log.  Returns
        whether this append won the slot.
        """
        try:
            self.cos.put_object(
                self.bucket,
                self.journal_key(executor_id, seq),
                text.encode("utf-8"),
                if_none_match=True,
            )
        except PreconditionFailed:
            return False
        return True

    def list_journal_seqs(self, executor_id: str) -> list[int]:
        """Sequence numbers present in the journal, ascending (one LIST)."""
        prefix = self.journal_prefix(executor_id)
        seqs = []
        for key in self.cos.list_keys(self.bucket, prefix):
            name = key[len(prefix):]
            if name.endswith(".json"):
                try:
                    seqs.append(int(name[:-5]))
                except ValueError:
                    continue
        return sorted(seqs)

    def get_journal_record(self, executor_id: str, seq: int) -> Optional[str]:
        """One event record's canonical JSON text, or ``None``."""
        try:
            blob = self.cos.get_object(
                self.bucket, self.journal_key(executor_id, seq)
            )
        except NoSuchKey:
            return None
        return blob.decode("utf-8")

    # -- swarm scheduling plane -------------------------------------------------
    def swarm_prefix(self, executor_id: str, dag_id: str) -> str:
        return f"{self.prefix}/{executor_id}/{dag_id}/swarm"

    def swarm_schedule_key(self, executor_id: str, dag_id: str) -> str:
        return f"{self.swarm_prefix(executor_id, dag_id)}/schedule.pickle"

    def swarm_marker_key(
        self, executor_id: str, dag_id: str, node_key: str, dep_key: str
    ) -> str:
        """The append-once "dependency ``dep_key`` of ``node_key`` is done"
        marker — one per DAG edge, written by the dependency's worker."""
        return (
            f"{self.swarm_prefix(executor_id, dag_id)}/{node_key}"
            f"/dep-{dep_key}.done"
        )

    def swarm_token_key(
        self, executor_id: str, dag_id: str, node_key: str
    ) -> str:
        """The node's fire token: whoever creates it invokes the node."""
        return f"{self.swarm_prefix(executor_id, dag_id)}/{node_key}/fire.token"

    def put_swarm_schedule(
        self, executor_id: str, dag_id: str, schedule: dict[str, Any]
    ) -> str:
        """Ship the static schedule once at submit (client side, one PUT)."""
        key = self.swarm_schedule_key(executor_id, dag_id)
        self.cos.put_object(self.bucket, key, serializer.serialize(schedule))
        return key

    def get_swarm_schedule_steps(self, executor_id: str, dag_id: str):
        """Steps twin: workers fetch the schedule over the in-cloud link."""
        blob = yield from self.cos.get_object_steps(
            self.bucket, self.swarm_schedule_key(executor_id, dag_id)
        )
        return serializer.deserialize(blob)

    def commit_swarm_marker_steps(
        self,
        executor_id: str,
        dag_id: str,
        node_key: str,
        dep_key: str,
        payload: dict[str, Any],
    ):
        """Decrement one dependency counter: create the edge's done marker.

        Conditional (``If-None-Match: *``, the same append-once primitive
        as :meth:`commit_status` and :meth:`append_journal_record`), so a
        re-run of the producing node cannot decrement twice.  Returns
        whether this attempt created the marker.
        """
        try:
            yield from self.cos.put_object_steps(
                self.bucket,
                self.swarm_marker_key(executor_id, dag_id, node_key, dep_key),
                serializer.serialize(payload),
                if_none_match=True,
            )
        except PreconditionFailed:
            return False
        return True

    def claim_swarm_token_steps(
        self,
        executor_id: str,
        dag_id: str,
        node_key: str,
        payload: dict[str, Any],
    ):
        """Claim the exclusive right to invoke ``node_key``.

        Several workers can observe the same counter hit zero (their LIST
        responses race); the conditional PUT on the fire token picks
        exactly one winner, so a node is never worker-invoked twice.
        Returns whether this attempt won the token.
        """
        try:
            yield from self.cos.put_object_steps(
                self.bucket,
                self.swarm_token_key(executor_id, dag_id, node_key),
                serializer.serialize(payload),
                if_none_match=True,
            )
        except PreconditionFailed:
            return False
        return True

    def swarm_token_claimed(
        self, executor_id: str, dag_id: str, node_key: str
    ) -> bool:
        """Whether some worker already claimed ``node_key``'s fire token.

        Client side: the supervisor checks this before re-driving an
        overdue delegated node — a claimed token means the invocation
        (almost certainly) happened and the node is merely still running,
        so the redrive fuse is extended rather than fired.
        """
        return self.cos.object_exists(
            self.bucket, self.swarm_token_key(executor_id, dag_id, node_key)
        )

    def count_swarm_markers_steps(
        self, executor_id: str, dag_id: str, node_key: str
    ):
        """Done markers present for ``node_key``, via one LIST request."""
        prefix = f"{self.swarm_prefix(executor_id, dag_id)}/{node_key}/"
        keys = yield from self.cos.list_keys_steps(self.bucket, prefix)
        return sum(1 for key in keys if key.endswith(".done"))

    # -- job traces ------------------------------------------------------------
    def trace_key(self, executor_id: str, callset_id: str) -> str:
        return f"{self.callset_prefix(executor_id, callset_id)}/trace.jsonl"

    def put_trace(self, executor_id: str, callset_id: str, jsonl: str) -> str:
        """Persist a job's exported trace next to its other COS objects."""
        key = self.trace_key(executor_id, callset_id)
        self.cos.put_object(self.bucket, key, jsonl.encode("utf-8"))
        return key

    def get_trace(self, executor_id: str, callset_id: str) -> Optional[str]:
        """The persisted trace JSONL, or ``None`` if the callset has none."""
        try:
            blob = self.cos.get_object(
                self.bucket, self.trace_key(executor_id, callset_id)
            )
        except NoSuchKey:
            return None
        return blob.decode("utf-8")

    # -- results ---------------------------------------------------------------
    def put_result(
        self, executor_id: str, callset_id: str, call_id: str, value: Any
    ) -> int:
        blob = serializer.serialize(value)
        key = self.result_key(executor_id, callset_id, call_id)
        self.exchange.put(self.cos, self.bucket, key, blob)
        return len(blob)

    def put_result_steps(
        self, executor_id: str, callset_id: str, call_id: str, value: Any
    ):
        """Steps twin of :meth:`put_result` (model tasks ``yield from``)."""
        blob = serializer.serialize(value)
        key = self.result_key(executor_id, callset_id, call_id)
        yield from self.exchange.put_steps(self.cos, self.bucket, key, blob)
        return len(blob)

    def get_result(self, executor_id: str, callset_id: str, call_id: str) -> Any:
        """A call's result blob — tier-first for in-cloud readers (DAG
        dependents consuming upstream node outputs); plain COS otherwise."""
        blob = self.exchange.get(
            self.cos, self.bucket, self.result_key(executor_id, callset_id, call_id)
        )
        return serializer.deserialize(blob)
