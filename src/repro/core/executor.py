"""The IBM-PyWren executor: the paper's Table 2 API.

=============== ========== ==================================================
Method          Type       Input parameters
=============== ========== ==================================================
call_async()    Async.     function code, data
map()           Async. map function code, map data
map_reduce()    Async.     map/reduce func. code, map data
wait()          Sync.      when to unlock, list of futures
get_result()    Sync.      None
=============== ========== ==================================================

``map_reduce`` additionally understands COS dataset specs (``"cos://bucket"``
or ``"cos://bucket/key"``) which trigger automatic data discovery and
partitioning (§4.3), and ``reducer_one_per_object=True`` for the
reduceByKey-like mode with one reducer per object key.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core import context as ambient
from repro.core import serializer
from repro.core.errors import PyWrenError
from repro.core.futures import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    CallFailure,
    CallState,
    FailureReport,
    ResponseFuture,
)
from repro.core.invokers import Invoker, LocalInvoker, MassiveInvoker, RemoteInvoker
from repro.core.partitioner import StoragePartition, build_partitions
from repro.core.pool import run_pool
from repro.core.progress import ProgressBar
from repro.core.storage_client import InternalStorage
from repro.core.wait import wait as wait_on
from repro.config import InvokerMode, MonitoringTransport, PyWrenConfig
from repro.cos.client import COSClient
from repro.faas.activation import ActivationStatus
from repro.faas.gateway import CloudFunctionsClient
from repro.utils.ids import new_executor_id

COS_SCHEME = "cos://"


def is_dataset_spec(iterdata: Any) -> bool:
    """True when ``iterdata`` names COS data (``cos://bucket[/key]``)."""
    if isinstance(iterdata, str):
        return iterdata.startswith(COS_SCHEME)
    if isinstance(iterdata, (list, tuple)) and iterdata:
        return all(
            isinstance(item, str) and item.startswith(COS_SCHEME)
            for item in iterdata
        )
    return False


def _strip_scheme(iterdata: Union[str, Iterable[str]]) -> list[str]:
    entries = [iterdata] if isinstance(iterdata, str) else list(iterdata)
    return [entry[len(COS_SCHEME):] for entry in entries]


class FunctionExecutor:
    """§4.1's first-citizen object; create via ``pw.ibm_cf_executor()``."""

    def __init__(
        self,
        environment,
        in_cloud: bool = False,
        config: Optional[PyWrenConfig] = None,
        **overrides: Any,
    ) -> None:
        base = config or environment.config
        self.config = base.with_overrides(**overrides) if overrides else base
        self.config.validate()
        self.environment = environment
        self.kernel = environment.kernel
        self.executor_id = (
            environment.new_executor_id()
            if hasattr(environment, "new_executor_id")
            else new_executor_id(environment.seed)
        )
        self.in_cloud = in_cloud
        #: the environment's trace spine (disabled unless ``trace=True``)
        self.tracer = getattr(environment, "tracer", None)

        if in_cloud:
            link_factory = environment.platform.in_cloud_link_factory
        else:
            link_factory = environment.new_client_link
        self._cos = COSClient(
            environment.storage, link_factory(), retry=self.config.retry
        )
        self._storage = InternalStorage(
            self._cos, self.config.storage_bucket, self.config.storage_prefix
        )
        self._functions = CloudFunctionsClient(
            environment.platform,
            link_factory(),
            credentials=(
                environment.platform.trusted_token
                if in_cloud
                else environment.credentials
            ),
            retry=self.config.retry,
        )

        self._runtime_image = environment.registry.get(self.config.runtime)
        self._runner_action = environment.ensure_runner_action(
            self.config.runtime,
            self.config.runtime_memory_mb,
            self.config.runtime_timeout_s,
            namespace=self.config.namespace,
        )
        if self.config.invoker_mode != InvokerMode.LOCAL:
            environment.ensure_remote_invoker_action()

        self._monitor_queue: Optional[str] = None
        self._mq = None
        self._push_buffer: dict[tuple[str, str], dict[str, Any]] = {}
        if self.config.monitoring == MonitoringTransport.MQ_PUSH:
            self._monitor_queue = f"pywren-monitor-{self.executor_id}"
            self._mq = environment.mq_client(in_cloud=in_cloud)
            self._mq.declare_queue(self._monitor_queue)

        self.futures: list[ResponseFuture] = []
        self._callset_seq = 0
        self._uploaded_funcs: set[str] = set()

        # Lost-call recovery: "auto" switches it on only when a fault plane
        # is active, so fault-free runs keep their exact request pattern.
        recover = self.config.recover_lost
        chaos = getattr(environment, "chaos", None)
        if recover == "auto":
            recover = chaos is not None and chaos.profile.enabled
        self._recover_lost_enabled = bool(recover)
        self._retries_total = 0

        # Client-crash chaos kills driver epoch 0 only; a reattached
        # driver (epoch >= 1) is immune.  The epoch is captured here so
        # executors created by the replacement client are born immune.
        self._chaos_epoch = chaos.client_epoch if chaos is not None else 0

        #: the event-sourced orchestration journal (``EventsConfig``);
        #: ``None`` unless enabled — and never for in-cloud executors:
        #: the client is the journal's single writer
        self.journal = None
        self._journal_seen: set[tuple[str, str]] = set()
        if self.config.events.enabled and not in_cloud:
            from repro.events import records as ev
            from repro.events.journal import EventJournal

            self.journal = EventJournal.for_executor(self)
            self.journal.append(
                ev.EXECUTOR_CREATED,
                executor_id=self.executor_id,
                seed=environment.seed,
                backend=self.config.events.backend,
            )

    # ------------------------------------------------------------------
    # Computing methods (asynchronous)
    # ------------------------------------------------------------------
    def call_async(
        self,
        func: Callable[[Any], Any],
        data: Any,
        retries: Optional[int] = None,
    ) -> ResponseFuture:
        """Run one function in the cloud; non-blocking (§4.2)."""
        return self._submit(func, items=[data], label="A", retries=retries)[0]

    def map(
        self,
        map_function: Callable[[Any], Any],
        iterdata: Union[Iterable[Any], str],
        chunk_size: Optional[int] = None,
        retries: Optional[int] = None,
    ) -> list[ResponseFuture]:
        """One function executor per element of ``iterdata`` (§4.2).

        ``iterdata`` may also be a COS dataset spec, in which case each
        executor receives a :class:`StoragePartition` (§4.3).

        ``retries`` bounds how many times a *lost* call (activation died
        without writing a status object) is re-invoked; defaults to
        ``config.invocation_retries``.
        """
        if is_dataset_spec(iterdata):
            partitions = build_partitions(
                self._cos,
                _strip_scheme(iterdata),
                chunk_size if chunk_size is not None else self.config.chunk_size,
            )
            return self._submit(
                map_function, partitions=partitions, label="M", retries=retries
            )
        if chunk_size is not None:
            raise ValueError(
                "chunk_size only applies to COS dataset specs (cos://...)"
            )
        items = list(iterdata)
        if not items:
            return []
        return self._submit(map_function, items=items, label="M", retries=retries)

    def map_partitions(
        self,
        map_function: Callable[[StoragePartition], Any],
        partitions: Iterable[StoragePartition],
        retries: Optional[int] = None,
    ) -> list[ResponseFuture]:
        """One function executor per *prepared* :class:`StoragePartition`.

        ``map()`` with a ``cos://`` spec partitions whole objects by chunk
        size; this entry point instead accepts partitions the caller built
        itself — e.g. the pushdown scan planner's pruned, zone-map-aligned
        byte ranges (:func:`repro.workloads.scan`).  The worker binds each
        partition to its in-cloud COS client exactly as in the dataset
        path.
        """
        parts = list(partitions)
        if not parts:
            return []
        return self._submit(map_function, partitions=parts, label="M", retries=retries)

    def map_reduce(
        self,
        map_function: Callable[[Any], Any],
        iterdata: Union[Iterable[Any], str],
        reduce_function: Callable[[list[Any]], Any],
        chunk_size: Optional[int] = None,
        reducer_one_per_object: bool = False,
        retries: Optional[int] = None,
    ) -> Union[ResponseFuture, list[ResponseFuture]]:
        """MapReduce flow: map phase + one or many reducers (§4.2/§4.3).

        With ``reducer_one_per_object=True`` all values of the same COS
        object key are combined in a separate reducer (the Spark
        ``reduceByKey``-like mode); the returned list holds one future per
        object, each labelled with ``metadata['object_key']``.
        """
        spec = is_dataset_spec(iterdata)
        if reducer_one_per_object and not spec:
            raise ValueError(
                "reducer_one_per_object requires a COS dataset spec "
                "(one reducer per object key)"
            )
        map_futures = self.map(
            map_function, iterdata, chunk_size=chunk_size, retries=retries
        )
        if not map_futures:
            raise PyWrenError("map_reduce over an empty dataset")

        if not reducer_one_per_object:
            return self._spawn_reducer(reduce_function, map_futures, retries)

        groups: dict[tuple[str, str], list[ResponseFuture]] = {}
        for future in map_futures:
            key = (future.metadata["bucket"], future.metadata["object_key"])
            groups.setdefault(key, []).append(future)
        reducers = []
        for (bucket, object_key), group in sorted(groups.items()):
            reducer = self._spawn_reducer(reduce_function, group, retries)
            reducer.metadata["bucket"] = bucket
            reducer.metadata["object_key"] = object_key
            reducers.append(reducer)
        return reducers

    def map_reduce_shuffle(
        self,
        map_function: Callable[[Any], Any],
        iterdata: Union[Iterable[Any], str],
        reduce_function: Callable[[Any, list[Any]], Any],
        n_reducers: int = 4,
        chunk_size: Optional[int] = None,
        retries: Optional[int] = None,
    ) -> list[ResponseFuture]:
        """Full keyed MapReduce with a COS shuffle (see repro.core.shuffle).

        ``map_function(item_or_partition)`` must return an iterable of
        ``(key, value)`` pairs; ``reduce_function(key, values)`` reduces one
        key's values.  Returns one future per reducer, each resolving to a
        ``{key: reduced}`` dict over that reducer's key range — merge with
        :func:`repro.core.shuffle.merge_shuffle_results`.
        """
        from repro.core.shuffle import make_shuffle_map, make_shuffle_reduce_fetch
        from repro.dag import DagBuilder, DagScheduler

        if n_reducers <= 0:
            raise ValueError("n_reducers must be positive")
        map_futures = self.map(
            make_shuffle_map(map_function, n_reducers),
            iterdata,
            chunk_size=chunk_size,
            retries=retries,
        )
        if not map_futures:
            raise PyWrenError("map_reduce_shuffle over an empty dataset")
        # All reducers ride one DAG: a single dependency watcher invokes
        # every reducer the moment the last map status commits, instead of
        # each reducer polling for the whole map phase from inside a
        # cloud function.
        builder = DagBuilder()
        inputs = [
            builder.external(future, name=f"map:{future.call_id}", stage="map")
            for future in map_futures
        ]
        nodes = [
            builder.reduce(
                make_shuffle_reduce_fetch(reduce_function, reducer_index),
                inputs,
                pass_futures=True,
                name=f"shuffle-reduce[{reducer_index}]",
                stage="reduce",
            )
            for reducer_index in range(n_reducers)
        ]
        run = DagScheduler(self, label="S", retries=retries).submit(
            builder.build()
        )
        reducers = []
        for reducer_index, node in enumerate(nodes):
            future = run.expose(node)
            future.metadata["reducer_index"] = reducer_index
            reducers.append(future)
        return reducers

    def _spawn_reducer(
        self,
        reduce_function: Callable[[list[Any]], Any],
        map_futures: list[ResponseFuture],
        retries: Optional[int] = None,
    ) -> ResponseFuture:
        """One reducer node depending on all its map futures.

        The DAG scheduler's dependency watcher submits the reducer when
        the last map status commits — the reducer activation starts with
        its inputs already resolved rather than burning cloud time in the
        legacy in-cloud wait loop.
        """
        from repro.dag import DagBuilder, DagScheduler

        builder = DagBuilder()
        inputs = [
            builder.external(future, name=f"map:{future.call_id}", stage="map")
            for future in map_futures
        ]
        node = builder.reduce(
            reduce_function,
            inputs,
            name=getattr(reduce_function, "__name__", "reduce"),
            stage="reduce",
        )
        run = DagScheduler(self, label="R", retries=retries).submit(
            builder.build()
        )
        return run.expose(node)

    # ------------------------------------------------------------------
    # Event journal plumbing
    # ------------------------------------------------------------------
    def _check_client(self) -> None:
        """Die here if client-crash chaos scheduled this driver's death.

        Checked at every externally-visible client step (submission,
        polling rounds); raises :class:`~repro.core.errors.ClientCrashError`
        once the seeded virtual crash time has passed.  In-cloud executors
        are not the driver and never crash this way.
        """
        chaos = getattr(self.environment, "chaos", None)
        if chaos is not None and not self.in_cloud:
            chaos.check_client(self._chaos_epoch, self.kernel.now())

    def _journal_invoked(self, futures: Sequence[ResponseFuture],
                         recovered: bool = False) -> None:
        """Journal issued invocations: ``[callset, call, activation, attempt]``."""
        if self.journal is None or not futures:
            return
        from repro.events import records as ev

        self.journal.append(
            ev.CALLS_INVOKED,
            calls=[
                [f.callset_id, f.call_id, f.activation_id,
                 max(1, f.invoke_count)]
                for f in futures
            ],
            recovered=recovered,
        )

    def _journal_exposed(self, futures: Sequence[ResponseFuture]) -> None:
        """Journal futures becoming user-visible, in exposure order.

        Replay rebuilds ``executor.futures`` from these, so a resumed
        ``get_result()`` returns values in the exact original shape.
        """
        if self.journal is None or not futures:
            return
        from repro.events import records as ev

        self.journal.append(
            ev.FUTURES_EXPOSED,
            calls=[[f.callset_id, f.call_id] for f in futures],
        )

    def _journal_round(self, fs: Sequence[ResponseFuture]) -> None:
        """Per-poll-round hook: crash check + batch-journal new statuses.

        One ``status.observed`` record per round that saw completions —
        O(rounds), not O(calls), which is what keeps journal overhead
        inside the <5% budget on wide maps.
        """
        self._check_client()
        if self.journal is None:
            return
        newly = []
        for f in fs:
            key = (f.callset_id, f.call_id)
            if key in self._journal_seen:
                continue
            if f._status is not None or getattr(f, "_status_seen", False):
                self._journal_seen.add(key)
                success = (
                    bool(f._status.get("success"))
                    if f._status is not None else None
                )
                newly.append([f.callset_id, f.call_id, success])
        if newly:
            from repro.events import records as ev

            self.journal.append(ev.STATUS_OBSERVED, calls=newly)

    # ------------------------------------------------------------------
    # Result collection (synchronous)
    # ------------------------------------------------------------------
    def wait(
        self,
        futures: Optional[Sequence[ResponseFuture]] = None,
        return_when: int = ALL_COMPLETED,
        timeout: Optional[float] = None,
    ) -> tuple[list[ResponseFuture], list[ResponseFuture]]:
        """Block until the unlock condition holds (§4.2)."""
        fs = list(futures) if futures is not None else list(self.futures)
        return self._wait(fs, return_when, timeout)

    def _trace_scope(self):
        """Ambient ``executor_id`` binding for client-side trace emission."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer.bind(executor_id=self.executor_id)
        return contextlib.nullcontext()

    def _wait(
        self,
        fs: list[ResponseFuture],
        return_when: int,
        timeout: Optional[float],
        on_progress=None,
    ) -> tuple[list[ResponseFuture], list[ResponseFuture]]:
        with self._trace_scope():
            if self._mq is not None:
                return self._wait_push(fs, return_when, timeout, on_progress)
            return wait_on(
                fs,
                self._storage,
                return_when=return_when,
                poll_interval=self.config.poll_interval,
                timeout=timeout,
                on_progress=on_progress,
                lost_detector=(
                    self._recover_lost if self._recover_lost_enabled else None
                ),
                on_round=self._journal_round,
            )

    def _wait_push(
        self,
        fs: list[ResponseFuture],
        return_when: int,
        timeout: Optional[float],
        on_progress=None,
    ) -> tuple[list[ResponseFuture], list[ResponseFuture]]:
        """Push-monitoring wait: consume status messages instead of polling.

        Messages for futures outside the waited set (other callsets of this
        executor) are buffered and applied when those futures are waited on.
        """
        from repro import vtime
        from repro.core.errors import ResultTimeoutError
        from repro.vtime import QueueEmpty

        pending: dict[tuple[str, str], ResponseFuture] = {}
        for future in fs:
            if not future.bound:
                future.bind(self._storage, self.config.poll_interval)
            key = (future.callset_id, future.call_id)
            if future._status is not None or getattr(future, "_status_seen", False):
                continue
            buffered = self._push_buffer.pop(key, None)
            if buffered is not None:
                future._ingest_status(buffered)
                continue
            pending[key] = future

        deadline = None if timeout is None else vtime.now() + timeout

        def _apply(message: dict[str, Any]) -> None:
            key = (message["callset_id"], message["call_id"])
            future = pending.pop(key, None)
            if future is not None:
                future._ingest_status(dict(message))
            else:
                self._push_buffer[key] = dict(message)
            if self.journal is not None and key not in self._journal_seen:
                self._journal_seen.add(key)
                from repro.events import records as ev

                self.journal.append(
                    ev.STATUS_OBSERVED,
                    calls=[[key[0], key[1], bool(message.get("success"))]],
                )

        # drain everything already delivered (needed for ALWAYS semantics)
        while pending:
            try:
                _apply(self._mq.consume(self._monitor_queue, timeout=0))
            except QueueEmpty:
                break

        def _policy_met() -> bool:
            done_count = len(fs) - len(pending)
            if on_progress is not None:
                on_progress(done_count, len(fs))
            if return_when == ALWAYS:
                return True
            if return_when == ANY_COMPLETED:
                return done_count > 0
            return not pending

        detect = self._recover_lost if self._recover_lost_enabled else None
        while not _policy_met():
            self._check_client()
            remaining = None if deadline is None else deadline - vtime.now()
            if remaining is not None and remaining <= 0:
                raise ResultTimeoutError(
                    f"push wait timed out with {len(pending)} futures pending"
                )
            if detect is None:
                try:
                    message = self._mq.consume(
                        self._monitor_queue, timeout=remaining
                    )
                except QueueEmpty:
                    raise ResultTimeoutError(
                        f"push wait timed out with {len(pending)} futures pending"
                    ) from None
                _apply(message)
                continue
            # With recovery on, a lost call produces no push message at all —
            # consume in poll_interval slices and scan between them.
            step = (
                self.config.poll_interval
                if remaining is None
                else min(remaining, self.config.poll_interval)
            )
            try:
                message = self._mq.consume(self._monitor_queue, timeout=step)
            except QueueEmpty:
                detect(list(pending.values()))
                # buried calls got a synthetic status ingested directly
                for key, future in list(pending.items()):
                    if future._status is not None:
                        pending.pop(key)
                continue
            _apply(message)
        done = [f for f in fs if (f.callset_id, f.call_id) not in pending]
        not_done = list(pending.values())
        return done, not_done

    # ------------------------------------------------------------------
    # Lost-call recovery
    # ------------------------------------------------------------------
    def _recover_lost(self, pending: Sequence[ResponseFuture]) -> None:
        """One recovery scan, run between polling rounds.

        A call is *lost* when its activation reached a dead terminal state
        (infrastructure error/timeout) without the worker writing a status
        object — a crashed or reaped container.  Lost calls are re-invoked
        up to their ``max_retries`` budget; exhausted ones are buried with
        a synthetic status so waiters unblock.

        Scans the union of the waited set and everything this executor
        submitted: an in-cloud reducer waits on map futures *inside the
        cloud* where no detector runs, so the client must recover them too.
        """
        candidates: dict[tuple[str, str], ResponseFuture] = {}
        for future in list(pending) + self.futures:
            if future.activation_id is None or getattr(future, "_exhausted", False):
                continue
            if future._status is not None or getattr(future, "_status_seen", False):
                continue
            candidates.setdefault((future.callset_id, future.call_id), future)
        if not candidates:
            return
        fs = list(candidates.values())
        records = self._functions.get_activations(
            [future.activation_id for future in fs]
        )
        reinvoke: list[ResponseFuture] = []
        for future, record in zip(fs, records):
            if record is None or record.status not in (
                ActivationStatus.ERROR,
                ActivationStatus.TIMEOUT,
            ):
                continue  # in flight, or finished and its status is in COS
            if future.invoke_count <= future.max_retries:
                reinvoke.append(future)
            else:
                self._bury(future, record)
        tracer = self.tracer
        for future in reinvoke:
            activation_id = self._functions.invoke(
                self.config.namespace, self._runner_action, future._call_params
            )
            future.mark_invoked(activation_id)
            self._retries_total += 1
            if tracer is not None and tracer.enabled:
                tracer.point(
                    "client.invoke", "client",
                    ids={
                        "executor_id": future.executor_id,
                        "callset_id": future.callset_id,
                        "call_id": future.call_id,
                        "activation_id": activation_id,
                        "attempt": max(1, future.invoke_count),
                    },
                    recovered=True,
                )
        self._journal_invoked(reinvoke, recovered=True)

    def _bury(self, future: ResponseFuture, record) -> None:
        """Exhausted retry budget: publish a synthetic ``lost`` status.

        Written conditionally to COS so it also unblocks in-cloud waiters
        (reducers) polling the same status key — and so a late surviving
        attempt that already committed a real status wins the race.
        """
        future._exhausted = True
        status = {
            "executor_id": self.executor_id,
            "callset_id": future.callset_id,
            "call_id": future.call_id,
            "success": False,
            "error": record.error or "activation lost",
            "lost": True,
            "start_time": record.start_time,
            "end_time": record.end_time,
            "activation_id": record.activation_id,
            "container_id": record.container_id,
            "cold_start": record.cold_start,
        }
        if self._storage.commit_status(
            self.executor_id, future.callset_id, future.call_id, status
        ):
            future._ingest_status(status)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.point(
                    "client.bury", "client",
                    ids={
                        "executor_id": self.executor_id,
                        "callset_id": future.callset_id,
                        "call_id": future.call_id,
                        "activation_id": record.activation_id,
                    },
                    success=False,
                    lost=True,
                    run_start=record.start_time,
                    run_end=record.end_time,
                )
            if self.journal is not None:
                key = (future.callset_id, future.call_id)
                if key not in self._journal_seen:
                    self._journal_seen.add(key)
                    from repro.events import records as ev

                    self.journal.append(
                        ev.STATUS_OBSERVED,
                        calls=[[future.callset_id, future.call_id, False]],
                        buried=True,
                    )
        # else: a real status exists after all — the next poll round sees it

    def resilience_stats(self) -> dict[str, Any]:
        """Client-side retry counters plus injected-fault totals."""
        chaos = getattr(self.environment, "chaos", None)
        return {
            "invocation_retries": self._retries_total,
            "cos_request_retries": self._cos.retries,
            "invoke_network_retries": self._functions.policy.retries,
            "throttle_retries": self._functions.throttle_retries,
            "faults_injected": dict(chaos.fault_counts()) if chaos else {},
        }

    def get_result(
        self,
        futures: Union[ResponseFuture, Sequence[ResponseFuture], None] = None,
        timeout: Optional[float] = None,
        throw_except: bool = True,
    ) -> Any:
        """Collect results (§4.2): waits, downloads in parallel, unwraps
        compositions, and shows a progress bar when enabled.

        With no argument, collects everything this executor submitted —
        a single value if only one call was made, else a list in submission
        order.  Supports timeout and keyboard interruption.

        With ``throw_except=False`` failed calls do not raise: their slots
        hold ``None`` and the return value becomes the 2-tuple
        ``(values, FailureReport)``.  The report is also persisted as a
        dead-letter object next to the callset's other COS objects.
        """
        single = isinstance(futures, ResponseFuture)
        if single:
            fs = [futures]
        elif futures is None:
            fs = list(self.futures)
            single = len(fs) == 1
        else:
            fs = list(futures)
        if not fs:
            return None

        progress = ProgressBar(len(fs), enabled=self.config.progress_bar)

        def _render(done: int) -> None:
            postfix = (
                f" [{self._retries_total} retried]" if self._retries_total else ""
            )
            progress.update(done, postfix=postfix)

        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        unsubscribe = None
        if tracing:
            # the progress bar sits on the spine: the wait loop emits
            # ``client.progress`` points and a subscriber renders them
            def _on_trace_event(event) -> None:
                if (
                    event.name == "client.progress"
                    and event.get_id("executor_id") == self.executor_id
                ):
                    _render(event.get_attr("done", 0))

            unsubscribe = tracer.subscribe(_on_trace_event)

            def _on_progress(done: int, total: int) -> None:
                tracer.point(
                    "client.progress", "client",
                    ids={"executor_id": self.executor_id},
                    done=done, total=total,
                )
        else:
            def _on_progress(done: int, _total: int) -> None:
                _render(done)

        try:
            self._wait(fs, ALL_COMPLETED, timeout, on_progress=_on_progress)
        except KeyboardInterrupt:
            # §4.2: keyboard interruption cancels the retrieval of results.
            raise
        finally:
            progress.close()
            if unsubscribe is not None:
                unsubscribe()

        def _fetch(future: ResponseFuture) -> Any:
            return future.result(timeout=timeout, throw_except=throw_except)

        values = run_pool(
            self.kernel,
            _fetch,
            fs,
            self.config.result_fetch_pool_size,
            name="result-fetch",
        )
        if self.journal is not None:
            from repro.events import records as ev

            self.journal.append(
                ev.RESULTS_COLLECTED,
                calls=[[f.callset_id, f.call_id] for f in fs],
            )
        if throw_except:
            return values[0] if single else values
        report = self._build_failure_report(fs)
        if report:
            self._persist_deadletters(report)
        return (values[0] if single else values, report)

    def _build_failure_report(self, fs: Sequence[ResponseFuture]) -> FailureReport:
        report = FailureReport(
            executor_id=self.executor_id, retries_total=self._retries_total
        )
        for future in fs:
            if future.state != CallState.ERROR:
                continue
            status = future._status or {}
            report.failures.append(
                CallFailure(
                    call_id=future.call_id,
                    callset_id=future.callset_id,
                    executor_id=future.executor_id,
                    activation_id=future.activation_id,
                    attempts=max(1, future.invoke_count),
                    error=status.get("error"),
                    lost=bool(status.get("lost")),
                )
            )
        return report

    def _persist_deadletters(self, report: FailureReport) -> None:
        """One dead-letter object per callset that had failures."""
        by_callset: dict[str, list[CallFailure]] = {}
        for failure in report.failures:
            by_callset.setdefault(failure.callset_id, []).append(failure)
        for callset_id, failures in sorted(by_callset.items()):
            self._storage.put_deadletter(
                self.executor_id,
                callset_id,
                FailureReport(self.executor_id, failures, report.retries_total),
            )
            if self.journal is not None:
                from repro.events import records as ev

                self.journal.append(
                    ev.DEADLETTER_PERSISTED,
                    callset_id=callset_id,
                    failures=len(failures),
                )

    # ------------------------------------------------------------------
    # Resume (event journal)
    # ------------------------------------------------------------------
    def reattach(self, job_id: str):
        """Adopt an orphaned journaled job and drive it to completion.

        ``job_id`` is the executor id of a (presumed-dead) driver that ran
        with ``events.enabled=True``.  Replays its journal, reconciles
        against committed statuses in COS — the conditional status PUT
        guarantees a committed call is never re-executed — re-arms the
        pending trigger rules and re-invokes only what never committed.
        Returns a :class:`repro.events.ResumedJob`; call ``get_result()``
        on it as if this executor had submitted the job itself.
        """
        from repro.events.resume import attach

        return attach(self, job_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def plot(self, futures: Optional[Sequence[ResponseFuture]] = None) -> str:
        """Render this executor's execution timeline as an SVG document.

        Mirrors the real framework's ``create_timeline_plots``: one gray
        line per function execution plus the total-concurrency curve (the
        visual language of the paper's Figs. 2–3).  Futures must be
        finished (their statuses carry the timestamps).
        """
        from repro.analytics.timeline import render_execution_timeline

        fs = list(futures) if futures is not None else list(self.futures)
        intervals = []
        for future in fs:
            status = future.status()
            intervals.append((status["start_time"], status["end_time"]))
        return render_execution_timeline(
            intervals, title=f"Executor {self.executor_id}"
        )

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------
    def trace_events(self, callset_id: Optional[str] = None) -> list:
        """This executor's trace events, in deterministic order.

        Keeps only events stamped with this executor's id (plus un-stamped
        infrastructure events are excluded); optionally narrowed to one
        callset.  Requires the environment to have been created with
        ``trace=True``.
        """
        tracer = self.tracer
        if tracer is None:
            return []
        out = []
        for event in tracer.events():
            if event.get_id("executor_id") != self.executor_id:
                continue
            if callset_id is not None and event.get_id("callset_id") != callset_id:
                continue
            out.append(event)
        return out

    def trace_jsonl(self, callset_id: Optional[str] = None) -> str:
        """This executor's trace as deterministic JSONL text."""
        from repro.trace import export

        return export.to_jsonl(self.trace_events(callset_id))

    def persist_trace(self, callset_id: Optional[str] = None) -> list[str]:
        """Write per-callset trace JSONL objects to COS.

        One ``trace.jsonl`` object per callset, stored next to the callset's
        status/result (and dead-letter) objects.  Returns the keys written.
        """
        from repro.trace import export

        events = self.trace_events(callset_id)
        by_callset: dict[str, list] = {}
        for event in events:
            cs = event.get_id("callset_id")
            if cs is not None:
                by_callset.setdefault(cs, []).append(event)
        keys = []
        for cs, cs_events in sorted(by_callset.items()):
            keys.append(
                self._storage.put_trace(
                    self.executor_id, cs, export.to_jsonl(cs_events)
                )
            )
        return keys

    # ------------------------------------------------------------------
    # Retry
    # ------------------------------------------------------------------
    def retry_failed(
        self, futures: Sequence[ResponseFuture]
    ) -> list[ResponseFuture]:
        """Re-invoke the calls among ``futures`` that finished in error.

        The function and input data are still in COS, so a retry is just a
        new invocation of the same call: the worker overwrites the status
        and result objects.  Returns the futures that were retried (reset
        to pending); the caller waits on them again.  Futures must be
        finished (wait first).
        """
        retried: list[ResponseFuture] = []
        calls: list[dict[str, Any]] = []
        for future in futures:
            if future.status().get("success"):
                continue
            params = getattr(future, "_call_params", None)
            if params is None:
                raise PyWrenError(
                    f"future {future.call_id} was not submitted by this "
                    "process; cannot retry"
                )
            future._status = None
            future._status_seen = False
            future._value_loaded = False
            future._value = None
            future._state = "invoked"
            self._push_buffer.pop((future.callset_id, future.call_id), None)
            # remove the failed attempt's status/result so completion
            # discovery only fires for the new attempt
            from repro.cos.errors import NoSuchKey

            for key in (
                self._storage.status_key(
                    self.executor_id, future.callset_id, future.call_id
                ),
                self._storage.result_key(
                    self.executor_id, future.callset_id, future.call_id
                ),
            ):
                try:
                    self._cos.delete_object(self.config.storage_bucket, key)
                except NoSuchKey:
                    pass
                # exchange-tier copies of the deleted objects are stale now
                self.environment.exchange.invalidate(key)
            retried.append(future)
            calls.append(params)
        if retried:
            self._make_invoker().invoke_calls(
                self.config.namespace, self._runner_action, calls, retried
            )
        return retried

    def retry_missing(
        self, futures: Sequence[ResponseFuture]
    ) -> list[ResponseFuture]:
        """Speculatively re-invoke calls that have produced no status yet.

        Recovery path for *lost* activations (a crashed container never
        writes its status object, so the future would pend forever).  Use
        after a bounded ``wait(..., timeout=...)``: anything still missing
        is re-invoked.  Duplicate execution of a slow-but-alive call is
        possible and harmless — both attempts write the same keys.
        """
        missing: list[ResponseFuture] = []
        calls: list[dict[str, Any]] = []
        for future in futures:
            if future.done():
                continue
            params = getattr(future, "_call_params", None)
            if params is None:
                raise PyWrenError(
                    f"future {future.call_id} was not submitted by this "
                    "process; cannot retry"
                )
            missing.append(future)
            calls.append(params)
        if missing:
            self._make_invoker().invoke_calls(
                self.config.namespace, self._runner_action, calls, missing
            )
        return missing

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def clean(self, callset_id: Optional[str] = None) -> int:
        """Delete this executor's temporary objects from COS.

        The framework leaves func/data/status/result objects behind (they
        *are* the execution record); ``clean()`` removes them — everything
        for this executor, or one callset.  Returns the number of objects
        deleted.  Futures of cleaned callsets can no longer be resolved.
        """
        prefix = f"{self.config.storage_prefix}/{self.executor_id}/"
        if callset_id is not None:
            prefix += f"{callset_id}/"
        keys = self._cos.list_keys(self.config.storage_bucket, prefix)
        for key in keys:
            self._cos.delete_object(self.config.storage_bucket, key)
        self.environment.exchange.invalidate_prefix(prefix)
        return len(keys)

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def _next_callset_id(self, label: str) -> str:
        callset_id = f"{label}{self._callset_seq:03d}"
        self._callset_seq += 1
        return callset_id

    def _submit(
        self,
        func: Callable[[Any], Any],
        items: Optional[list[Any]] = None,
        partitions: Optional[list[StoragePartition]] = None,
        label: str = "M",
        retries: Optional[int] = None,
    ) -> list[ResponseFuture]:
        """Serialize + upload code and data, then invoke all calls."""
        with self._trace_scope():
            return self._submit_inner(func, items, partitions, label, retries)

    def _submit_inner(
        self,
        func: Callable[[Any], Any],
        items: Optional[list[Any]],
        partitions: Optional[list[StoragePartition]],
        label: str,
        retries: Optional[int],
    ) -> list[ResponseFuture]:
        import types as _types

        if self.config.validate_runtime_packages and isinstance(
            func, _types.FunctionType
        ):
            from repro.core.modules import validate_runtime

            validate_runtime(func, self._runtime_image)
        self._check_client()
        _, calls, futures = self._prepare_calls(
            func, items=items, partitions=partitions, label=label,
            retries=retries,
        )
        invoker = self._make_invoker()
        invoker.invoke_calls(
            self.config.namespace, self._runner_action, calls, futures
        )
        self.futures.extend(futures)
        self._journal_invoked(futures)
        self._journal_exposed(futures)
        return futures

    def _prepare_calls(
        self,
        func: Callable[[Any], Any],
        items: Optional[list[Any]] = None,
        partitions: Optional[list[StoragePartition]] = None,
        label: str = "M",
        retries: Optional[int] = None,
    ) -> tuple[str, list[dict[str, Any]], list[ResponseFuture]]:
        """Serialize and upload a callset without invoking anything.

        Uploads the (content-addressed) function blob and the aggregated
        data object, then builds the call-params dicts and bound futures.
        ``_submit_inner`` invokes the calls immediately; the DAG scheduler
        instead holds them and invokes each one when its dependencies
        resolve.  The prepared futures are *not* registered on
        ``self.futures`` — that is the caller's decision.
        """
        callset_id = self._next_callset_id(label)
        func_blob = serializer.serialize(func)
        # content-addressed function upload: identical functions submitted
        # again (loops of maps, retries) skip the client->COS transfer
        import hashlib as _hashlib

        digest = _hashlib.sha256(func_blob).hexdigest()[:24]
        func_key = self._storage.shared_func_key(self.executor_id, digest)
        if digest not in self._uploaded_funcs:
            self._storage.put_blob(func_key, func_blob)
            self._uploaded_funcs.add(digest)

        calls: list[dict[str, Any]] = []
        futures: list[ResponseFuture] = []
        common = {
            "executor_id": self.executor_id,
            "callset_id": callset_id,
            "bucket": self.config.storage_bucket,
            "prefix": self.config.storage_prefix,
            "func_key": func_key,
        }
        if self._monitor_queue is not None:
            common["monitor_queue"] = self._monitor_queue

        if partitions is not None:
            for i, partition in enumerate(partitions):
                call_id = f"{i:05d}"
                calls.append(
                    {**common, "call_id": call_id, "partition": partition.spec()}
                )
                futures.append(
                    ResponseFuture(
                        self.executor_id,
                        callset_id,
                        call_id,
                        metadata={
                            "bucket": partition.bucket,
                            "object_key": partition.key,
                            "partition_index": partition.partition_index,
                        },
                    )
                )
        else:
            assert items is not None
            # Aggregate all call inputs into one COS object; each call gets
            # a byte range.  One upload instead of N (crucial over a WAN).
            blobs = [serializer.serialize(item) for item in items]
            offsets: list[tuple[int, int]] = []
            position = 0
            for blob in blobs:
                offsets.append((position, position + len(blob)))
                position += len(blob)
            self._storage.put_agg_data(
                self.executor_id, callset_id, b"".join(blobs)
            )
            for i, data_range in enumerate(offsets):
                call_id = f"{i:05d}"
                calls.append(
                    {**common, "call_id": call_id, "data_range": list(data_range)}
                )
                futures.append(
                    ResponseFuture(self.executor_id, callset_id, call_id)
                )

        max_retries = (
            self.config.invocation_retries if retries is None else int(retries)
        )
        if max_retries < 0:
            raise ValueError("retries must be >= 0")
        for future, call_params in zip(futures, calls):
            future.bind(self._storage, self.config.poll_interval)
            future.max_retries = max_retries
            future._call_params = call_params  # kept for retry_failed()
        if self.journal is not None:
            # Everything resume needs to re-create these calls: the params
            # reference code and data already durably in COS, so the
            # record stays small and JSON-pure.
            from repro.events import records as ev

            self.journal.append(
                ev.JOB_SUBMITTED,
                callset_id=callset_id,
                label=label,
                retries=max_retries,
                func_key=func_key,
                calls=[dict(c) for c in calls],
            )
        return callset_id, calls, futures

    def _make_invoker(self) -> Invoker:
        mode = self.config.invoker_mode
        if mode == InvokerMode.LOCAL:
            return LocalInvoker(
                self.kernel,
                self._functions,
                self.config.invoker_pool_size,
                tracer=self.tracer,
            )
        if mode == InvokerMode.REMOTE:
            return RemoteInvoker(
                self.kernel,
                self._functions,
                pool_size=self.config.remote_invoker_pool_size,
                tracer=self.tracer,
            )
        return MassiveInvoker(
            self.kernel,
            self._functions,
            group_size=self.config.massive_group_size,
            client_pool_size=self.config.invoker_pool_size,
            tracer=self.tracer,
        )


def ibm_cf_executor(
    runtime: Optional[str] = None,
    environment=None,
    **overrides: Any,
) -> FunctionExecutor:
    """Get an executor instance (§4.1's ``pw.ibm_cf_executor()``).

    Resolves the cloud environment from the calling thread: on the client
    that is the environment whose ``run()`` is driving the code; inside a
    running cloud function it is the function's own cloud, with in-cloud
    network links (this is what makes §4.4's dynamic composition work).
    """
    if environment is None:
        environment = ambient.require_context().environment
    return environment.executor(runtime=runtime, **overrides)
