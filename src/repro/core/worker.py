"""Server-side job runner — the code that executes *inside* the container.

There are exactly two actions the framework ever deploys:

* the **runner** (:func:`runner_handler`): fetches the serialized function
  and its input from COS, executes it, and writes result + status back
  (steps 3 of Fig. 1);
* the **remote invoker** (:func:`remote_invoker_handler`): the §5.1 massive
  function spawning mechanism — receives a batch of call parameters and
  issues the actual runner invocations from *inside* the cloud, where the
  invocation latency is minimal.

Both handlers are *steps generators*: the platform runs them as model tasks
on the kernel's event loop, so an activation that is waiting on COS or on a
timer holds no OS thread.  Only a plain (non-generator) user function costs
a pooled worker thread, and only while it actually runs; a user function
written as a steps generator keeps the whole activation threadless — that
is what lets one process model tens of thousands of concurrent functions.
"""

from __future__ import annotations

import inspect
import traceback
from typing import Any

from repro.core import context as ambient
from repro.core import serializer
from repro.core.partitioner import StoragePartition
from repro.core.storage_client import InternalStorage
from repro.faas.controller import ExecutionContext
from repro.vtime.kernel import vjoin

#: deployed action name templates
RUNNER_ACTION_BASENAME = "pywren_runner"
REMOTE_INVOKER_ACTION = "pywren_remote_invoker"


def runner_action_name(runtime: str, memory_mb: int) -> str:
    """Deterministic action name for a (runtime, memory) runner variant."""
    sanitized = runtime.replace(":", "-").replace("/", "_")
    return f"{RUNNER_ACTION_BASENAME}__{sanitized}__{memory_mb}mb"


def _load_input_steps(
    params: dict[str, Any], storage: InternalStorage, ctx: ExecutionContext
):
    """Rebuild the call's single input argument (steps generator)."""
    data_range = params.get("data_range")
    if data_range is not None:
        start, end = data_range
        blob = yield from storage.get_data_range_steps(
            params["executor_id"], params["callset_id"], start, end
        )
        return serializer.deserialize(blob)
    partition_spec = params.get("partition")
    if partition_spec is not None:
        return StoragePartition.from_spec(partition_spec, cos=ctx.cos)
    return None


def _run_user_fn_boxed(fn: Any, argument: Any, box: dict) -> None:
    """Run a plain (blocking) user function on a pooled thread.

    Outcome goes into ``box`` so the runner's model task can rebuild the
    exact success/error result shape the in-task call used to produce.
    """
    try:
        box["value"] = fn(argument)
    except Exception as exc:  # noqa: BLE001 - shipped back to the client
        box["exc"] = exc
        box["tb"] = traceback.format_exc()


def runner_handler(params: dict[str, Any], ctx: ExecutionContext):
    """Execute one function executor call (steps generator)."""
    executor_id = params["executor_id"]
    callset_id = params["callset_id"]
    call_id = params["call_id"]
    exchange = getattr(ctx.platform, "exchange", None)
    if exchange is not None:
        # bind the worker's fixed site: result write-through happens after
        # the ambient execution context is popped
        exchange = exchange.bound((ctx.record.invoker_id, ctx.record.container_id))
    storage = InternalStorage(
        ctx.cos,
        params["bucket"],
        params["prefix"],
        exchange=exchange,
    )
    tracer = ctx.platform.tracer
    if tracer is not None and not tracer.enabled:
        tracer = None

    t_deser = ctx.kernel.now() if tracer is not None else None
    func_key = params.get("func_key")
    if func_key is not None:
        func_blob = yield from storage.get_blob_steps(func_key)
    else:  # legacy per-callset location
        func_blob = yield from storage.get_func_steps(executor_id, callset_id)
    fn = serializer.deserialize(func_blob)
    argument = yield from _load_input_steps(params, storage, ctx)
    if tracer is not None:
        tracer.span_at(
            "worker.deserialize", "worker", t_deser, ctx.kernel.now(),
            func_bytes=len(func_blob),
        )

    environment = ctx.platform.environment
    ambient.push_context(
        environment, in_cloud=True, call_info=dict(params), execution_context=ctx
    )
    start_time = ctx.kernel.now()
    success = True
    error_text = None
    try:
        if inspect.isgeneratorfunction(fn):
            # a steps-style user function runs inline on the model loop —
            # the activation never touches a worker thread
            try:
                value: Any = yield from fn(argument)
            except Exception as exc:  # noqa: BLE001 - shipped back
                success = False
                error_text = repr(exc)
                value = (_picklable_or_none(exc), traceback.format_exc())
        else:
            # arbitrary blocking user code gets a pooled thread; the pushed
            # ambient context is captured into it by the spawn
            box: dict[str, Any] = {}
            task = ctx.kernel.spawn(
                _run_user_fn_boxed, fn, argument, box,
                name=f"usr-{call_id}",
            )
            yield vjoin(task)
            if task._exception is not None:
                raise task._exception
            if "exc" in box:
                success = False
                error_text = repr(box["exc"])
                value = (_picklable_or_none(box["exc"]), box["tb"])
            else:
                value = box.get("value")
    finally:
        ambient.pop_context()
    end_time = ctx.kernel.now()
    if tracer is not None:
        tracer.span_at(
            "worker.run", "worker", start_time, end_time, success=success
        )

    t_commit = ctx.kernel.now() if tracer is not None else None
    try:
        yield from storage.put_result_steps(executor_id, callset_id, call_id, value)
    except serializer.SerializationError as exc:
        success = False
        error_text = f"result not serializable: {exc}"
        yield from storage.put_result_steps(
            executor_id, callset_id, call_id, (None, error_text)
        )

    status = {
        "executor_id": executor_id,
        "callset_id": callset_id,
        "call_id": call_id,
        "success": success,
        "error": error_text,
        "start_time": start_time,
        "end_time": end_time,
        "activation_id": ctx.activation_id,
        "container_id": ctx.record.container_id,
        "cold_start": ctx.record.cold_start,
        # which invoker node ran this call — the DAG scheduler feeds it
        # back as a placement hint so dependents land next to their data
        "invoker_id": ctx.record.invoker_id,
    }
    committed = yield from storage.commit_status_steps(
        executor_id, callset_id, call_id, status
    )
    if tracer is not None:
        # run_start/run_end ride along so per-call stats derive from the
        # winning commit alone (exactly the status object's timestamps)
        tracer.span_at(
            "worker.commit", "worker", t_commit, ctx.kernel.now(),
            committed=committed,
            success=success,
            run_start=start_time,
            run_end=end_time,
        )

    if params.get("swarm") is not None and committed and success:
        # swarm-scheduled DAG node: the winning, successful commit carries
        # the scheduling baton — decrement dependents' counters and invoke
        # whatever became ready, from inside the cloud (see repro.dag.swarm)
        from repro.dag.swarm import swarm_handoff_steps

        yield from swarm_handoff_steps(params, ctx, storage, status)

    monitor_queue = params.get("monitor_queue")
    if monitor_queue and committed:
        # push-monitoring transport: notify the client directly, in
        # addition to the authoritative COS status object
        from repro.mq.client import MQClient

        mq = MQClient(
            environment.broker, ctx.platform.in_cloud_link_factory()
        )
        yield from mq.publish_steps(monitor_queue, dict(status))
    return {"call_id": call_id, "success": success}


def _picklable_or_none(exc: BaseException) -> BaseException | None:
    try:
        serializer.serialize(exc)
        return exc
    except serializer.SerializationError:
        return None


def remote_invoker_handler(params: dict[str, Any], ctx: ExecutionContext):
    """Spawn a batch of runner invocations from inside the cloud (§5.1).

    ``pool_size <= 1`` issues them sequentially (the per-group behaviour of
    the final massive-spawning design); larger pools model the first
    remote-invoker attempt that used threading inside a single function —
    here each pool lane is a sub model task, so no extra threads either way.
    """
    namespace = params["namespace"]
    action = params["action"]
    calls: list[dict[str, Any]] = params["calls"]
    pool_size = int(params.get("pool_size", 1))

    if pool_size <= 1:
        for call_params in calls:
            yield from ctx.functions.invoke_steps(namespace, action, call_params)
        return {"invoked": len(calls)}

    slices = [calls[i::pool_size] for i in range(pool_size)]

    def _spawner_steps(batch: list[dict[str, Any]]):
        for call_params in batch:
            yield from ctx.functions.invoke_steps(namespace, action, call_params)

    tasks = [
        ctx.kernel.spawn_model(_spawner_steps, batch, name=f"rinv-pool-{i}")
        for i, batch in enumerate(slices)
        if batch
    ]
    for task in tasks:
        yield vjoin(task)
    for task in tasks:
        if task._exception is not None:
            raise task._exception
    return {"invoked": len(calls)}
