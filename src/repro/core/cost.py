"""Calibrated compute-cost models for the paper's workloads.

Our substrate is a simulator, not IBM's testbed, so compute durations
inside benchmark functions are charged to the virtual clock through the
models below.  Constants are fitted to the paper's reported numbers (see
DESIGN.md §5); the *shapes* of the experiments — who wins, crossovers,
scaling — follow from the simulation, not from these constants alone.

Fitted anchors:

* Table 3 sequential baseline: 1.9 GB in 5160 s on a 4 vCPU notebook VM
  → :data:`NOTEBOOK_TONE_BYTES_PER_SEC`.
* Table 3, 64 MB chunks: 471 s with 47 executors, and 2 MB chunks: 38 s
  with 923 executors → per-function tone rate + fixed worker overhead.
* Fig. 4 mergesort: leaf sort is ``O(n log n)``, merges ``O(n)``; constants
  give the paper's few-hundred-second scale at N = 25 M, d = 0.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Table 3 — Airbnb tone-analysis MapReduce
# ---------------------------------------------------------------------------

#: bytes/s the sequential Watson-Studio notebook processes (tone analysis)
NOTEBOOK_TONE_BYTES_PER_SEC = 375_000.0

#: seconds to render one city map (matplotlib in the paper, SVG here)
RENDER_SECONDS_PER_CITY = 3.0

#: bytes/s one 256 MB function executor sustains for tone analysis —
#: slower than a notebook core because an action gets a fraction of a CPU
TONE_MAP_BYTES_PER_SEC = 150_000.0

#: fixed per-map-call overhead inside the worker: Python runtime import,
#: function/data fetch and deserialization
WORKER_OVERHEAD_SECONDS = 8.0


def notebook_tone_seconds(nbytes: int) -> float:
    """Sequential (non-PyWren) tone-analysis time for ``nbytes`` of reviews."""
    return nbytes / NOTEBOOK_TONE_BYTES_PER_SEC


def tone_map_seconds(nbytes: int) -> float:
    """In-function tone-analysis time for one partition of ``nbytes``."""
    return WORKER_OVERHEAD_SECONDS + nbytes / TONE_MAP_BYTES_PER_SEC


def render_seconds(n_cities: int = 1) -> float:
    """Map-rendering time for ``n_cities`` city maps."""
    return RENDER_SECONDS_PER_CITY * n_cities


# ---------------------------------------------------------------------------
# Fig. 2 / Fig. 3 — spawning and elasticity workloads
# ---------------------------------------------------------------------------

#: the "arbitrary compute-bound task of 50-seconds duration" of §6.1
FIG2_TASK_SECONDS = 50.0

#: the "compute-bound task for around 60 seconds" of §6.2
FIG3_TASK_SECONDS = 60.0


# ---------------------------------------------------------------------------
# Fig. 4 — mergesort cost model
# ---------------------------------------------------------------------------

#: seconds per element·log2(element) for an in-function mergesort leaf
SORT_SECONDS_PER_ELEM_LOG = 1.2e-6

#: seconds per element for one merge pass
MERGE_SECONDS_PER_ELEM = 2.5e-7

#: serialized size of one integer in a shipped array (pickle framing)
BYTES_PER_ELEMENT = 8


def sort_seconds(n: int) -> float:
    """Time to mergesort ``n`` integers inside one function."""
    if n <= 1:
        return 0.0
    return SORT_SECONDS_PER_ELEM_LOG * n * math.log2(n)


def merge_seconds(n: int) -> float:
    """Time to merge two sorted halves totalling ``n`` integers."""
    return MERGE_SECONDS_PER_ELEM * n


def array_bytes(n: int) -> int:
    """Serialized size of an ``n``-integer array shipped through COS."""
    return n * BYTES_PER_ELEMENT


# ---------------------------------------------------------------------------
# Exchange economics — COS requests vs provisioned VM-seconds
# ---------------------------------------------------------------------------
# The paper's §7 cost argument (and the Milestone follow-up in PAPERS.md)
# turns on request-priced object storage against time-priced provisioned
# capacity.  Prices follow IBM COS standard-tier list prices of the era
# and a small cloud-VM instance; absolute dollars matter less than the
# *ratio*, which decides where the VM exchange's crossover sits.

#: $/request for class A calls (PUT, COPY, LIST — writes and mutations)
COS_CLASS_A_PRICE = 0.005 / 1000.0

#: $/request for class B calls (GET, HEAD — reads)
COS_CLASS_B_PRICE = 0.0004 / 1000.0

#: ops billed at class A rates; everything else observed is class B
COS_CLASS_A_OPS = frozenset({"put", "delete", "copy", "list", "head_bucket"})

#: $/hour for one ephemeral-store VM node (Redis-class small instance)
VM_NODE_PRICE_PER_HOUR = 0.095


def cos_request_cost(counts: dict[str, int]) -> float:
    """Dollar cost of a run's COS API requests.

    ``counts`` is :meth:`CloudObjectStorage.request_counts` — billed
    tallies by op name.  Bandwidth within the cloud is free (the paper's
    functions read COS over the internal network), so requests are the
    whole COS bill for an in-cloud shuffle.
    """
    cost = 0.0
    for op, n in counts.items():
        price = COS_CLASS_A_PRICE if op in COS_CLASS_A_OPS else COS_CLASS_B_PRICE
        cost += n * price
    return cost


def vm_seconds_cost(seconds: float) -> float:
    """Dollar cost of ``seconds`` of provisioned ephemeral-store VM time."""
    return max(0.0, seconds) * VM_NODE_PRICE_PER_HOUR / 3600.0


# ---------------------------------------------------------------------------
# Per-tenant billing rollups (multi-tenant regions)
# ---------------------------------------------------------------------------


def tenant_billing_rollup(meter) -> dict[str, dict[str, float]]:
    """Roll one :class:`~repro.faas.billing.BillingMeter` up by tenant.

    Returns ``{namespace: {"activations", "gb_seconds", "cost"}}`` plus a
    ``"__region__"`` row holding the totals.  The region row is computed
    by summing the per-tenant sums (not the flat entry list), so the
    per-tenant figures add up to the region total *exactly* — the
    invariant the tenant-isolation contract suite pins.
    """
    per_tenant: dict[str, dict[str, float]] = {}
    for entry in meter.entries():
        row = per_tenant.setdefault(
            entry.namespace, {"activations": 0, "gb_seconds": 0.0, "cost": 0.0}
        )
        row["activations"] += 1
        row["gb_seconds"] += entry.gb_seconds
        row["cost"] += entry.cost
    region = {"activations": 0, "gb_seconds": 0.0, "cost": 0.0}
    for name in sorted(per_tenant):
        row = per_tenant[name]
        region["activations"] += row["activations"]
        region["gb_seconds"] += row["gb_seconds"]
        region["cost"] += row["cost"]
    per_tenant["__region__"] = region
    return per_tenant
