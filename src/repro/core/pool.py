"""A bounded task pool over the virtual-time kernel.

Models the client's thread pool: IBM-PyWren's client "leverag[es] threading
to concurrently spawn the functions", and downloads results in parallel the
same way.  ``run_pool`` preserves input order in its results.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.vtime import Kernel, gather


def run_pool(
    kernel: Kernel,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    pool_size: int,
    name: str = "pool",
) -> list[Any]:
    """Apply ``fn`` to every item with at most ``pool_size`` concurrent tasks.

    Work is pulled from a shared cursor so fast workers take more items
    (work stealing), like a real thread pool draining a queue.
    """
    items = list(items)
    if not items:
        return []
    pool_size = max(1, min(pool_size, len(items)))
    results: list[Any] = [None] * len(items)
    cursor = [0]
    lock = threading.Lock()

    def _worker() -> None:
        while True:
            with lock:
                index = cursor[0]
                if index >= len(items):
                    return
                cursor[0] += 1
            results[index] = fn(items[index])

    tasks = [
        kernel.spawn(_worker, name=f"{name}-{i}") for i in range(pool_size)
    ]
    gather(tasks)
    return results
