"""Dynamic function composition helpers (§4.4).

Composition in IBM-PyWren is *programmatic*: any function can create an
executor and fan out, and futures returned from inside functions are
resolved transparently by ``get_result``.  On top of that primitive we
provide the two patterns the paper highlights:

* :func:`sequence` — chains ``f1, f2, ... fn`` so each function acts on its
  predecessor's output (``f3 = f2 ∘ f1``), each stage running as its own
  cloud function;
* :func:`compose` — the functional flavour: ``compose(f2, f1)`` returns a
  callable that runs the sequence (mathematical order, like ``f2 ∘ f1``).

Both ride the DAG engine (:mod:`repro.dag`): the chain is a linear graph
whose dependency watcher invokes each stage the moment its predecessor's
status commits, so the stages appear as graph nodes on the trace spine.
Fusion is deliberately off — the public contract is one activation per
stage (use :class:`repro.dag.DagBuilder` directly for fused chains).

Nested parallelism (the mergesort of §4.4/§6.3) lives in
:mod:`repro.sort.mergesort`, built on the same engine.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.futures import ResponseFuture


def sequence(
    functions: Sequence[Callable[[Any], Any]],
    data: Any,
    executor=None,
) -> ResponseFuture:
    """Launch ``functions`` as a chained cloud composition over ``data``.

    Each function executes in its own invocation, receiving the previous
    output.  Non-blocking: returns the future of the whole chain (the
    last stage's future — its result is the final value).
    """
    functions = list(functions)
    if not functions:
        raise ValueError("sequence needs at least one function")
    if executor is None:
        import repro

        executor = repro.ibm_cf_executor()
    from repro.dag import DagBuilder, DagScheduler

    builder = DagBuilder()
    node = builder.call(functions[0], data, fusable=False)
    for fn in functions[1:]:
        node = node.then(fn, fusable=False)
    run = DagScheduler(executor, label="Q").submit(builder.build(fuse=False))
    return run.expose(node)


def compose(*functions: Callable[[Any], Any]) -> Callable[..., ResponseFuture]:
    """``compose(f3, f2, f1)(x)`` ≡ future of ``f3(f2(f1(x)))`` (§4.4).

    The returned callable accepts ``(data, executor=None)`` and launches the
    chain through :func:`sequence`.
    """
    if not functions:
        raise ValueError("compose needs at least one function")
    chain = list(reversed(functions))

    def composed(data: Any, executor=None) -> ResponseFuture:
        return sequence(chain, data, executor=executor)

    composed.__name__ = "∘".join(f.__name__ for f in functions)
    return composed
