"""Dynamic function composition helpers (§4.4).

Composition in IBM-PyWren is *programmatic*: any function can create an
executor and fan out, and futures returned from inside functions are
resolved transparently by ``get_result``.  On top of that primitive we
provide the two patterns the paper highlights:

* :func:`sequence` — chains ``f1, f2, ... fn`` so each function acts on its
  predecessor's output (``f3 = f2 ∘ f1``), each stage running as its own
  cloud function that launches the next stage via ``call_async``;
* :func:`compose` — the functional flavour: ``compose(f2, f1)`` returns a
  callable that runs the sequence (mathematical order, like ``f2 ∘ f1``).

Nested parallelism (the mergesort of §4.4/§6.3) lives in
:mod:`repro.sort.mergesort`, built on the same primitive.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.futures import ResponseFuture


def _sequence_stage(payload: dict[str, Any]) -> Any:
    """Run one stage of a sequence inside the cloud, then chain the rest.

    Returns either the final value (last stage) or the *future* of the next
    stage — which composition-aware ``get_result`` keeps resolving until a
    plain value emerges.
    """
    functions: list[Callable[[Any], Any]] = payload["functions"]
    value = payload["value"]
    head, rest = functions[0], functions[1:]
    value = head(value)
    if not rest:
        return value
    import repro

    executor = repro.ibm_cf_executor()
    return executor.call_async(_sequence_stage, {"functions": rest, "value": value})


def sequence(
    functions: Sequence[Callable[[Any], Any]],
    data: Any,
    executor=None,
) -> ResponseFuture:
    """Launch ``functions`` as a chained cloud composition over ``data``.

    Each function executes in its own invocation, receiving the previous
    output.  Non-blocking: returns the future of the whole chain.
    """
    functions = list(functions)
    if not functions:
        raise ValueError("sequence needs at least one function")
    if executor is None:
        import repro

        executor = repro.ibm_cf_executor()
    return executor.call_async(
        _sequence_stage, {"functions": functions, "value": data}
    )


def compose(*functions: Callable[[Any], Any]) -> Callable[..., ResponseFuture]:
    """``compose(f3, f2, f1)(x)`` ≡ future of ``f3(f2(f1(x)))`` (§4.4).

    The returned callable accepts ``(data, executor=None)`` and launches the
    chain through :func:`sequence`.
    """
    if not functions:
        raise ValueError("compose needs at least one function")
    chain = list(reversed(functions))

    def composed(data: Any, executor=None) -> ResponseFuture:
        return sequence(chain, data, executor=executor)

    composed.__name__ = "∘".join(f.__name__ for f in functions)
    return composed
