"""Data discovery and partitioning (§4.3).

The user supplies either a list of COS object references or just bucket
names; in the latter case discovery lists each bucket (the paper's "HEAD
request over each bucket") to enumerate the dataset.  The partitioner then
cuts objects into chunks of a configurable size — or one partition per
object when no chunk size is given — and each partition is assigned to one
map function executor.

Dataset specs accepted (mirroring ``pywren-ibm-cloud``):

* ``"bucket"`` — whole bucket, discovery enabled;
* ``"bucket/key"`` or ``"bucket/prefix/"`` — one object / a key prefix;
* an iterable mixing the above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.cos.client import COSClient, ObjectSummary

__all__ = ["StoragePartition", "discover_objects", "partition_objects", "build_partitions"]


@dataclass
class StoragePartition:
    """A byte range of one COS object, assigned to one map executor.

    Inside the cloud function the worker binds ``cos`` so the map function
    can stream its chunk with :meth:`read`.
    """

    bucket: str
    key: str
    range_start: int
    range_end: int
    object_size: int
    partition_index: int = 0
    partitions_of_object: int = 1
    cos: Optional[COSClient] = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return self.range_end - self.range_start

    @property
    def is_whole_object(self) -> bool:
        return self.range_start == 0 and self.range_end == self.object_size

    #: how far past a range boundary we search for the next newline
    LINE_SCAN_WINDOW = 65_536

    def read(self, materialize_cap: Optional[int] = None) -> bytes:
        """Stream this partition's bytes (see COSClient.read_range)."""
        if self.cos is None:
            raise RuntimeError(
                "partition is not bound to a COS client (only the worker "
                "binds partitions)"
            )
        return self.cos.read_range(
            self.bucket,
            self.key,
            self.range_start,
            self.range_end,
            materialize_cap=materialize_cap,
        )

    def read_lines(self, materialize_cap: Optional[int] = None) -> bytes:
        """Read this partition with MapReduce input-split line semantics.

        Byte-range chunking cuts records in half at both ends.  Like
        Hadoop's ``TextInputFormat``, each split (a) skips bytes up to and
        including the first ``\\n`` when it does not start at offset 0 —
        that partial record belongs to the previous split — and (b) reads
        *past* its nominal end until the record that straddles the boundary
        is complete.  Every line of the object is therefore processed by
        exactly one partition, which is what makes per-comment counts in
        the §6.4 job exact rather than approximate.
        """
        if self.cos is None:
            raise RuntimeError(
                "partition is not bound to a COS client (only the worker "
                "binds partitions)"
            )
        data = self.read(materialize_cap=materialize_cap)
        start_skip = 0
        if self.range_start > 0:
            # a record belongs to the split containing its first byte: if
            # the byte before us is a newline, the record starting at our
            # first byte is ours; otherwise skip the partial record (it was
            # completed by the previous split's boundary scan)
            preceding = self.cos.read_range(
                self.bucket, self.key, self.range_start - 1, self.range_start
            )
            if preceding != b"\n":
                newline = data.find(b"\n")
                if newline < 0:
                    return b""  # the whole chunk is the middle of one record
                start_skip = newline + 1
        tail = b""
        if (
            self.range_end < self.object_size
            and (materialize_cap is None or len(data) == self.size)
            and not data.endswith(b"\n")
        ):
            # complete the record straddling our end boundary
            scan_from = self.range_end
            while scan_from < self.object_size:
                window = self.cos.read_range(
                    self.bucket,
                    self.key,
                    scan_from,
                    min(self.object_size, scan_from + self.LINE_SCAN_WINDOW),
                )
                newline = window.find(b"\n")
                if newline >= 0:
                    tail += window[: newline + 1]
                    break
                tail += window
                scan_from += len(window)
        return data[start_skip:] + tail

    def spec(self) -> dict:
        """Plain-dict form shipped in invocation params."""
        return {
            "bucket": self.bucket,
            "key": self.key,
            "range_start": self.range_start,
            "range_end": self.range_end,
            "object_size": self.object_size,
            "partition_index": self.partition_index,
            "partitions_of_object": self.partitions_of_object,
        }

    @staticmethod
    def from_spec(spec: dict, cos: Optional[COSClient] = None) -> "StoragePartition":
        return StoragePartition(
            bucket=spec["bucket"],
            key=spec["key"],
            range_start=spec["range_start"],
            range_end=spec["range_end"],
            object_size=spec["object_size"],
            partition_index=spec["partition_index"],
            partitions_of_object=spec["partitions_of_object"],
            cos=cos,
        )


DatasetSpec = Union[str, Iterable[str]]


def discover_objects(cos: COSClient, dataset: DatasetSpec) -> list[ObjectSummary]:
    """Resolve a dataset spec into concrete objects (the discovery step).

    A bare bucket name triggers automatic discovery over the whole bucket;
    ``bucket/key`` picks one object; ``bucket/prefix/`` everything under the
    prefix.  Order is deterministic (listing order; duplicates removed).
    """
    if isinstance(dataset, str):
        dataset = [dataset]
    seen: set[tuple[str, str]] = set()
    objects: list[ObjectSummary] = []

    def _add(summary: ObjectSummary) -> None:
        ident = (summary.bucket, summary.key)
        if ident not in seen:
            seen.add(ident)
            objects.append(summary)

    for entry in dataset:
        entry = entry.strip()
        if not entry:
            raise ValueError("empty dataset entry")
        if "/" not in entry:
            cos.head_bucket(entry)
            for summary in cos.list_objects(entry):
                _add(summary)
        else:
            bucket, _, rest = entry.partition("/")
            if rest.endswith("/") or rest == "":
                for summary in cos.list_objects(bucket, prefix=rest):
                    _add(summary)
            else:
                _add(cos.head_object(bucket, rest))
    return objects


def partition_objects(
    objects: Iterable[ObjectSummary], chunk_size: Optional[int]
) -> list[StoragePartition]:
    """Cut objects into partitions.

    ``chunk_size=None`` partitions "on the data object granularity" — one
    partition per object.  Otherwise every object is cut independently into
    ``ceil(size / chunk_size)`` chunks, which is why (as Table 3 notes) the
    number of executors does not double when the chunk size halves.
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError("chunk_size must be positive or None")
    partitions: list[StoragePartition] = []
    for obj in objects:
        if chunk_size is None or obj.size <= chunk_size:
            n_parts = 1
        else:
            n_parts = -(-obj.size // chunk_size)  # ceil division
        for i in range(n_parts):
            start = i * (chunk_size or obj.size)
            end = obj.size if chunk_size is None else min(obj.size, start + chunk_size)
            if start >= end and obj.size > 0:
                continue
            partitions.append(
                StoragePartition(
                    bucket=obj.bucket,
                    key=obj.key,
                    range_start=start,
                    range_end=end,
                    object_size=obj.size,
                    partition_index=i,
                    partitions_of_object=n_parts,
                )
            )
    return partitions


def build_partitions(
    cos: COSClient, dataset: DatasetSpec, chunk_size: Optional[int]
) -> list[StoragePartition]:
    """Discovery + partitioning in one call (what ``map_reduce`` uses)."""
    return partition_objects(discover_objects(cos, dataset), chunk_size)
