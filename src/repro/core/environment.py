"""The emulated cloud, assembled.

A :class:`CloudEnvironment` owns one virtual-time kernel and one instance of
each service (COS, Cloud Functions, runtime registry) plus the client-side
configuration.  It is the reproduction's stand-in for "an IBM Cloud account
+ a laptop": create one, then drive client code through :meth:`run` so the
ambient-context machinery can hand executors to nested code.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Optional

from repro.config import CacheConfig, PyWrenConfig
from repro.core import context as ambient
from repro.core import worker
from repro.core.storage_client import InternalStorage
from repro.cos.client import COSClient
from repro.cos.object_store import CloudObjectStorage
from repro.faas.controller import CloudFunctions
from repro.faas.gateway import CloudFunctionsClient
from repro.faas.limits import SystemLimits
from repro.faas.runtime import RuntimeRegistry
from repro.net.latency import LatencyModel
from repro.net.link import NetworkLink
from repro.trace import Tracer
from repro.vtime import Kernel


class CloudEnvironment:
    """One simulated cloud + client configuration."""

    def __init__(
        self,
        kernel: Kernel,
        storage: CloudObjectStorage,
        platform: CloudFunctions,
        registry: RuntimeRegistry,
        config: PyWrenConfig,
        client_latency: LatencyModel,
        seed: int = 42,
        chaos=None,
        tracer: Optional[Tracer] = None,
        cache: Optional[CacheConfig] = None,
        exchange=None,
    ) -> None:
        self.kernel = kernel
        self.storage = storage
        self.platform = platform
        self.registry = registry
        self.config = config
        self.client_latency = client_latency
        self.seed = seed
        #: the fault-injection plane, or ``None`` for a fault-free cloud
        self.chaos = chaos
        #: the trace spine (disabled unless ``create(trace=True)``)
        self.tracer = tracer if tracer is not None else Tracer(kernel, enabled=False)
        storage.tracer = self.tracer
        platform.tracer = self.tracer
        if chaos is not None:
            chaos.tracer = self.tracer
        #: the intermediate-data exchange backend (ARCHITECTURE.md
        #: "Exchange backends").  The default — ``ExchangeConfig()`` with
        #: no cache — is the direct COS path with zero new behaviour,
        #: timings or trace events.
        from repro.exchange import build_exchange

        cache_config = cache if cache is not None else config.cache
        exchange_config = exchange if exchange is not None else config.exchange
        self.exchange = build_exchange(
            exchange_config,
            cache_config,
            len(platform.invokers),
            kernel=kernel,
            tracer=self.tracer,
            chaos=chaos,
        )
        platform.exchange = self.exchange
        plane = getattr(self.exchange, "plane", None)
        if plane is not None:
            for node in platform.invokers:
                node.cache_plane = plane
        self._link_seq = itertools.count(1)
        self._id_seq = itertools.count(1)
        self._deploy_lock = threading.Lock()
        self._deployed_actions: set[tuple[str, str]] = set()
        #: optional ApiKey sent by this client's executors (multi-tenant
        #: platforms with ``platform.require_auth`` set)
        self.credentials = None
        storage.create_bucket(config.storage_bucket, exist_ok=True)
        platform.environment = self
        from repro.mq.broker import MessageBroker

        #: in-cloud message broker (push-monitoring transport)
        self.broker = MessageBroker(kernel)

    @property
    def cache(self):
        """The cache plane when the exchange backend carries one, else
        ``None`` (kept for PR 5 callers; the backend is ``env.exchange``)."""
        return getattr(self.exchange, "plane", None)

    @classmethod
    def create(
        cls,
        client_latency: Optional[LatencyModel] = None,
        limits: Optional[SystemLimits] = None,
        config: Optional[PyWrenConfig] = None,
        seed: int = 42,
        kernel: Optional[Kernel] = None,
        crash_prob: float = 0.0,
        chaos=None,
        trace: bool = False,
        cache: Optional[CacheConfig] = None,
        exchange=None,
        events=None,
        tenants=None,
    ) -> "CloudEnvironment":
        """Build a complete environment with sensible defaults.

        The default client sits in a high-latency WAN, like the paper's
        evaluation client ("located in a remote network with high latency").
        ``crash_prob`` injects container crashes for resilience testing.

        ``chaos`` attaches a deterministic fault-injection plane: a
        :class:`~repro.chaos.ChaosProfile`, a profile name (``"flaky-cos"``,
        ``"crashy-workers"``, ``"storm"``), or an already-built
        :class:`~repro.chaos.ChaosPlane`.  ``None`` or the ``"none"``
        profile leave every layer untouched.

        ``trace=True`` enables the trace spine: every layer emits spans
        onto ``env.tracer`` (see :mod:`repro.trace`).

        ``cache`` attaches the memory-tier intermediate-data cache plane
        (a :class:`~repro.config.CacheConfig` with ``enabled=True``); by
        default ``config.cache`` decides, which is disabled.

        ``exchange`` selects the intermediate-data exchange backend: an
        :class:`~repro.config.ExchangeConfig` or a backend name (``"cos"``,
        ``"cached-cos"``, ``"vm"``).  By default ``config.exchange``
        decides, which is the direct COS path (``cache=`` above is the
        PR 5 spelling for the cached backend and still works).

        ``events`` switches on the durable orchestration journal: an
        :class:`~repro.config.EventsConfig`, or ``True`` for the default
        COS-backed journal.  By default ``config.events`` decides, which
        is disabled.

        ``tenants`` switches the region into multi-tenant mode: a
        :class:`~repro.faas.tenants.TenantRegistry`, or an iterable of
        :class:`~repro.config.TenantConfig` (wrapped in a registry with
        the default ``"drr"`` dispatch policy).  ``None`` — the default —
        keeps the legacy single-tenant scheduling path, byte-identical to
        pre-tenancy runs.
        """
        from repro.chaos import build_plane
        from repro.config import EventsConfig
        from repro.exchange import normalize_exchange

        exchange = normalize_exchange(exchange)
        plane = build_plane(chaos)
        kernel = kernel or Kernel()
        client_latency = client_latency or LatencyModel.wan()
        config = config or PyWrenConfig()
        if events is not None:
            if events is True:
                events = EventsConfig(enabled=True)
            elif events is False:
                events = EventsConfig(enabled=False)
            config.events = events
        config.validate()
        registry = RuntimeRegistry()
        storage = CloudObjectStorage(kernel)
        storage.chaos = plane
        platform = CloudFunctions(
            kernel,
            storage,
            limits=limits,
            registry=registry,
            seed=seed,
            crash_prob=crash_prob,
            chaos=plane,
        )
        if tenants is not None:
            from repro.faas.tenants import TenantRegistry

            if not isinstance(tenants, TenantRegistry):
                tenants = TenantRegistry(tenants)
            platform.attach_tenants(tenants)
        return cls(
            kernel,
            storage,
            platform,
            registry,
            config,
            client_latency,
            seed,
            chaos=plane,
            tracer=Tracer(kernel, enabled=bool(trace)),
            cache=cache,
            exchange=exchange,
        )

    # ------------------------------------------------------------------
    # Links and clients
    # ------------------------------------------------------------------
    def new_client_link(self) -> NetworkLink:
        return NetworkLink(
            self.kernel,
            self.client_latency,
            seed=self.seed * 1000 + next(self._link_seq),
            chaos=self.chaos,
            tracer=self.tracer,
        )

    def new_executor_id(self) -> str:
        """An executor id that is a pure function of (seed, serial).

        Scoping the serial to the environment — not the process — keeps
        same-seed runs byte-identical (the id appears in every journal
        record), no matter what else the process allocated before.
        """
        from repro.utils.ids import new_executor_id

        return new_executor_id(self.seed, serial=next(self._id_seq))

    def client_cos(self) -> COSClient:
        """A COS client as seen from the user's machine."""
        return COSClient(self.storage, self.new_client_link())

    def client_functions(self) -> CloudFunctionsClient:
        return CloudFunctionsClient(self.platform, self.new_client_link())

    def mq_client(self, in_cloud: bool = False):
        """A message-queue client over the appropriate network path."""
        from repro.mq.client import MQClient

        link = (
            self.platform.in_cloud_link_factory()
            if in_cloud
            else self.new_client_link()
        )
        return MQClient(self.broker, link)

    def internal_storage_in_cloud(self) -> InternalStorage:
        """Internal storage reached over an in-cloud link (worker side)."""
        cos = COSClient(
            self.storage,
            self.platform.in_cloud_link_factory(),
            retry=self.config.retry,
        )
        return InternalStorage(
            cos,
            self.config.storage_bucket,
            self.config.storage_prefix,
            exchange=self.exchange,
        )

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def executor(
        self,
        runtime: Optional[str] = None,
        in_cloud: Optional[bool] = None,
        **overrides: Any,
    ):
        """Create a :class:`~repro.core.executor.FunctionExecutor`.

        ``in_cloud`` defaults to whether the calling thread is a running
        cloud function (so nested executors automatically use in-cloud
        links).  ``runtime=`` mirrors §4.1's
        ``pw.ibm_cf_executor(runtime='matplotlib')``.
        """
        from repro.core.executor import FunctionExecutor

        if in_cloud is None:
            ctx = ambient.current_context()
            in_cloud = bool(ctx and ctx.in_cloud and ctx.environment is self)
        if runtime is not None:
            overrides = {"runtime": runtime, **overrides}
        return FunctionExecutor(self, in_cloud=in_cloud, **overrides)

    # ------------------------------------------------------------------
    # Action deployment (idempotent)
    # ------------------------------------------------------------------
    def ensure_runner_action(
        self,
        runtime: str,
        memory_mb: int,
        timeout_s: float,
        namespace: Optional[str] = None,
    ) -> str:
        """Deploy the generic runner action into ``namespace`` (default:
        the environment's configured namespace) once per (namespace, name)
        — each tenant of a multi-tenant region owns its own copy."""
        namespace = namespace if namespace is not None else self.config.namespace
        name = worker.runner_action_name(runtime, memory_mb)
        with self._deploy_lock:
            if (namespace, name) not in self._deployed_actions:
                self.platform.create_action(
                    namespace,
                    name,
                    worker.runner_handler,
                    runtime=runtime,
                    memory_mb=memory_mb,
                    timeout_s=timeout_s,
                )
                self._deployed_actions.add((namespace, name))
        return name

    def ensure_remote_invoker_action(self) -> str:
        name = worker.REMOTE_INVOKER_ACTION
        namespace = self.config.namespace
        with self._deploy_lock:
            if (namespace, name) not in self._deployed_actions:
                self.platform.create_action(
                    namespace,
                    name,
                    worker.remote_invoker_handler,
                    memory_mb=self.platform.limits.default_memory_mb,
                    timeout_s=self.platform.limits.max_exec_seconds,
                )
                self._deployed_actions.add((namespace, name))
        return name

    # ------------------------------------------------------------------
    # Driving client code
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` as the client program inside the virtual-time kernel.

        Inside ``fn`` (and only there), ``repro.ibm_cf_executor()`` resolves
        to this environment.  Returns ``fn``'s result after the simulation
        drains.
        """

        def _bootstrap() -> Any:
            ambient.push_context(self, in_cloud=False)
            try:
                return fn(*args, **kwargs)
            finally:
                ambient.pop_context()

        return self.kernel.run(_bootstrap, name="client")

    def now(self) -> float:
        return self.kernel.now()
