"""Function and data serialization.

IBM-PyWren ships the user's code to the cloud by value: the client pickles
the function (plus whatever it references) into COS, and the runner action
rebuilds it inside the container.  The standard library pickle refuses
lambdas, nested functions and ``__main__`` functions, so we implement the
relevant subset of cloudpickle ourselves:

* importable functions are pickled by reference (cheap, like real modules
  preinstalled in the runtime);
* everything else is pickled by value — marshalled code object, captured
  globals (only the names the code actually references), closure cells,
  defaults — with self-references broken via late binding;
* modules referenced from captured globals are stored by name and
  re-imported at load time (they must exist in the runtime image, exactly
  the constraint the paper's custom-runtime feature addresses).
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any

__all__ = [
    "SerializationError",
    "serialize",
    "deserialize",
    "is_importable_function",
]


class SerializationError(Exception):
    """The object graph could not be serialized for shipping to the cloud."""


def is_importable_function(fn: types.FunctionType) -> bool:
    """True if ``fn`` can be recovered with ``from module import qualname``.

    Functions from ``__main__`` are treated as non-importable so that user
    scripts exercise the by-value path, matching cloudpickle's policy.
    """
    module_name = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module_name or module_name == "__main__" or "<locals>" in qualname:
        return False
    module = sys.modules.get(module_name)
    if module is None:
        return False
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _global_names(code: types.CodeType) -> set[str]:
    """All global names referenced by ``code``, including nested code."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _global_names(const)
    return names


def _import_module(name: str) -> types.ModuleType:
    return importlib.import_module(name)


def _rebuild_function(
    code_bytes: bytes,
    name: str,
    qualname: str,
    defaults: Any,
    kwdefaults: Any,
    closure_values: Any,
    globals_map: dict[str, Any],
    self_names: tuple[str, ...],
    fn_dict: dict[str, Any],
) -> types.FunctionType:
    """Inverse of the by-value reduction in :class:`_Pickler`."""
    code = marshal.loads(code_bytes)
    fn_globals: dict[str, Any] = {"__builtins__": __builtins__}
    fn_globals.update(globals_map)
    closure = None
    if closure_values is not None:
        closure = tuple(types.CellType(v) for v in closure_values)
    fn = types.FunctionType(code, fn_globals, name, defaults, closure)
    fn.__qualname__ = qualname
    fn.__kwdefaults__ = kwdefaults
    fn.__dict__.update(fn_dict)
    for self_name in self_names:
        fn_globals[self_name] = fn
    return fn


class _Pickler(pickle.Pickler):
    """Pickler that serializes non-importable functions by value."""

    def reducer_override(self, obj: Any):  # noqa: ANN401 - pickle protocol
        if isinstance(obj, types.ModuleType):
            return (_import_module, (obj.__name__,))
        if isinstance(obj, types.FunctionType):
            if is_importable_function(obj):
                return NotImplemented  # default by-reference pickling
            return self._reduce_function(obj)
        return NotImplemented

    def _reduce_function(self, fn: types.FunctionType):
        try:
            code_bytes = marshal.dumps(fn.__code__)
        except ValueError as exc:  # pragma: no cover - exotic code objects
            raise SerializationError(f"cannot marshal code of {fn!r}: {exc}")
        wanted = _global_names(fn.__code__)
        globals_map: dict[str, Any] = {}
        self_names: list[str] = []
        for name in wanted:
            if name not in fn.__globals__:
                continue  # builtin or genuinely missing; resolved at runtime
            value = fn.__globals__[name]
            if value is fn:
                # Recursive global function: bind lazily after rebuild to
                # avoid a pickle cycle through the globals dict.
                self_names.append(name)
            else:
                globals_map[name] = value
        closure_values = None
        if fn.__closure__ is not None:
            values = []
            for cell in fn.__closure__:
                try:
                    values.append(cell.cell_contents)
                except ValueError:
                    raise SerializationError(
                        f"function {fn.__qualname__!r} has an empty closure "
                        "cell (still being defined?)"
                    ) from None
            closure_values = tuple(values)
        return (
            _rebuild_function,
            (
                code_bytes,
                fn.__name__,
                fn.__qualname__,
                fn.__defaults__,
                fn.__kwdefaults__,
                closure_values,
                globals_map,
                tuple(self_names),
                dict(fn.__dict__),
            ),
        )


def serialize(obj: Any) -> bytes:
    """Serialize an arbitrary object graph (functions included) to bytes."""
    buffer = io.BytesIO()
    try:
        _Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except SerializationError:
        raise
    except RecursionError as exc:
        raise SerializationError(
            "object graph too deeply recursive (mutually recursive "
            "non-importable functions are not supported)"
        ) from exc
    except Exception as exc:  # noqa: BLE001 - normalize pickle errors
        raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
    return buffer.getvalue()


def deserialize(blob: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(blob)
