"""IBM-PyWren core: executor, futures, partitioner, composition."""

from repro.core.composition import compose, sequence
from repro.core.environment import CloudEnvironment
from repro.core.errors import (
    ClientCrashError,
    FunctionError,
    NoActiveEnvironmentError,
    PyWrenError,
    ResultTimeoutError,
)
from repro.core.executor import FunctionExecutor, ibm_cf_executor
from repro.core.futures import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    CallFailure,
    CallState,
    FailureReport,
    ResponseFuture,
)
from repro.core.partitioner import (
    StoragePartition,
    build_partitions,
    discover_objects,
    partition_objects,
)
from repro.core.storage_client import InternalStorage
from repro.core.wait import wait

__all__ = [
    "CloudEnvironment",
    "FunctionExecutor",
    "ibm_cf_executor",
    "ResponseFuture",
    "CallState",
    "CallFailure",
    "FailureReport",
    "wait",
    "ALWAYS",
    "ANY_COMPLETED",
    "ALL_COMPLETED",
    "StoragePartition",
    "build_partitions",
    "discover_objects",
    "partition_objects",
    "InternalStorage",
    "compose",
    "sequence",
    "PyWrenError",
    "FunctionError",
    "ResultTimeoutError",
    "NoActiveEnvironmentError",
    "ClientCrashError",
]
