"""COS-based shuffle: full keyed MapReduce over serverless functions.

The paper's related-work section calls data shuffling "one of the biggest
challenges in running MapReduce jobs over serverless architectures", with
proposals to route intermediate data through S3/ElastiCache/SQS.  This
module implements the object-storage flavour on top of IBM-PyWren's own
primitives:

* each **map** task applies the user function (which emits ``(key, value)``
  pairs), hash-partitions the pairs into R buckets, and writes each bucket
  as a COS object under its own call prefix;
* each of the R **reducers** waits for all maps, reads *its* bucket from
  every map's output, groups by key, and applies the user reduce function
  per key.

Everything — the map shim, the reducers, the completion signalling — rides
the ordinary executor machinery: shims are plain functions serialized by
value; reducers are `call_async` calls shipping the map futures.

The shims never name a data plane: ``put_shuffle_partition`` and
``get_shuffle_partition`` route through the environment's pluggable
:class:`~repro.exchange.base.ExchangeBackend` (ARCHITECTURE.md
"Exchange backends"), so the same code shuffles via direct COS, the
memory-tier cache, or the VM ephemeral-store cluster — the
S3/ElastiCache exchange alternatives of the related work, selected by
``ExchangeConfig`` without changing a line here.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable

from repro.core import context as ambient
from repro.core.futures import ALL_COMPLETED, ResponseFuture
from repro.core.wait import wait as wait_on

#: map output pair: (key, value)
Pair = tuple[Any, Any]


def stable_key_hash(key: Any) -> int:
    """Deterministic, process-independent hash for shuffle partitioning.

    Built on the ``repr`` of the key, which is stable for the hashable
    primitives (str/int/float/tuples thereof) sensible as shuffle keys.
    """
    digest = hashlib.md5(repr(key).encode("utf-8", "backslashreplace")).digest()
    return int.from_bytes(digest[:8], "big")


def partition_pairs(pairs: Iterable[Pair], n_reducers: int) -> list[list[Pair]]:
    """Split emitted pairs into ``n_reducers`` buckets by key hash."""
    buckets: list[list[Pair]] = [[] for _ in range(n_reducers)]
    for key, value in pairs:
        buckets[stable_key_hash(key) % n_reducers].append((key, value))
    return buckets


def make_shuffle_map(
    map_function: Callable[[Any], Iterable[Pair]], n_reducers: int
):
    """Build the map-side shim (runs inside the cloud function).

    Uses the ambient call info to address this call's shuffle objects.
    """

    def shuffle_map(argument: Any) -> dict[str, Any]:
        context = ambient.require_context()
        info = context.call_info
        if info is None:
            raise RuntimeError("shuffle map must run inside a function executor")
        storage = context.environment.internal_storage_in_cloud()
        pairs = list(map_function(argument))
        buckets = partition_pairs(pairs, n_reducers)
        written = 0
        for reducer_index, bucket in enumerate(buckets):
            if bucket:
                storage.put_shuffle_partition(
                    info["executor_id"],
                    info["callset_id"],
                    info["call_id"],
                    reducer_index,
                    bucket,
                )
                written += 1
        return {"emitted": len(pairs), "buckets_written": written}

    return shuffle_map


def make_shuffle_reduce(
    reduce_function: Callable[[Any, list[Any]], Any],
    reducer_index: int,
    map_futures: list[ResponseFuture],
    poll_interval: float,
):
    """Build one reducer's shim: fetch bucket ``reducer_index`` everywhere,
    group by key, reduce per key.  Returns ``{key: reduced_value}``."""

    def shuffle_reduce(_: Any) -> dict[Any, Any]:
        context = ambient.require_context()
        storage = context.environment.internal_storage_in_cloud()
        for future in map_futures:
            future.bind(storage, poll_interval)
        wait_on(map_futures, storage, ALL_COMPLETED, poll_interval)
        for future in map_futures:
            future.result()  # surface map failures in this reducer

        grouped: dict[Any, list[Any]] = {}
        for future in map_futures:
            bucket = storage.get_shuffle_partition(
                future.executor_id,
                future.callset_id,
                future.call_id,
                reducer_index,
            )
            for key, value in bucket:
                grouped.setdefault(key, []).append(value)
        return {
            key: reduce_function(key, values) for key, values in grouped.items()
        }

    return shuffle_reduce


def make_shuffle_reduce_fetch(
    reduce_function: Callable[[Any, list[Any]], Any],
    reducer_index: int,
):
    """Build one reducer's *fetch-only* shim for the DAG scheduler.

    The scheduler only invokes a reducer node once every map status has
    committed, so — unlike :func:`make_shuffle_reduce`, which burns cloud
    seconds polling — this shim goes straight to its buckets.  It receives
    the map futures as its argument (a ``pass_futures`` DAG node) and
    reads bucket ``reducer_index`` from each map's shuffle prefix without
    downloading any map results.
    """

    def shuffle_reduce(map_futures: list[ResponseFuture]) -> dict[Any, Any]:
        context = ambient.require_context()
        storage = context.environment.internal_storage_in_cloud()
        grouped: dict[Any, list[Any]] = {}
        for future in map_futures:
            bucket = storage.get_shuffle_partition(
                future.executor_id,
                future.callset_id,
                future.call_id,
                reducer_index,
            )
            for key, value in bucket:
                grouped.setdefault(key, []).append(value)
        return {
            key: reduce_function(key, values) for key, values in grouped.items()
        }

    return shuffle_reduce


def merge_shuffle_results(results: Iterable[dict[Any, Any]]) -> dict[Any, Any]:
    """Merge per-reducer output dicts (keys are disjoint by construction)."""
    merged: dict[Any, Any] = {}
    for result in results:
        overlap = merged.keys() & result.keys()
        if overlap:
            raise ValueError(
                f"shuffle invariant violated: keys {sorted(overlap)!r} "
                "appeared in more than one reducer"
            )
        merged.update(result)
    return merged
