"""Function-spawning strategies (§5.1, Table 1 "Remote function spawning").

* :class:`LocalInvoker` — the client issues every invocation over its own
  network link with a thread pool, like original PyWren.  Fast from a
  low-latency network, slow (and failure-prone) over a WAN.
* :class:`RemoteInvoker` — one remote invoker function receives the whole
  call list and spawns from inside the cloud, optionally with an internal
  pool (the paper's first attempt: ~20 s for 1000 calls).
* :class:`MassiveInvoker` — the final design: groups of
  ``group_size`` calls, one remote invoker function per group, executed in
  parallel (~8 s for 1000 calls, like a low-latency client).

Invokers treat call params as opaque: when a locality-providing exchange
backend supplies a ``placement_hint`` (see :mod:`repro.dag.locality`),
every strategy forwards it untouched to the FaaS controller, which uses
it to prefer the invoker node already holding the task's inputs.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from repro.core.futures import ResponseFuture
from repro.core.pool import run_pool
from repro.core.worker import REMOTE_INVOKER_ACTION
from repro.faas.gateway import CloudFunctionsClient
from repro.vtime import Kernel


class Invoker:
    """Strategy interface: issue one invocation per call-params dict."""

    #: optional :class:`repro.trace.Tracer`; set by the executor
    tracer = None

    def invoke_calls(
        self,
        namespace: str,
        action: str,
        calls: Sequence[dict[str, Any]],
        futures: Sequence[ResponseFuture],
    ) -> None:
        raise NotImplementedError

    def _trace_invoke(self, future: ResponseFuture) -> None:
        """Record one ``client.invoke`` attempt for ``future``."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            ids = {
                "executor_id": future.executor_id,
                "callset_id": future.callset_id,
                "call_id": future.call_id,
                "attempt": max(1, future.invoke_count),
            }
            if future.activation_id is not None:
                ids["activation_id"] = future.activation_id
            tracer.point("client.invoke", "client", ids=ids)


class LocalInvoker(Invoker):
    """Client-side invocation with a thread pool."""

    def __init__(
        self,
        kernel: Kernel,
        functions: CloudFunctionsClient,
        pool_size: int,
        tracer=None,
    ) -> None:
        self.kernel = kernel
        self.functions = functions
        self.pool_size = pool_size
        self.tracer = tracer

    def invoke_calls(
        self,
        namespace: str,
        action: str,
        calls: Sequence[dict[str, Any]],
        futures: Sequence[ResponseFuture],
    ) -> None:
        pairs = list(zip(calls, futures))

        def _invoke(pair: tuple[dict[str, Any], ResponseFuture]) -> None:
            params, future = pair
            activation_id = self.functions.invoke(namespace, action, params)
            future.mark_invoked(activation_id)
            self._trace_invoke(future)

        run_pool(self.kernel, _invoke, pairs, self.pool_size, name="invoker")


class RemoteInvoker(Invoker):
    """One in-cloud invoker function spawns the whole job."""

    def __init__(
        self,
        kernel: Kernel,
        functions: CloudFunctionsClient,
        pool_size: int = 4,
        tracer=None,
    ) -> None:
        self.kernel = kernel
        self.functions = functions
        self.pool_size = pool_size
        self.tracer = tracer

    def invoke_calls(
        self,
        namespace: str,
        action: str,
        calls: Sequence[dict[str, Any]],
        futures: Sequence[ResponseFuture],
    ) -> None:
        params = {
            "namespace": namespace,
            "action": action,
            "calls": list(calls),
            "pool_size": self.pool_size,
        }
        self.functions.invoke(namespace, REMOTE_INVOKER_ACTION, params)
        for future in futures:
            future.mark_invoked(None)
            self._trace_invoke(future)


class MassiveInvoker(Invoker):
    """Groups of invocations, one remote invoker function per group (§5.1).

    "The final approach was to make groups of 100 invocations and execute
    them at the same time with different remote invoker functions."
    """

    def __init__(
        self,
        kernel: Kernel,
        functions: CloudFunctionsClient,
        group_size: int = 100,
        client_pool_size: int = 8,
        tracer=None,
    ) -> None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.kernel = kernel
        self.functions = functions
        self.group_size = group_size
        self.client_pool_size = client_pool_size
        self.tracer = tracer

    def invoke_calls(
        self,
        namespace: str,
        action: str,
        calls: Sequence[dict[str, Any]],
        futures: Sequence[ResponseFuture],
    ) -> None:
        calls = list(calls)
        groups = [
            calls[i : i + self.group_size]
            for i in range(0, len(calls), self.group_size)
        ]

        def _invoke_group(group: list[dict[str, Any]]) -> None:
            params = {
                "namespace": namespace,
                "action": action,
                "calls": group,
                "pool_size": 1,  # sequential inside each group invoker
            }
            self.functions.invoke(namespace, REMOTE_INVOKER_ACTION, params)

        run_pool(
            self.kernel,
            _invoke_group,
            groups,
            self.client_pool_size,
            name="massive-invoker",
        )
        for future in futures:
            future.mark_invoked(None)
            self._trace_invoke(future)
