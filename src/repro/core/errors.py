"""Exceptions raised by the IBM-PyWren core."""

from __future__ import annotations


class PyWrenError(Exception):
    """Base class for core errors."""


class NoActiveEnvironmentError(PyWrenError):
    """``ibm_cf_executor()`` was called with no active cloud environment.

    Create one with ``CloudEnvironment.create()`` and run client code via
    ``env.run(main)``, or pass an environment explicitly.
    """


class ResultTimeoutError(PyWrenError):
    """``get_result``/``result`` hit its timeout before completion (§4.2)."""


class FunctionError(PyWrenError):
    """A function executor raised; carries the remote traceback.

    The original exception (when picklable) is available as ``cause``.
    """

    def __init__(self, message: str, cause: BaseException | None = None,
                 remote_traceback: str | None = None) -> None:
        super().__init__(message)
        self.cause = cause
        self.remote_traceback = remote_traceback


class SerializationError(PyWrenError):
    """Re-exported for convenience; see :mod:`repro.core.serializer`."""


class ClientCrashError(PyWrenError):
    """The driver process died (client-crash chaos killed it).

    Raised inside client-side executor code at the seeded virtual crash
    time; in-flight cloud work keeps running.  A later process can adopt
    the orphaned job with ``FunctionExecutor.reattach(job_id)`` when the
    event journal is enabled (see :mod:`repro.events`).
    """
