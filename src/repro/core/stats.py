"""Per-job execution statistics.

The real framework stores "some metadata about the status of the
invocations, such as execution times" in COS (§4.2); this module turns a
job's futures into the summary numbers the paper's evaluation narrates:
invocation phase, execution spread (the fast/slow functions visible in
Fig. 3), and total makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.futures import ResponseFuture


@dataclass(frozen=True)
class JobStats:
    """Summary of one finished job (all futures must be done)."""

    n_calls: int
    #: virtual time the first function started
    first_start: float
    #: virtual time the last function started (end of the invocation ramp)
    last_start: float
    #: virtual time the last function finished
    last_end: float
    mean_duration: float
    p50_duration: float
    p95_duration: float
    max_duration: float
    #: re-invocations spent recovering lost calls across the job
    retries_total: int = 0
    #: calls that ended in error (including buried lost calls)
    failed_calls: int = 0

    @property
    def spawn_spread(self) -> float:
        """Length of the invocation ramp (Fig. 2's invocation phase)."""
        return self.last_start - self.first_start

    @property
    def makespan(self) -> float:
        """First start to last finish."""
        return self.last_end - self.first_start

    @property
    def straggler_ratio(self) -> float:
        """max / median duration — 1.0 means perfectly even executions."""
        if self.p50_duration == 0:
            return 1.0
        return self.max_duration / self.p50_duration


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def collect_job_stats(futures: Sequence[ResponseFuture]) -> JobStats:
    """Aggregate statuses of finished futures into a :class:`JobStats`.

    Each future's status is fetched (cached after the first read), so call
    this after ``get_result``/``wait`` to avoid extra polling.
    """
    futures = list(futures)
    if not futures:
        raise ValueError("collect_job_stats needs at least one future")
    starts: list[float] = []
    ends: list[float] = []
    durations: list[float] = []
    retries_total = 0
    failed_calls = 0
    for future in futures:
        status = future.status()
        retries_total += max(0, future.invoke_count - 1)
        if not status.get("success"):
            failed_calls += 1
        # buried (lost) calls may lack execution timestamps
        if status.get("start_time") is None or status.get("end_time") is None:
            continue
        starts.append(status["start_time"])
        ends.append(status["end_time"])
        durations.append(status["end_time"] - status["start_time"])
    durations.sort()
    if not durations:
        return JobStats(
            n_calls=len(futures),
            first_start=0.0,
            last_start=0.0,
            last_end=0.0,
            mean_duration=0.0,
            p50_duration=0.0,
            p95_duration=0.0,
            max_duration=0.0,
            retries_total=retries_total,
            failed_calls=failed_calls,
        )
    return JobStats(
        n_calls=len(futures),
        first_start=min(starts),
        last_start=max(starts),
        last_end=max(ends),
        mean_duration=sum(durations) / len(durations),
        p50_duration=_percentile(durations, 0.5),
        p95_duration=_percentile(durations, 0.95),
        max_duration=durations[-1],
        retries_total=retries_total,
        failed_calls=failed_calls,
    )
