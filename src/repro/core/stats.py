"""Per-job execution statistics.

The real framework stores "some metadata about the status of the
invocations, such as execution times" in COS (§4.2); this module turns a
job's futures into the summary numbers the paper's evaluation narrates:
invocation phase, execution spread (the fast/slow functions visible in
Fig. 3), and total makespan.

The aggregation itself works on plain :class:`CallRecord` values so the
same derivation serves both sources of truth: future statuses
(:func:`collect_job_stats`) and the trace spine
(:func:`repro.trace.derive.job_stats_from_events`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.futures import ResponseFuture


@dataclass(frozen=True)
class JobStats:
    """Summary of one finished job (all futures must be done)."""

    n_calls: int
    #: virtual time the first function started
    first_start: float
    #: virtual time the last function started (end of the invocation ramp)
    last_start: float
    #: virtual time the last function finished
    last_end: float
    mean_duration: float
    p50_duration: float
    p95_duration: float
    max_duration: float
    #: re-invocations spent recovering lost calls across the job
    retries_total: int = 0
    #: calls that ended in error (including buried lost calls)
    failed_calls: int = 0

    @property
    def spawn_spread(self) -> float:
        """Length of the invocation ramp (Fig. 2's invocation phase)."""
        return self.last_start - self.first_start

    @property
    def makespan(self) -> float:
        """First start to last finish."""
        return self.last_end - self.first_start

    @property
    def straggler_ratio(self) -> float:
        """max / median duration — 1.0 means perfectly even executions."""
        if self.p50_duration == 0:
            return 1.0
        return self.max_duration / self.p50_duration


@dataclass(frozen=True)
class CallRecord:
    """Outcome of one call, independent of where it was observed.

    ``start``/``end`` are ``None`` for buried (lost) calls that never
    reported execution timestamps; ``attempts`` counts invocations
    (1 = no retries).
    """

    start: Optional[float]
    end: Optional[float]
    success: bool
    attempts: int = 1


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values.

    ``q`` is a fraction in [0, 1].  For a rank that falls between two
    samples the value is interpolated between them, so e.g. the p95 of
    ``[1, 2, 3, 4]`` is 3.85 rather than snapping to a neighbour the way
    nearest-rank rounding does on small samples.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lo = math.floor(position)
    hi = math.ceil(position)
    if lo == hi:
        return sorted_values[int(position)]
    fraction = position - lo
    return sorted_values[lo] * (1.0 - fraction) + sorted_values[hi] * fraction


def stats_from_call_records(records: Sequence[CallRecord]) -> JobStats:
    """Aggregate :class:`CallRecord` values into a :class:`JobStats`."""
    records = list(records)
    if not records:
        raise ValueError("stats_from_call_records needs at least one record")
    starts: list[float] = []
    ends: list[float] = []
    durations: list[float] = []
    retries_total = 0
    failed_calls = 0
    for record in records:
        retries_total += max(0, record.attempts - 1)
        if not record.success:
            failed_calls += 1
        # buried (lost) calls may lack execution timestamps
        if record.start is None or record.end is None:
            continue
        starts.append(record.start)
        ends.append(record.end)
        durations.append(record.end - record.start)
    durations.sort()
    if not durations:
        return JobStats(
            n_calls=len(records),
            first_start=0.0,
            last_start=0.0,
            last_end=0.0,
            mean_duration=0.0,
            p50_duration=0.0,
            p95_duration=0.0,
            max_duration=0.0,
            retries_total=retries_total,
            failed_calls=failed_calls,
        )
    return JobStats(
        n_calls=len(records),
        first_start=min(starts),
        last_start=max(starts),
        last_end=max(ends),
        mean_duration=sum(durations) / len(durations),
        p50_duration=_percentile(durations, 0.5),
        p95_duration=_percentile(durations, 0.95),
        max_duration=durations[-1],
        retries_total=retries_total,
        failed_calls=failed_calls,
    )


def collect_job_stats(futures: Sequence[ResponseFuture]) -> JobStats:
    """Aggregate statuses of finished futures into a :class:`JobStats`.

    Each future's status is fetched (cached after the first read), so call
    this after ``get_result``/``wait`` to avoid extra polling.
    """
    futures = list(futures)
    if not futures:
        raise ValueError("collect_job_stats needs at least one future")
    records = []
    for future in futures:
        status = future.status()
        records.append(
            CallRecord(
                start=status.get("start_time"),
                end=status.get("end_time"),
                success=bool(status.get("success")),
                attempts=max(1, future.invoke_count),
            )
        )
    return stats_from_call_records(records)
