"""Ambient environment context.

``pw.ibm_cf_executor()`` works both on the client *and inside a running
cloud function* (that is how §4.4's dynamic composition works: any function
may spin up an executor and fan out).  The binding between the calling
thread and its cloud environment is kept here: ``CloudEnvironment.run``
registers the client thread, and the runner worker registers each function
execution thread with ``in_cloud=True`` so nested executors get in-cloud
network links automatically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.errors import NoActiveEnvironmentError


@dataclass(frozen=True)
class AmbientContext:
    """What the current thread knows about 'its' cloud.

    ``call_info`` is populated only inside a running function executor: the
    invocation params (executor/callset/call ids, storage location), which
    lets framework code running *as* the function — e.g. the shuffle map
    shim — address per-call COS objects.
    """

    environment: Any  # CloudEnvironment (untyped to avoid an import cycle)
    in_cloud: bool
    call_info: Optional[dict[str, Any]] = None
    #: the platform's ExecutionContext when inside a running function
    execution_context: Any = None


_ACTIVE: dict[int, list[AmbientContext]] = {}
_LOCK = threading.Lock()


def push_context(
    environment: Any,
    in_cloud: bool,
    call_info: Optional[dict[str, Any]] = None,
    execution_context: Any = None,
) -> None:
    ctx = AmbientContext(environment, in_cloud, call_info, execution_context)
    ident = threading.get_ident()
    with _LOCK:
        _ACTIVE.setdefault(ident, []).append(ctx)


def pop_context() -> None:
    ident = threading.get_ident()
    with _LOCK:
        stack = _ACTIVE.get(ident)
        if not stack:
            raise RuntimeError("pop_context() with no pushed context")
        stack.pop()
        if not stack:
            del _ACTIVE[ident]


def current_context() -> Optional[AmbientContext]:
    with _LOCK:
        stack = _ACTIVE.get(threading.get_ident())
        return stack[-1] if stack else None


def require_context() -> AmbientContext:
    ctx = current_context()
    if ctx is None:
        raise NoActiveEnvironmentError(
            "no active cloud environment on this thread; run client code "
            "through CloudEnvironment.run() or pass environment= explicitly"
        )
    return ctx


# ---------------------------------------------------------------------------
# Propagation into spawned kernel tasks: a task spawned from a thread with
# an active environment inherits it (so client code may fan out its own
# kernel tasks and still call ibm_cf_executor() inside them).
# ---------------------------------------------------------------------------
def _capture_stack() -> list[AmbientContext]:
    with _LOCK:
        return list(_ACTIVE.get(threading.get_ident(), []))


def _install_stack(stack: list[AmbientContext]) -> None:
    if not stack:
        return
    ident = threading.get_ident()
    with _LOCK:
        _ACTIVE.setdefault(ident, []).extend(stack)


def _uninstall_stack(stack: list[AmbientContext]) -> None:
    if not stack:
        return
    ident = threading.get_ident()
    with _LOCK:
        current = _ACTIVE.get(ident, [])
        del current[len(current) - len(stack):]
        if not current:
            _ACTIVE.pop(ident, None)


from repro.vtime.kernel import register_context_propagator  # noqa: E402

register_context_propagator(_capture_stack, _install_stack, _uninstall_stack)
