"""Textual progress bar for ``get_result`` (§4.2).

"[get_result] adds new functionality such as ... a progress bar to inform
users about the % of task completion."  Rendering is plain ``\\r`` updates;
disabled by default so tests and benchmarks stay quiet.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO


class ProgressBar:
    """Renders ``[#####....] done/total`` as completion advances."""

    WIDTH = 30

    def __init__(
        self, total: int, enabled: bool = True, stream: Optional[TextIO] = None
    ) -> None:
        self.total = max(0, total)
        self.enabled = enabled and self.total > 0
        self.stream = stream if stream is not None else sys.stdout
        self._last_done = -1
        self._last_postfix = ""
        self._closed = False

    def update(self, done: int, postfix: str = "") -> None:
        """Redraw; ``postfix`` appends e.g. a retry counter after the bar."""
        if not self.enabled or self._closed:
            return
        if done == self._last_done and postfix == self._last_postfix:
            return
        self._last_done = done
        self._last_postfix = postfix
        filled = int(self.WIDTH * done / self.total)
        bar = "#" * filled + "." * (self.WIDTH - filled)
        pct = 100.0 * done / self.total
        self.stream.write(f"\r[{bar}] {done}/{self.total} ({pct:5.1f}%){postfix}")
        self.stream.flush()

    def close(self) -> None:
        if self.enabled and not self._closed:
            self.stream.write("\n")
            self.stream.flush()
        self._closed = True

    def __enter__(self) -> "ProgressBar":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
