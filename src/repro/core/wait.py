"""The ``wait()`` API method (§4.2).

Three unlock policies, verbatim from the paper:

1. ``ALWAYS`` — check once whether results are available and return
   immediately either way;
2. ``ANY_COMPLETED`` — resume as soon as at least one invocation finished;
3. ``ALL_COMPLETED`` — resume when every result is available in COS.

Completion is discovered with one LIST request per callset per polling
round, not one HEAD per future, which is what makes waiting on thousands of
futures cheap.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro import vtime
from repro.core.errors import ResultTimeoutError
from repro.core.futures import ALL_COMPLETED, ALWAYS, ANY_COMPLETED, ResponseFuture
from repro.core.storage_client import InternalStorage

__all__ = ["wait", "ALWAYS", "ANY_COMPLETED", "ALL_COMPLETED"]


def _poll_round(
    futures: Sequence[ResponseFuture], storage: InternalStorage
) -> None:
    """Mark futures whose status objects now exist (one LIST per callset)."""
    pending_by_callset: dict[tuple[str, str], list[ResponseFuture]] = {}
    for future in futures:
        if not _is_done(future):
            key = (future.executor_id, future.callset_id)
            pending_by_callset.setdefault(key, []).append(future)
    for (executor_id, callset_id), group in pending_by_callset.items():
        done_ids = storage.list_done_call_ids(executor_id, callset_id)
        for future in group:
            if future.call_id in done_ids:
                future.mark_done()


def _is_done(future: ResponseFuture) -> bool:
    return future._status is not None or getattr(future, "_status_seen", False)


def wait(
    futures: Iterable[ResponseFuture],
    storage: Optional[InternalStorage] = None,
    return_when: int = ALL_COMPLETED,
    poll_interval: float = 1.0,
    timeout: Optional[float] = None,
    on_progress=None,
    lost_detector=None,
    on_round=None,
) -> tuple[list[ResponseFuture], list[ResponseFuture]]:
    """Wait on futures; returns the 2-tuple ``(done, not_done)`` of §4.2.

    ``storage`` defaults to the binding of the first future.  ``timeout``
    bounds the blocking policies and raises :class:`ResultTimeoutError`.
    ``on_progress(done_count, total)`` is called once per polling round —
    ``get_result`` drives its progress bar with it.

    ``lost_detector(not_done)`` is called once per polling round with the
    still-pending futures.  The executor hooks its lost-call recovery in
    here: activations that died without writing a status object get
    re-invoked (or declared dead), otherwise ``ALL_COMPLETED`` would block
    forever on a crashed container.

    ``on_round(futures)`` is called right after each polling round, before
    the unlock policy is evaluated.  The executor hooks client-crash chaos
    checks (it may raise) and event-journal status observation in here.
    """
    futures = list(futures)
    if not futures:
        return [], []
    if storage is None:
        bound = next((f for f in futures if f.bound), None)
        if bound is None:
            raise RuntimeError("wait() needs bound futures or an explicit storage")
        storage = bound._storage
    for future in futures:
        if not future.bound:
            future.bind(storage, poll_interval)

    deadline = None if timeout is None else vtime.now() + timeout
    while True:
        _poll_round(futures, storage)
        if on_round is not None:
            on_round(futures)
        done = [f for f in futures if _is_done(f)]
        not_done = [f for f in futures if not _is_done(f)]
        if on_progress is not None:
            on_progress(len(done), len(futures))
        if return_when == ALWAYS:
            return done, not_done
        if return_when == ANY_COMPLETED and done:
            return done, not_done
        if return_when == ALL_COMPLETED and not not_done:
            return done, not_done
        if deadline is not None and vtime.now() >= deadline:
            raise ResultTimeoutError(
                f"wait() timed out with {len(not_done)} of "
                f"{len(futures)} futures unfinished"
            )
        if lost_detector is not None:
            lost_detector(not_done)
        vtime.sleep(poll_interval)
