"""Runtime-compatibility checking for shipped functions.

A function serialized by value re-imports its modules *inside the runtime
container* (§3.1): if the user's code needs ``matplotlib`` but the selected
runtime image does not carry it, the real framework fails remotely with an
``ImportError`` after paying an invocation.  We fail fast on the client by
statically collecting the modules a function references and checking them
against the runtime image's package list — exactly the constraint that
motivates the paper's custom-runtime feature.
"""

from __future__ import annotations

import sys
import types
from typing import Iterable

from repro.core.errors import PyWrenError
from repro.faas.runtime import RuntimeImage

#: modules assumed present in every runner (the framework ships itself)
ALWAYS_AVAILABLE = {"repro"}

_STDLIB = set(getattr(sys, "stdlib_module_names", ()))


class RuntimePackageError(PyWrenError):
    """The function needs packages the selected runtime does not carry."""


def _code_names(code: types.CodeType, seen: set[int]) -> set[str]:
    if id(code) in seen:
        return set()
    seen.add(id(code))
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _code_names(const, seen)
    return names


def referenced_modules(fn: types.FunctionType, _depth: int = 0) -> set[str]:
    """Top-level module names a function (transitively) references.

    Collected from (a) module objects in the function's captured globals
    and (b) global names that resolve to live modules in this process
    (covers ``import x`` statements inside the body).  Heuristic by design:
    it can miss dynamic imports, and only ever *flags* names that really
    are importable modules here, so false positives are rare.
    """
    if not isinstance(fn, types.FunctionType) or _depth > 3:
        return set()
    seen_codes: set[int] = set()
    names = _code_names(fn.__code__, seen_codes)
    modules: set[str] = set()
    for name in names:
        value = fn.__globals__.get(name)
        if isinstance(value, types.ModuleType):
            modules.add(value.__name__.split(".")[0])
        elif isinstance(value, types.FunctionType) and value is not fn:
            modules |= referenced_modules(value, _depth + 1)
        elif value is None and name in sys.modules:
            # an `import name` inside the function body
            modules.add(name.split(".")[0])
    if fn.__closure__ is not None:
        for cell in fn.__closure__:
            try:
                content = cell.cell_contents
            except ValueError:
                continue
            if isinstance(content, types.ModuleType):
                modules.add(content.__name__.split(".")[0])
            elif isinstance(content, types.FunctionType) and content is not fn:
                modules |= referenced_modules(content, _depth + 1)
    return modules


def missing_packages(fn: types.FunctionType, image: RuntimeImage) -> list[str]:
    """Modules ``fn`` needs that ``image`` does not provide."""
    missing = []
    for module in sorted(referenced_modules(fn)):
        if module in _STDLIB or module in ALWAYS_AVAILABLE:
            continue
        if module.startswith("_"):
            continue
        if not image.has_package(module):
            missing.append(module)
    return missing


def validate_runtime(fn: types.FunctionType, image: RuntimeImage) -> None:
    """Raise :class:`RuntimePackageError` when ``fn`` cannot run on ``image``.

    The error message points at the fix the paper prescribes: build a
    custom runtime with the packages and share it via the registry.
    """
    missing = missing_packages(fn, image)
    if missing:
        raise RuntimePackageError(
            f"function {getattr(fn, '__name__', fn)!r} needs packages "
            f"{missing} not present in runtime {image.name!r}; build a "
            "custom runtime with registry.build_custom_runtime(...) and "
            "pass runtime=<name> to the executor (see §3.1)"
        )
