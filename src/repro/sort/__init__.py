"""Serverless sorting algorithms built on dynamic composition."""

from repro.sort.mergesort import (
    local_mergesort,
    merge,
    serverless_mergesort,
)

__all__ = ["merge", "local_mergesort", "serverless_mergesort"]
