"""Serverless mergesort via nested parallelism (§4.4/§6.3).

The recursion tree of mergesort is mapped onto a *function* tree of
configurable depth ``d``: leaves sort their slice locally, interior nodes
merge their children's sorted halves.  "In order to amortize the overhead
of function spawning, it is better off to execute part of the tree of
recursive calls within each function" — ``depth`` is exactly that knob.

The tree runs as an explicit DAG (:mod:`repro.dag`): every node is its
own activation and each merge is invoked the moment *its* two children
finish — merges in one subtree proceed while a slow sibling subtree is
still sorting, with no client-side barrier per tree level.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.futures import ResponseFuture


def merge(left: list[Any], right: list[Any]) -> list[Any]:
    """Classic two-way merge of sorted lists."""
    out: list[Any] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def local_mergesort(array: Sequence[Any]) -> list[Any]:
    """Plain recursive mergesort (the in-function leaf work)."""
    n = len(array)
    if n <= 1:
        return list(array)
    mid = n // 2
    return merge(local_mergesort(array[:mid]), local_mergesort(array[mid:]))


def _merge_pair(results: list[list[Any]]) -> list[Any]:
    """Merge node: receives the two children's sorted lists, in order."""
    left, right = results
    return merge(left, right)


def serverless_mergesort(
    array: Sequence[Any], depth: int = 2, executor=None
) -> ResponseFuture:
    """Sort ``array`` with a function tree of the given ``depth``.

    Non-blocking: returns the root future.  ``depth=0`` runs one function
    that sorts everything; ``depth=d`` spawns up to ``2**d`` leaf
    functions plus one merge function per interior tree node.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if executor is None:
        import repro

        executor = repro.ibm_cf_executor()
    from repro.dag import DagBuilder, DagScheduler

    builder = DagBuilder()

    def build(arr: list[Any], d: int):
        if d <= 0 or len(arr) <= 1:
            node = builder.call(
                local_mergesort, arr, name=f"sort[{len(arr)}]", stage="sort"
            )
            return node, 0
        mid = len(arr) // 2
        left, left_height = build(arr[:mid], d - 1)
        right, right_height = build(arr[mid:], d - 1)
        height = max(left_height, right_height) + 1
        node = builder.reduce(
            _merge_pair,
            [left, right],
            name=f"merge[{len(arr)}]",
            stage=f"merge{height}",
        )
        return node, height

    root, _ = build(list(array), depth)
    run = DagScheduler(executor).submit(builder.build())
    return run.expose(root)
