"""Serverless mergesort via nested parallelism (§4.4/§6.3).

The recursion tree of mergesort is mapped onto a *function* tree of
configurable depth ``d``: a function at depth < d spawns two child
functions for its halves (through a nested executor — §4.4's dynamic
composability), while a function at depth d sorts its slice locally.
"In order to amortize the overhead of function spawning, it is better off
to execute part of the tree of recursive calls within each function" —
``depth`` is exactly that knob.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.futures import ResponseFuture


def merge(left: list[Any], right: list[Any]) -> list[Any]:
    """Classic two-way merge of sorted lists."""
    out: list[Any] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def local_mergesort(array: Sequence[Any]) -> list[Any]:
    """Plain recursive mergesort (the in-function leaf work)."""
    n = len(array)
    if n <= 1:
        return list(array)
    mid = n // 2
    return merge(local_mergesort(array[:mid]), local_mergesort(array[mid:]))


def _mergesort_task(payload: dict[str, Any]) -> list[Any]:
    """One node of the function tree; runs inside a cloud function."""
    array: list[Any] = payload["array"]
    depth: int = payload["depth"]
    if depth <= 0 or len(array) <= 1:
        return local_mergesort(array)
    import repro

    executor = repro.ibm_cf_executor()
    mid = len(array) // 2
    futures = executor.map(
        _mergesort_task,
        [
            {"array": array[:mid], "depth": depth - 1},
            {"array": array[mid:], "depth": depth - 1},
        ],
    )
    left, right = executor.get_result(futures)
    return merge(left, right)


def serverless_mergesort(
    array: Sequence[Any], depth: int = 2, executor=None
) -> ResponseFuture:
    """Sort ``array`` with a function tree of the given ``depth``.

    Non-blocking: returns the root future.  ``depth=0`` runs one function
    that sorts everything; ``depth=d`` spawns ``2**d`` leaf functions.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if executor is None:
        import repro

        executor = repro.ibm_cf_executor()
    return executor.call_async(_mergesort_task, {"array": list(array), "depth": depth})
