"""A minimal IBM Watson Studio stand-in.

§4: "IBM Cloud contains a service called IBM Watson Studio that, among
other things, allows to create and execute notebooks in the cloud, where
IBM-PyWren can be very easily imported to run embarrassingly parallel
jobs."  §6.4's sequential baseline ran on such a notebook (a 4 vCPU /
16 GB VM).

We model the two things the paper uses:

* a **notebook**: an ordered list of cells executed sequentially in a
  shared namespace, each cell timed on the virtual clock, with
  IBM-PyWren available (the notebook runs inside the cloud environment);
* the **VM it runs on**: a fixed hardware configuration used by cost
  models of sequential (non-serverless) compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import vtime
from repro.core import context as ambient


@dataclass
class VMConfig:
    """The notebook VM's hardware (paper: '4vCPU with 16GB of RAM')."""

    vcpus: int = 4
    memory_gb: int = 16


@dataclass
class Cell:
    """One executed notebook cell."""

    index: int
    label: str
    output: Any = None
    error: Optional[str] = None
    started: float = 0.0
    finished: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished - self.started

    @property
    def ok(self) -> bool:
        return self.error is None


class Notebook:
    """A sequentially-executed notebook bound to a cloud environment.

    Cells are Python callables taking the shared namespace dict.  Create
    via :meth:`WatsonStudio.create_notebook`; execute inside ``env.run``
    (or let :meth:`run` wrap the environment when called from outside).
    """

    def __init__(self, environment, name: str, vm: Optional[VMConfig] = None) -> None:
        self.environment = environment
        self.name = name
        self.vm = vm or VMConfig()
        self.namespace: dict[str, Any] = {}
        self._pending: list[tuple[str, Callable[[dict[str, Any]], Any]]] = []
        self.cells: list[Cell] = []

    def add_cell(
        self, fn: Callable[[dict[str, Any]], Any], label: Optional[str] = None
    ) -> "Notebook":
        """Append a cell; returns self for chaining."""
        self._pending.append((label or fn.__name__, fn))
        return self

    def run(self) -> list[Cell]:
        """Execute all pending cells in order; stops at the first error.

        Callable from inside ``env.run`` (ambient environment present) or
        from the outside, in which case it drives the environment itself.
        """
        if ambient.current_context() is not None:
            return self._run_cells()
        return self.environment.run(self._run_cells)

    def _run_cells(self) -> list[Cell]:
        while self._pending:
            label, fn = self._pending.pop(0)
            cell = Cell(index=len(self.cells), label=label, started=vtime.now())
            try:
                cell.output = fn(self.namespace)
            except Exception as exc:  # noqa: BLE001 - notebook surfaces errors
                cell.error = repr(exc)
            cell.finished = vtime.now()
            self.cells.append(cell)
            if cell.error is not None:
                break
        return list(self.cells)

    def report(self) -> str:
        """nbconvert-style plain-text summary of the executed cells."""
        lines = [f"Notebook: {self.name}  (VM: {self.vm.vcpus} vCPU, "
                 f"{self.vm.memory_gb} GB RAM)"]
        for cell in self.cells:
            status = "ok" if cell.ok else f"ERROR {cell.error}"
            lines.append(
                f"  [{cell.index}] {cell.label:<24} {cell.duration:9.1f}s  {status}"
            )
        total = sum(c.duration for c in self.cells)
        lines.append(f"  total: {total:.1f}s over {len(self.cells)} cells")
        return "\n".join(lines)


class WatsonStudio:
    """The notebook service facade."""

    def __init__(self, environment) -> None:
        self.environment = environment
        self._notebooks: dict[str, Notebook] = {}

    def create_notebook(
        self, name: str, vcpus: int = 4, memory_gb: int = 16
    ) -> Notebook:
        if name in self._notebooks:
            raise ValueError(f"notebook {name!r} already exists")
        notebook = Notebook(
            self.environment, name, VMConfig(vcpus=vcpus, memory_gb=memory_gb)
        )
        self._notebooks[name] = notebook
        return notebook

    def get_notebook(self, name: str) -> Notebook:
        return self._notebooks[name]

    def list_notebooks(self) -> list[str]:
        return sorted(self._notebooks)
