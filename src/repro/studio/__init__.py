"""Watson-Studio-style notebook environment (§4's integration target)."""

from repro.studio.notebook import Cell, Notebook, WatsonStudio

__all__ = ["WatsonStudio", "Notebook", "Cell"]
