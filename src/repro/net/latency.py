"""Latency models.

The paper's §5.1/§6.1 numbers hinge on the difference between a client in a
*high-latency* network (their lab in Tarragona talking to IBM US-South) and
code running *inside* the cloud.  We model a link by a base round-trip time,
a jitter fraction, and a transient-failure probability (failed requests are
retried by callers, which is exactly how higher latency "turns into more
invocation failures, which further increase the total invocation time").
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class TransientNetworkError(Exception):
    """A request was lost/refused; the caller is expected to retry."""


@dataclass(frozen=True)
class LatencyModel:
    """Samples per-request round-trip latencies.

    Attributes:
        rtt: base round-trip time in seconds.
        jitter: fraction of ``rtt`` used as the +/- uniform jitter bound.
        failure_prob: probability that a request fails transiently.
    """

    rtt: float
    jitter: float = 0.1
    failure_prob: float = 0.0
    name: str = "custom"

    def sample_rtt(self, rng: random.Random) -> float:
        """One latency sample (never negative)."""
        if self.jitter <= 0:
            return self.rtt
        spread = self.rtt * self.jitter
        return max(0.0, self.rtt + rng.uniform(-spread, spread))

    def sample_failure(self, rng: random.Random) -> bool:
        """Whether this request transiently fails."""
        return self.failure_prob > 0 and rng.random() < self.failure_prob

    # ------------------------------------------------------------------
    # Profiles used throughout the reproduction (calibrated in DESIGN.md §5)
    # ------------------------------------------------------------------
    @staticmethod
    def wan() -> "LatencyModel":
        """Client in a remote high-latency network (paper's default client)."""
        return LatencyModel(rtt=0.220, jitter=0.15, failure_prob=0.02, name="wan")

    @staticmethod
    def lan() -> "LatencyModel":
        """Client inside IBM's low-latency internal network."""
        return LatencyModel(rtt=0.004, jitter=0.25, failure_prob=0.0, name="lan")

    @staticmethod
    def in_cloud() -> "LatencyModel":
        """Function-to-service latency inside the cloud data center."""
        return LatencyModel(rtt=0.004, jitter=0.25, failure_prob=0.0, name="in-cloud")
