"""Network latency/bandwidth models used by the emulated cloud."""

from repro.net.latency import LatencyModel, TransientNetworkError
from repro.net.link import NetworkLink

__all__ = ["LatencyModel", "NetworkLink", "TransientNetworkError"]
