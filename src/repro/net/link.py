"""A network link that charges virtual time for requests and transfers."""

from __future__ import annotations

import random
import threading
from typing import Optional

from repro.net.latency import LatencyModel, TransientNetworkError
from repro.vtime import Kernel
from repro.vtime.kernel import vsleep

# Default service bandwidth seen by one flow (COS single-stream throughput).
DEFAULT_BANDWIDTH_BPS = 100 * 1024 * 1024  # 100 MiB/s


class NetworkLink:
    """Models one endpoint's path to a cloud service.

    Every request costs one sampled RTT plus payload-size / bandwidth.
    Transient failures raise :class:`TransientNetworkError` *after* the RTT
    has been paid (the request had to travel to fail).  A link is cheap;
    components create one per (endpoint, latency-profile) pair.
    """

    def __init__(
        self,
        kernel: Kernel,
        latency: LatencyModel,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        seed: int = 0,
        chaos=None,
        tracer=None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        self.kernel = kernel
        self.latency = latency
        self.bandwidth_bps = float(bandwidth_bps)
        self.seed = seed
        #: optional :class:`repro.chaos.ChaosPlane` degrading this link
        self.chaos = chaos
        #: optional :class:`repro.trace.Tracer` receiving ``net.request`` spans
        self.tracer = tracer
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._requests = 0
        self._failures = 0
        self._bytes_moved = 0

    # -- statistics ------------------------------------------------------
    @property
    def requests(self) -> int:
        return self._requests

    @property
    def failures(self) -> int:
        return self._failures

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved

    # -- behaviour ---------------------------------------------------------
    def request(self, payload_bytes: int = 0, allow_failure: bool = True) -> None:
        """Charge virtual time for one round trip moving ``payload_bytes``.

        Blocking wrapper over :meth:`request_steps` (thread tasks only).
        """
        self.kernel.drive(self.request_steps(payload_bytes, allow_failure))

    def request_steps(self, payload_bytes: int = 0, allow_failure: bool = True):
        """One round trip as a steps generator (model tasks ``yield from``).

        All RNG draws happen up front under the link lock — exactly the
        blocking path's draw order — then the latency is paid via kernel
        ops, so a transfer in flight holds no OS thread.
        """
        with self._rng_lock:
            rtt = self.latency.sample_rtt(self._rng)
            fails = allow_failure and self.latency.sample_failure(self._rng)
            if self.chaos is not None:
                # chaos draws come from the plane's own streams, keyed by
                # (link seed, request index): the link's RNG is untouched
                factor, drop = self.chaos.link_degradation(
                    self.seed, self._requests
                )
                rtt *= factor
                if allow_failure and drop and not fails:
                    fails = True
                    self.chaos.record(
                        self.kernel.now(), "link", "drop",
                        f"link-{self.seed}#{self._requests}",
                    )
            self._requests += 1
            if fails:
                self._failures += 1
            else:
                self._bytes_moved += payload_bytes
        tracer = self.tracer
        t0 = self.kernel.now() if tracer is not None and tracer.enabled else None
        yield vsleep(rtt)
        if fails:
            if t0 is not None:
                tracer.span_at(
                    "net.request", "net", t0, self.kernel.now(),
                    bytes=payload_bytes, failed=True, profile=self.latency.name,
                )
            raise TransientNetworkError(
                f"transient failure on {self.latency.name} link"
            )
        if payload_bytes > 0:
            yield vsleep(payload_bytes / self.bandwidth_bps)
        if t0 is not None:
            tracer.span_at(
                "net.request", "net", t0, self.kernel.now(),
                bytes=payload_bytes, failed=False, profile=self.latency.name,
            )

    def request_with_retries(
        self,
        payload_bytes: int = 0,
        retries: int = 5,
        backoff: float = 1.0,
    ) -> int:
        """Like :meth:`request` but retrying transient failures.

        Returns the number of attempts made.  Mirrors the retry loop the
        paper attributes the extra WAN invocation time to.
        """
        return self.kernel.drive(
            self.request_with_retries_steps(payload_bytes, retries, backoff)
        )

    def request_with_retries_steps(
        self,
        payload_bytes: int = 0,
        retries: int = 5,
        backoff: float = 1.0,
    ):
        """Steps twin of :meth:`request_with_retries`."""
        attempts = 0
        while True:
            attempts += 1
            try:
                yield from self.request_steps(payload_bytes)
                return attempts
            except TransientNetworkError:
                if attempts > retries:
                    raise
                yield vsleep(backoff)

    def transfer_time(self, payload_bytes: int) -> float:
        """Pure bandwidth cost (no RTT) for ``payload_bytes``, in seconds."""
        return payload_bytes / self.bandwidth_bps

    def fork(self, seed_offset: int) -> "NetworkLink":
        """A link with identical parameters but an independent RNG stream."""
        return NetworkLink(
            self.kernel,
            self.latency,
            self.bandwidth_bps,
            seed=seed_offset * 7919 + 13,
            chaos=self.chaos,
            tracer=self.tracer,
        )
