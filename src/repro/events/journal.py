"""The durable event journal: append-once backends + the client-side writer.

Two backends, selected by ``EventsConfig.backend``:

``cos``
    One COS object per record at ``{prefix}/{executor_id}/journal/
    {seq:08d}.json``, written with a conditional PUT (``If-None-Match:
    *``) — the same at-most-once primitive status commits use — so the
    log is append-once: a second driver racing for a slot loses loudly
    (:class:`JournalConflictError`) instead of corrupting history.
    Replay is one LIST plus one GET per record.

``mq``
    One message per record on a dedicated broker queue
    (``events-{executor_id}``).  Appends are cheaper (one publish vs a
    WAN PUT) but the queue offers no compare-and-set, so the COS backend
    is the default where crash-consistency matters most.  Replay browses
    the queue without consuming it.

``EventsConfig.mirror_to_mq`` combines them: COS stays the durable
source of truth, and each record is additionally published to the MQ
queue so live observers can tail the log push-style.

The :class:`EventJournal` assigns contiguous sequence numbers under a
lock and stamps each record with the virtual time of the append.  All
appends happen from client-side driver code at points that are
serialized by the virtual-time kernel, which is what makes two
same-seed runs produce byte-identical logs (the property the resume
tests pin).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.core.errors import PyWrenError
from repro.events.records import EventRecord, to_jsonl

EVENTS_QUEUE_PREFIX = "events-"


class JournalConflictError(PyWrenError):
    """Two writers raced for the same journal slot; this append lost.

    Seeing this means another driver owns (or owned) the journal —
    e.g. a presumed-dead client came back while its replacement was
    already appending.  The loser must stop writing and re-read the log.
    """


class COSJournalBackend:
    """Append-once object log in COS (the durable default)."""

    def __init__(self, storage: Any, executor_id: str) -> None:
        self.storage = storage
        self.executor_id = executor_id

    def append(self, seq: int, text: str) -> None:
        if not self.storage.append_journal_record(self.executor_id, seq, text):
            raise JournalConflictError(
                f"journal slot {seq} of {self.executor_id} is already "
                "written — another driver owns this log"
            )

    def replay(self) -> list[EventRecord]:
        records = []
        for seq in self.storage.list_journal_seqs(self.executor_id):
            text = self.storage.get_journal_record(self.executor_id, seq)
            if text is not None:
                records.append(EventRecord.from_json(text))
        return records


class MQJournalBackend:
    """Event stream on a broker queue (cheap appends, browse-to-replay)."""

    def __init__(self, mq: Any, executor_id: str) -> None:
        self.mq = mq
        self.executor_id = executor_id
        self.queue = EVENTS_QUEUE_PREFIX + executor_id
        self.mq.declare_queue(self.queue)

    def append(self, seq: int, text: str) -> None:
        self.mq.publish(self.queue, text)

    def replay(self) -> list[EventRecord]:
        records = [EventRecord.from_json(text) for text in self.mq.browse(self.queue)]
        records.sort(key=lambda r: r.seq)
        return records


class EventJournal:
    """The driver's handle on its orchestration log.

    Owns the sequence counter, stamps virtual time, traces every append
    on the ``events`` layer, and optionally mirrors records to the MQ
    plane.  One journal per (external) executor; in-cloud executors
    never journal — the client is the single writer.
    """

    def __init__(
        self,
        backend: Any,
        executor_id: str,
        kernel: Any,
        tracer: Any = None,
        mirror: Optional[MQJournalBackend] = None,
        start_seq: int = 0,
        alive: Any = None,
    ) -> None:
        self.backend = backend
        self.executor_id = executor_id
        self.kernel = kernel
        self.tracer = tracer
        self.mirror = mirror
        self._seq = start_seq
        self._lock = threading.Lock()
        #: liveness predicate — a driver killed by client-crash chaos stops
        #: writing: a dead process's appends simply never happen, they must
        #: not race the adopter for journal slots
        self.alive = alive
        #: records appended by *this* process, in order (replay reads the
        #: backend instead and also sees a predecessor's records)
        self.appended: list[EventRecord] = []

    def append(self, kind: str, **data: Any) -> Optional[EventRecord]:
        """Durably append one event; returns the stored record.

        Returns ``None`` without writing when this driver is already dead
        (client-crash chaos): whatever the doomed process was about to log
        is exactly the state the resume protocol must live without.
        """
        if self.alive is not None and not self.alive():
            return None
        with self._lock:
            seq = self._seq
            self._seq += 1
            record = EventRecord(seq=seq, t=self.kernel.now(), kind=kind, data=data)
        # The backend PUT spends *virtual* time; it must happen outside
        # the slot lock.  The kernel only advances the clock when every
        # task is parked in a kernel-aware wait — a second writer stuck
        # on this (real) lock would freeze the very clock the PUT needs.
        text = record.to_json()
        self.backend.append(seq, text)
        if self.mirror is not None:
            self.mirror.append(seq, text)
        with self._lock:
            self.appended.append(record)
            self.appended.sort(key=lambda r: r.seq)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.point(
                "events.append", layer="events", kind=kind, seq=seq, bytes=len(text)
            )
        return record

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._seq

    def replay(self) -> list[EventRecord]:
        """Re-read the whole log from the backend, ascending by seq."""
        records = self.backend.replay()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.point(
                "events.replay", layer="events", n=len(records)
            )
        return records

    def export_jsonl(self) -> str:
        """The locally-appended records as canonical JSONL."""
        return to_jsonl(self.appended)

    # -- construction --------------------------------------------------------
    @classmethod
    def for_executor(cls, executor: Any, start_seq: int = 0) -> "EventJournal":
        """Build the journal an executor's config asks for."""
        cfg = executor.config.events
        backend: Any
        mirror: Optional[MQJournalBackend] = None
        if cfg.backend == "mq":
            backend = MQJournalBackend(
                executor.environment.mq_client(in_cloud=False),
                executor.executor_id,
            )
        else:
            backend = COSJournalBackend(executor._storage, executor.executor_id)
            if cfg.mirror_to_mq:
                mirror = MQJournalBackend(
                    executor.environment.mq_client(in_cloud=False),
                    executor.executor_id,
                )
        chaos = getattr(executor.environment, "chaos", None)
        alive = None
        if chaos is not None:
            kernel = executor.kernel

            def alive() -> bool:
                # read the epoch through the executor so a journal built
                # before reattach sees the adopter's new epoch
                return not chaos.client_dead(
                    executor._chaos_epoch, kernel.now()
                )

        return cls(
            backend,
            executor.executor_id,
            executor.kernel,
            tracer=getattr(executor.environment, "tracer", None),
            mirror=mirror,
            start_seq=start_seq,
            alive=alive,
        )

    @classmethod
    def replay_for(cls, executor: Any) -> list[EventRecord]:
        """Replay an executor id's log without constructing a live journal."""
        cfg = executor.config.events
        if cfg.backend == "mq":
            backend: Any = MQJournalBackend(
                executor.environment.mq_client(in_cloud=False),
                executor.executor_id,
            )
        else:
            backend = COSJournalBackend(executor._storage, executor.executor_id)
        return backend.replay()
