"""Event records: the deterministic unit the orchestration journal stores.

Every externally-visible executor/DAG transition is appended to the
journal as one :class:`EventRecord` — a ``(seq, t, kind, data)`` tuple
with a canonical JSON form.  Canonical means *byte-stable*: keys sorted,
no whitespace, floats via ``repr`` round-trip — so two same-seed runs of
the same workload produce byte-identical journals, which is the
regression oracle the resume tests pin.

Record payloads (``data``) are plain JSON values only; anything that
needs pickling (functions, payload blobs) stays in COS where the normal
execution record already keeps it — the journal stores *references*
(bucket/key/call ids), never code or data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EventRecord",
    "to_jsonl",
    "from_jsonl",
    # event kinds
    "EXECUTOR_CREATED",
    "JOB_SUBMITTED",
    "CALLS_INVOKED",
    "FUTURES_EXPOSED",
    "DAG_SUBMITTED",
    "NODE_FIRED",
    "NODE_BURIED",
    "STATUS_OBSERVED",
    "RESULTS_COLLECTED",
    "DEADLETTER_PERSISTED",
    "RESUME_STARTED",
    "RESUME_RECONCILED",
]

# -- event kinds -----------------------------------------------------------
#: a new executor (driver) came up and owns this journal
EXECUTOR_CREATED = "executor.created"
#: a callset was serialized + uploaded: carries every call's params dict
JOB_SUBMITTED = "job.submitted"
#: invocations were issued for a callset (activation ids per call)
CALLS_INVOKED = "calls.invoked"
#: futures became user-visible results, in exposure order
FUTURES_EXPOSED = "futures.exposed"
#: a DAG was submitted: node -> dependency edges (the trigger rules)
DAG_SUBMITTED = "dag.submitted"
#: trigger rule fired: dependent node(s) invoked
NODE_FIRED = "node.fired"
#: node buried after an upstream terminal failure
NODE_BURIED = "node.buried"
#: the driver observed committed status objects in COS
STATUS_OBSERVED = "status.observed"
#: get_result finished collecting a set of futures
RESULTS_COLLECTED = "results.collected"
#: a FailureReport dead-letter object was written
DEADLETTER_PERSISTED = "deadletter.persisted"
#: a replacement driver adopted this journal (reattach)
RESUME_STARTED = "resume.started"
#: reattach reconciled the replayed log against committed COS statuses
RESUME_RECONCILED = "resume.reconciled"


@dataclass(frozen=True)
class EventRecord:
    """One journaled orchestration transition."""

    #: position in the log; contiguous from 0, assigned by the journal
    seq: int
    #: virtual time of the append
    t: float
    #: event kind (one of the module constants)
    kind: str
    #: JSON-safe payload
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical (byte-stable) one-line JSON form."""
        return json.dumps(
            {"seq": self.seq, "t": self.t, "kind": self.kind, "data": self.data},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "EventRecord":
        raw = json.loads(text)
        return cls(
            seq=int(raw["seq"]),
            t=float(raw["t"]),
            kind=str(raw["kind"]),
            data=dict(raw.get("data") or {}),
        )


def to_jsonl(records: list[EventRecord]) -> str:
    """The journal as JSONL text, one canonical line per record."""
    return "".join(record.to_json() + "\n" for record in records)


def from_jsonl(text: str) -> list[EventRecord]:
    return [
        EventRecord.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]
