"""Trigger rules evaluated from the event log, not in-memory watcher state.

A :class:`TriggerRule` is the journal's representation of one DAG edge
set: *"when all N dependency statuses commit successfully, fire the
target call"*.  The :class:`TriggerEngine` keeps the materialized view —
which calls have committed (and whether they succeeded), which rules
have fired — and can be rebuilt at any time by folding the journal's
``dag.submitted`` / ``status.observed`` / ``node.fired`` records, which
is exactly what the resume path does after a client crash.

Calls are identified by ``(callset_id, call_id)`` pairs within one
executor's namespace (the journal is per-executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

CallKey = tuple[str, str]


@dataclass(frozen=True)
class TriggerRule:
    """Fire ``target`` once every dependency has committed successfully."""

    target: CallKey
    deps: tuple[CallKey, ...]


class TriggerEngine:
    """Materialized view of the journal's trigger state.

    ``note_commit`` folds in an observed status commit; ``ready()``
    yields the rules whose dependencies are now all satisfied and that
    have not fired yet.  Re-noting a key overwrites its success flag
    (a retried node commits again after its failed attempt's status
    objects were deleted).
    """

    def __init__(self) -> None:
        self._rules: dict[CallKey, TriggerRule] = {}
        self._committed: dict[CallKey, bool] = {}
        self._fired: set[CallKey] = set()

    # -- folding --------------------------------------------------------------
    def add_rule(self, target: CallKey, deps: Iterable[CallKey]) -> TriggerRule:
        rule = TriggerRule(target=tuple(target), deps=tuple(tuple(d) for d in deps))
        self._rules[rule.target] = rule
        return rule

    def note_commit(self, key: CallKey, success: bool) -> None:
        self._committed[tuple(key)] = bool(success)

    def mark_fired(self, target: CallKey) -> None:
        self._fired.add(tuple(target))

    # -- queries --------------------------------------------------------------
    def committed(self, key: CallKey) -> Optional[bool]:
        """``True``/``False`` once the call committed a status, else ``None``."""
        return self._committed.get(tuple(key))

    def fired(self, target: CallKey) -> bool:
        return tuple(target) in self._fired

    def rule_for(self, target: CallKey) -> Optional[TriggerRule]:
        return self._rules.get(tuple(target))

    def satisfied(self, target: CallKey) -> bool:
        """All of ``target``'s dependencies committed successfully."""
        rule = self._rules.get(tuple(target))
        if rule is None:
            return False
        return all(self._committed.get(dep) is True for dep in rule.deps)

    def blocked_by(self, target: CallKey) -> Optional[CallKey]:
        """A dependency that committed *unsuccessfully*, or ``None``.

        A blocked target can never fire; the scheduler buries it (and
        transitively its own dependents).
        """
        rule = self._rules.get(tuple(target))
        if rule is None:
            return None
        for dep in rule.deps:
            if self._committed.get(dep) is False:
                return dep
        return None

    def ready(self) -> list[TriggerRule]:
        """Rules whose deps are all satisfied, unfired, targets uncommitted."""
        out = []
        for target, rule in sorted(self._rules.items()):
            if target in self._fired or target in self._committed:
                continue
            if self.satisfied(target):
                out.append(rule)
        return out

    def pending(self) -> list[TriggerRule]:
        """Rules that have neither fired nor had their target commit."""
        return [
            rule
            for target, rule in sorted(self._rules.items())
            if target not in self._fired and target not in self._committed
        ]
