"""repro.events — durable event-sourced orchestration (ARCHITECTURE §12).

Everything the driver does that matters beyond its own process — jobs
submitted, calls invoked, statuses committed, DAG nodes fired or buried,
results collected — is appended to a durable journal as deterministic
:class:`EventRecord` entries.  Trigger rules ("when all N map statuses
commit, fire the reducer") are evaluated from the log through the
:class:`TriggerEngine`, so the workflow's control state survives the
client: after a crash, :func:`repro.events.resume.attach` (via
``FunctionExecutor.reattach(job_id)``) replays the journal, reconciles
against committed statuses in COS and completes the run with zero lost
work.

Off by default (``EventsConfig.enabled=False``): nothing here runs and
no request pattern changes unless the journal is switched on.
"""

from repro.events.journal import (
    COSJournalBackend,
    EventJournal,
    JournalConflictError,
    MQJournalBackend,
)
from repro.events.records import EventRecord, from_jsonl, to_jsonl
from repro.events.resume import CallEntry, JobLedger, ResumedJob, attach
from repro.events.triggers import TriggerEngine, TriggerRule

__all__ = [
    "EventRecord",
    "EventJournal",
    "COSJournalBackend",
    "MQJournalBackend",
    "JournalConflictError",
    "TriggerRule",
    "TriggerEngine",
    "JobLedger",
    "CallEntry",
    "ResumedJob",
    "attach",
    "to_jsonl",
    "from_jsonl",
]
