"""Resume: adopt an orphaned journaled job and finish it with zero lost work.

The protocol (``FunctionExecutor.reattach(job_id)`` / ``python -m repro
events resume``):

1. **Replay** the dead driver's journal into a :class:`JobLedger` — every
   call ever prepared (with its params, still referencing code and data
   durably in COS), every invocation issued, every trigger rule armed,
   every exposure.
2. **Reconcile** against COS: one LIST per callset finds the statuses
   that committed while nobody was watching.  Committed calls are final —
   PR 1's conditional status PUT means no replacement attempt can ever
   overwrite them, so *committed work is never re-executed*.
3. **Re-arm** the pending trigger rules in a fresh
   :class:`~repro.events.TriggerEngine` and keep driving rounds exactly
   like the DAG watcher: probe journaled activation ids through the
   executor's lost-call recovery, re-invoke calls whose activations are
   unknown or dead (safe: a surviving twin loses the conditional PUT),
   fire nodes whose dependencies are now all committed, bury the
   dependents of terminal failures.

The adopting executor *becomes* the dead driver: it takes over its
executor id, journal (appending after the replayed tail) and monitor
queue, and registers the journaled exposure order on ``futures`` so
``get_result()`` returns results in the exact shape the original client
was promised.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.errors import PyWrenError
from repro.events import records as ev
from repro.events.journal import EventJournal
from repro.events.records import EventRecord
from repro.events.triggers import CallKey, TriggerEngine
from repro.vtime import VEvent
from repro.vtime.kernel import vjoin, vsleep


@dataclass
class CallEntry:
    """Everything the journal knows about one call."""

    callset_id: str
    call_id: str
    params: dict[str, Any] = field(default_factory=dict)
    max_retries: int = 0
    #: attempts issued before the crash (0 = prepared but never invoked)
    invoke_count: int = 0
    #: last journaled activation id (``None`` for fire-and-forget invokers)
    activation_id: Optional[str] = None
    #: trigger dependencies (empty for plain calls and DAG roots)
    deps: tuple[CallKey, ...] = ()
    node_name: Optional[str] = None

    @property
    def key(self) -> CallKey:
        return (self.callset_id, self.call_id)

    @property
    def invoked(self) -> bool:
        return self.invoke_count > 0


class JobLedger:
    """The fold of a journal: calls, rules, exposures, observations."""

    def __init__(self) -> None:
        self.calls: dict[CallKey, CallEntry] = {}
        #: user-visible futures in exposure order
        self.exposed: list[CallKey] = []
        #: last advisory observation per call (COS remains ground truth)
        self.observed: dict[CallKey, Optional[bool]] = {}
        self.last_seq = -1
        self.resumes = 0
        self.records = 0

    def entry(self, key: CallKey) -> CallEntry:
        if key not in self.calls:
            self.calls[key] = CallEntry(callset_id=key[0], call_id=key[1])
        return self.calls[key]

    @classmethod
    def from_records(cls, records: list[EventRecord]) -> "JobLedger":
        ledger = cls()
        for record in records:
            ledger.last_seq = max(ledger.last_seq, record.seq)
            ledger.records += 1
            data = record.data
            if record.kind == ev.JOB_SUBMITTED:
                callset_id = data["callset_id"]
                retries = int(data.get("retries", 0))
                for params in data.get("calls", []):
                    entry = ledger.entry((callset_id, params["call_id"]))
                    entry.params = dict(params)
                    entry.max_retries = retries
            elif record.kind in (ev.CALLS_INVOKED, ev.NODE_FIRED):
                for cs, call_id, activation_id, attempt in data.get("calls", []):
                    entry = ledger.entry((cs, call_id))
                    entry.invoke_count = max(entry.invoke_count, int(attempt))
                    entry.activation_id = activation_id
            elif record.kind == ev.FUTURES_EXPOSED:
                for cs, call_id in data.get("calls", []):
                    key = (cs, call_id)
                    if key not in ledger.exposed:
                        ledger.exposed.append(key)
            elif record.kind == ev.DAG_SUBMITTED:
                for spec in data.get("nodes", []):
                    if spec.get("external") or not spec.get("deps"):
                        continue
                    cs, call_id = spec["call"]
                    entry = ledger.entry((cs, call_id))
                    entry.deps = tuple((d[0], d[1]) for d in spec["deps"])
                    entry.node_name = spec.get("name")
            elif record.kind == ev.STATUS_OBSERVED:
                for cs, call_id, success in data.get("calls", []):
                    ledger.observed[(cs, call_id)] = success
            elif record.kind == ev.NODE_BURIED:
                for cs, call_id in data.get("calls", []):
                    ledger.observed[(cs, call_id)] = False
            elif record.kind == ev.RESUME_STARTED:
                ledger.resumes += 1
        return ledger


def attach(executor, job_id: str) -> "ResumedJob":
    """Make ``executor`` adopt the journaled job ``job_id`` (see module doc)."""
    if executor.in_cloud:
        raise PyWrenError("reattach is a client-side (driver) operation")
    if not executor.config.events.enabled:
        raise PyWrenError(
            "reattach requires events.enabled=True — the journal is the "
            "only durable record of an orphaned job"
        )

    # A replacement driver is a *new* client epoch: client-crash chaos
    # only ever kills epoch 0, so the adopter is immune by construction.
    chaos = getattr(executor.environment, "chaos", None)
    if chaos is not None:
        executor._chaos_epoch = chaos.begin_new_client()

    previous_id = executor.executor_id
    executor.executor_id = job_id
    try:
        replayed = EventJournal.replay_for(executor)
    except BaseException:
        executor.executor_id = previous_id
        raise
    if not replayed:
        executor.executor_id = previous_id
        raise PyWrenError(f"no event journal found for job {job_id!r}")
    ledger = JobLedger.from_records(replayed)

    # Take over the dead driver's identity end to end: journal (appending
    # after the replayed tail), monitor queue (pre-crash workers already
    # published there), callset counter (new submissions must not collide)
    # and uploaded-function digests (skip redundant WAN uploads).
    executor.journal = EventJournal.for_executor(
        executor, start_seq=ledger.last_seq + 1
    )
    if executor._monitor_queue is not None:
        executor._monitor_queue = f"pywren-monitor-{job_id}"
        executor._mq.declare_queue(executor._monitor_queue)
    max_callset = -1
    for callset_id, _ in ledger.calls:
        match = re.match(r"^[A-Za-z]+(\d+)$", callset_id)
        if match:
            max_callset = max(max_callset, int(match.group(1)))
    executor._callset_seq = max_callset + 1
    for entry in ledger.calls.values():
        func_key = entry.params.get("func_key", "")
        match = re.search(r"funcs/([0-9a-f]+)\.pickle$", func_key)
        if match:
            executor._uploaded_funcs.add(match.group(1))

    executor.journal.append(
        ev.RESUME_STARTED,
        job_id=job_id,
        epoch=executor._chaos_epoch,
        events_replayed=ledger.records,
        resumes=ledger.resumes + 1,
    )

    watcher = ResumeWatcher(executor, ledger)
    return watcher.start()


class ResumeWatcher:
    """Drives an adopted job to completion, DAG-watcher style."""

    def __init__(self, executor, ledger: JobLedger) -> None:
        self.executor = executor
        self.kernel = executor.kernel
        self.ledger = ledger
        self.poll_interval = executor.config.poll_interval
        self.engine = TriggerEngine()
        for entry in ledger.calls.values():
            if entry.deps:
                self.engine.add_rule(entry.key, entry.deps)
        self.futures: dict[CallKey, Any] = {}
        self._terminal: set[CallKey] = set()
        #: keys this process has (re-)issued, so rounds do not repeat
        self._issued: set[CallKey] = set()
        self._obs_batch: list[list] = []
        self._event = VEvent(self.kernel)
        self.error: Optional[BaseException] = None
        self.stats = {
            "calls": len(ledger.calls),
            "already_committed": 0,
            "reinvoked": 0,
            "refired": 0,
            "buried": 0,
            "events_replayed": ledger.records,
        }
        self._build_futures()

    def _build_futures(self) -> None:
        from repro.core.futures import CallState, ResponseFuture

        executor = self.executor
        for key in sorted(self.ledger.calls):
            entry = self.ledger.calls[key]
            future = ResponseFuture(
                executor.executor_id, entry.callset_id, entry.call_id
            )
            future.bind(executor._storage, executor.config.poll_interval)
            future.max_retries = entry.max_retries
            future._call_params = entry.params
            if entry.invoked:
                future._state = CallState.INVOKED
                future.invoke_count = entry.invoke_count
                future.activation_id = entry.activation_id
            self.futures[key] = future
        # the journaled exposure order *is* the public result shape
        executor.futures = [
            self.futures[key]
            for key in self.ledger.exposed
            if key in self.futures
        ]

    @property
    def finished(self) -> bool:
        return len(self._terminal) == len(self.futures)

    def start(self) -> "ResumedJob":
        with self.executor._trace_scope():
            self._reconcile()
            self._round_inner()
        if not self.finished:
            self.kernel.spawn_model(
                self._watch_steps,
                name=f"resume-watch-{self.executor.executor_id}",
            )
        else:
            self._event.set()
        return ResumedJob(self)

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _reconcile(self) -> None:
        """Fold the committed COS statuses into the replayed state.

        COS is ground truth: anything with a committed status object is
        final regardless of what the journal last observed, because the
        conditional PUT made that commit the call's one true outcome.
        """
        executor = self.executor
        committed: list[list] = []
        by_callset: dict[str, list[CallKey]] = {}
        for key in sorted(self.futures):
            by_callset.setdefault(key[0], []).append(key)
        for callset_id in sorted(by_callset):
            done_ids = executor._storage.list_done_call_ids(
                executor.executor_id, callset_id
            )
            for key in by_callset[callset_id]:
                if key[1] not in done_ids:
                    continue
                future = self.futures[key]
                status = executor._storage.get_status(
                    executor.executor_id, key[0], key[1]
                )
                if status is None:
                    continue
                future._ingest_status(status)
                success = bool(status.get("success"))
                self.engine.note_commit(key, success)
                self._terminal.add(key)
                executor._journal_seen.add(key)
                committed.append([key[0], key[1], success])
        self.stats["already_committed"] = len(committed)
        if executor.journal is not None:
            executor.journal.append(
                ev.RESUME_RECONCILED,
                committed=committed,
                pending=len(self.futures) - len(committed),
            )
        tracer = executor.tracer
        if tracer is not None and tracer.enabled:
            tracer.point(
                "events.reconcile", layer="events",
                ids={"executor_id": executor.executor_id},
                committed=len(committed),
                pending=len(self.futures) - len(committed),
            )

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _watch_steps(self):
        while not self.finished:
            yield vsleep(self.poll_interval)
            task = self.kernel.spawn(
                self._round_guard, name="resume-round"
            )
            yield vjoin(task)
            if self.error is not None:
                break

    def _round_guard(self) -> None:
        try:
            with self.executor._trace_scope():
                self._round_inner()
        except BaseException as exc:
            self.error = exc
            self._abort(f"resume watcher aborted: {exc!r}")

    def _round_inner(self) -> None:
        self._poll()
        self._recover()
        self._bury_blocked()
        self._fire()
        self._flush()
        if self.finished:
            self._event.set()

    def _pending_invoked(self) -> list[CallKey]:
        return [
            key
            for key in sorted(self.futures)
            if key not in self._terminal
            and (self.ledger.calls[key].invoked or key in self._issued)
        ]

    def _finalize(self, key: CallKey) -> None:
        executor = self.executor
        future = self.futures[key]
        if future._status is None:
            status = executor._storage.get_status(
                executor.executor_id, key[0], key[1]
            )
            if status is None:
                return  # raced a partial commit; next round sees it
            future._ingest_status(status)
        success = bool(future._status.get("success"))
        self.engine.note_commit(key, success)
        self._terminal.add(key)
        if key not in executor._journal_seen:
            executor._journal_seen.add(key)
            self._obs_batch.append([key[0], key[1], success])

    def _poll(self) -> None:
        """One LIST per callset with in-flight calls, then finalize."""
        executor = self.executor
        groups: dict[str, list[CallKey]] = {}
        for key in self._pending_invoked():
            groups.setdefault(key[0], []).append(key)
        for callset_id in sorted(groups):
            keys = groups[callset_id]
            if all(self.futures[k]._status is not None for k in keys):
                done_ids = None  # statuses already ingested; skip the LIST
            else:
                done_ids = executor._storage.list_done_call_ids(
                    executor.executor_id, callset_id
                )
            for key in keys:
                future = self.futures[key]
                if future._status is not None or (
                    done_ids is not None and key[1] in done_ids
                ):
                    self._finalize(key)

    def _recover(self) -> None:
        """Probe journaled activation ids; re-invoke calls we cannot probe.

        Calls invoked by the dead driver through a fire-and-forget invoker
        have no activation id in the journal — they may be running, done,
        or dead, and the gateway cannot tell us.  Re-invoking them once is
        always safe: if a surviving twin commits first, the duplicate
        loses the conditional status PUT and changes nothing.
        """
        executor = self.executor
        pending = [
            self.futures[key]
            for key in self._pending_invoked()
            if self.futures[key]._status is None
        ]
        if not pending:
            return
        probeable = [f for f in pending if f.activation_id is not None]
        if probeable and executor._recover_lost_enabled:
            executor._recover_lost(probeable)
            for future in probeable:
                key = (future.callset_id, future.call_id)
                if future._status is not None and key not in self._terminal:
                    # recovery buried it (synthetic lost status)
                    self.engine.note_commit(key, False)
                    self._terminal.add(key)
                    self.stats["buried"] += 1
        blind = [
            f for f in pending
            if f.activation_id is None
            and (f.callset_id, f.call_id) not in self._issued
        ]
        if blind:
            calls = [f._call_params for f in blind]
            executor._make_invoker().invoke_calls(
                executor.config.namespace, executor._runner_action,
                calls, blind,
            )
            for future in blind:
                self._issued.add((future.callset_id, future.call_id))
            self.stats["reinvoked"] += len(blind)
            executor._retries_total += len(blind)
            executor._journal_invoked(blind, recovered=True)

    def _bury_blocked(self) -> None:
        """Bury (transitively) every pending node with a failed dependency."""
        from repro import vtime

        executor = self.executor
        changed = True
        while changed:
            changed = False
            for key in sorted(self.futures):
                if key in self._terminal:
                    continue
                entry = self.ledger.calls[key]
                if not entry.deps:
                    continue
                blocker = self.engine.blocked_by(key)
                if blocker is None:
                    continue
                future = self.futures[key]
                reason = (
                    f"upstream DAG node '{entry.node_name or blocker}' "
                    "failed (buried during resume)"
                )
                now = vtime.now()
                executor._storage.put_result(
                    executor.executor_id, key[0], key[1], (None, reason)
                )
                status = {
                    "executor_id": executor.executor_id,
                    "callset_id": key[0],
                    "call_id": key[1],
                    "success": False,
                    "error": reason,
                    "buried": True,
                    "start_time": now,
                    "end_time": now,
                    "activation_id": None,
                    "container_id": None,
                    "cold_start": False,
                }
                if executor._storage.commit_status(
                    executor.executor_id, key[0], key[1], status
                ):
                    future._ingest_status(status)
                else:
                    future._status_seen = True
                    self._finalize(key)
                if future._status is not None:
                    self.engine.note_commit(
                        key, bool(future._status.get("success"))
                    )
                self._terminal.add(key)
                executor._journal_seen.add(key)
                self.stats["buried"] += 1
                changed = True
                if executor.journal is not None:
                    executor.journal.append(
                        ev.NODE_BURIED, calls=[[key[0], key[1]]],
                        resumed=True,
                    )

    def _fire(self) -> None:
        """Invoke every call whose trigger rule is now satisfied.

        Also covers calls journaled as submitted but never invoked (the
        crash landed between upload and invocation): they have no rule
        and no attempts, so they fire immediately.
        """
        executor = self.executor
        ready: list[CallKey] = []
        for key in sorted(self.futures):
            if key in self._terminal or key in self._issued:
                continue
            entry = self.ledger.calls[key]
            if entry.invoked:
                continue
            if entry.deps:
                if not self.engine.satisfied(key):
                    continue
            ready.append(key)
        if not ready:
            return
        futures = [self.futures[key] for key in ready]
        calls = [f._call_params for f in futures]
        executor._make_invoker().invoke_calls(
            executor.config.namespace, executor._runner_action, calls, futures
        )
        for key in ready:
            self._issued.add(key)
            self.engine.mark_fired(key)
        self.stats["refired"] += len(ready)
        if executor.journal is not None:
            executor.journal.append(
                ev.NODE_FIRED,
                calls=[
                    [f.callset_id, f.call_id, f.activation_id,
                     max(1, f.invoke_count)]
                    for f in futures
                ],
                resumed=True,
            )

    def _flush(self) -> None:
        if self._obs_batch and self.executor.journal is not None:
            self.executor.journal.append(
                ev.STATUS_OBSERVED, calls=self._obs_batch, resumed=True
            )
        self._obs_batch = []

    def _abort(self, reason: str) -> None:
        """A broken round must not leave waiters hanging in virtual time."""
        executor = self.executor
        for key in sorted(self.futures):
            if key in self._terminal:
                continue
            future = self.futures[key]
            status = {
                "executor_id": executor.executor_id,
                "callset_id": key[0],
                "call_id": key[1],
                "success": False,
                "error": reason,
                "buried": True,
                "start_time": 0.0,
                "end_time": 0.0,
                "activation_id": None,
                "container_id": None,
                "cold_start": False,
            }
            if executor._storage.commit_status(
                executor.executor_id, key[0], key[1], status
            ):
                future._ingest_status(status)
            else:
                future._status_seen = True
            self._terminal.add(key)
        self._event.set()

    def join(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)


class ResumedJob:
    """Handle on an adopted job: journaled futures plus completion."""

    def __init__(self, watcher: ResumeWatcher) -> None:
        self._watcher = watcher
        self.executor = watcher.executor
        self.job_id = watcher.executor.executor_id

    @property
    def futures(self) -> list:
        """The job's user-visible futures, in the journaled exposure order."""
        return list(self.executor.futures)

    @property
    def stats(self) -> dict[str, Any]:
        """Recovery accounting: committed/reinvoked/refired/buried counts."""
        return dict(self._watcher.stats)

    @property
    def error(self) -> Optional[BaseException]:
        return self._watcher.error

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block (virtual time) until every journaled call is terminal."""
        return self._watcher.join(timeout)

    def get_result(
        self, timeout: Optional[float] = None, throw_except: bool = True
    ) -> Any:
        """Collect results exactly as the dead driver's ``get_result`` would.

        Single-call jobs return the bare value, multi-call jobs the list
        in original submission order — byte-identical to what an
        uninterrupted run returns.
        """
        return self.executor.get_result(
            timeout=timeout, throw_except=throw_except
        )
