"""A provisioned-cluster baseline (the world PyWren replaces).

The paper's motivation (§1, §5): serverless lets users run bursty parallel
jobs "without waiting for machines to spin up", unlike Spark-style
clusters whose executors take minutes to provision (§2 cites Qubole's
~2-minute cold executor startup).  This module models that alternative: a
VM cluster that must boot before computing, so benches can quantify the
crossover between "spin up a cluster" and "spawn a thousand functions".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.vtime import Kernel, VSemaphore, gather

#: default VM boot time (seconds) — order of the §2 Qubole figure
DEFAULT_BOOT_SECONDS = 120.0
DEFAULT_BOOT_JITTER = 0.15


@dataclass
class ClusterJobResult:
    """Outcome of one map-style job on the cluster."""

    n_tasks: int
    provisioning_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.provisioning_s + self.compute_s


class VMCluster:
    """A fixed-size VM cluster with cold boot and slot-limited parallelism.

    ``run_map_job`` boots the cluster (once; subsequent jobs reuse it —
    that is exactly the cluster-management burden PyWren's users avoid),
    then executes ``n_tasks`` of ``task_seconds`` each over
    ``n_vms * slots_per_vm`` parallel slots.
    """

    def __init__(
        self,
        kernel: Kernel,
        n_vms: int,
        slots_per_vm: int = 4,
        boot_seconds: float = DEFAULT_BOOT_SECONDS,
        boot_jitter: float = DEFAULT_BOOT_JITTER,
        seed: int = 0,
    ) -> None:
        if n_vms <= 0 or slots_per_vm <= 0:
            raise ValueError("cluster needs at least one VM and one slot")
        self.kernel = kernel
        self.n_vms = n_vms
        self.slots_per_vm = slots_per_vm
        self.boot_seconds = boot_seconds
        self.boot_jitter = boot_jitter
        self._rng = random.Random(seed)
        self._booted = False

    @property
    def slots(self) -> int:
        return self.n_vms * self.slots_per_vm

    @property
    def booted(self) -> bool:
        return self._booted

    def provision(self) -> float:
        """Boot all VMs in parallel; returns the provisioning time.

        Provisioning completes when the *slowest* VM is up.
        """
        if self._booted:
            return 0.0
        start = self.kernel.now()

        def _boot_vm(boot_time: float) -> None:
            self.kernel.sleep(boot_time)

        boots = [
            self.boot_seconds
            * (1 + self._rng.uniform(-self.boot_jitter, self.boot_jitter))
            for _ in range(self.n_vms)
        ]
        gather(
            [self.kernel.spawn(_boot_vm, b, name=f"vm-boot-{i}") for i, b in enumerate(boots)]
        )
        self._booted = True
        return self.kernel.now() - start

    def terminate(self) -> None:
        """Release the cluster (the next job pays provisioning again)."""
        self._booted = False

    def run_map_job(
        self, n_tasks: int, task_seconds: float
    ) -> ClusterJobResult:
        """Run ``n_tasks`` uniform tasks; returns phase timings."""
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        provisioning = self.provision()
        start = self.kernel.now()
        if n_tasks:
            slots = VSemaphore(self.kernel, self.slots)

            def _task() -> None:
                with slots:
                    self.kernel.sleep(task_seconds)

            gather(
                [self.kernel.spawn(_task, name=f"cl-task-{i}") for i in range(n_tasks)]
            )
        return ClusterJobResult(
            n_tasks=n_tasks,
            provisioning_s=provisioning,
            compute_s=self.kernel.now() - start,
        )
