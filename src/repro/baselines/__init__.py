"""Baselines the paper positions IBM-PyWren against."""

from repro.baselines.cluster import ClusterJobResult, VMCluster

__all__ = ["VMCluster", "ClusterJobResult"]
