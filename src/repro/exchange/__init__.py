"""``repro.exchange`` — pluggable backends for intermediate-data exchange.

Selected by :class:`~repro.config.ExchangeConfig` (see
ARCHITECTURE.md "Exchange backends"):

* ``"cos"`` — :class:`CosExchange`, the paper's direct COS path (default);
* ``"cached-cos"`` — :class:`CachedCosExchange`, the write-through
  memory tier over the invoker nodes' caches;
* ``"vm"`` — :class:`VmExchange`, a provisioned ephemeral-store cluster.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.exchange.base import BoundExchange, ExchangeBackend
from repro.exchange.cached import CachedCosExchange
from repro.exchange.cos import CosExchange
from repro.exchange.vm import VmExchange

__all__ = [
    "ExchangeBackend",
    "BoundExchange",
    "CosExchange",
    "CachedCosExchange",
    "VmExchange",
    "build_exchange",
]


def build_exchange(
    exchange_config: Any,
    cache_config: Any,
    n_nodes: int,
    kernel: Any = None,
    tracer: Any = None,
    chaos: Any = None,
) -> ExchangeBackend:
    """Build the environment's backend from its config.

    Back-compat: a ``CacheConfig(enabled=True)`` with the default
    ``"cos"`` backend still selects the cached tier (the PR 5 opt-in
    spelling, ``CloudEnvironment.create(cache=...)``); an explicit
    ``ExchangeConfig(backend=...)`` wins.
    """
    backend = exchange_config.backend
    if backend == "cos" and cache_config is not None and cache_config.enabled:
        backend = "cached-cos"
    if backend == "cos":
        return CosExchange()
    if backend == "cached-cos":
        cfg = cache_config
        if cfg is None or not cfg.enabled:
            from repro.config import CacheConfig

            cfg = dataclasses.replace(
                cfg if cfg is not None else CacheConfig(), enabled=True
            )
        return CachedCosExchange(cfg, n_nodes, kernel=kernel, tracer=tracer)
    if backend == "vm":
        return VmExchange(
            exchange_config, kernel=kernel, tracer=tracer, chaos=chaos
        )
    raise ValueError(f"unknown exchange backend {backend!r}")


def normalize_exchange(exchange: Any) -> Optional[Any]:
    """Normalize an ``exchange=`` argument into an ``ExchangeConfig``.

    Accepts ``None`` (defer to ``config.exchange``), a backend name
    (``"vm"``), or an :class:`~repro.config.ExchangeConfig`.
    """
    if exchange is None:
        return None
    from repro.config import ExchangeConfig

    if isinstance(exchange, str):
        return ExchangeConfig(backend=exchange)
    if isinstance(exchange, ExchangeConfig):
        return exchange
    raise TypeError(
        "exchange must be None, a backend name or an ExchangeConfig"
    )
