"""The exchange-backend interface: who serves intermediate objects.

The paper's pipelines move every shuffle byte through COS; PR 5 added a
memory cache tier in front of it; the Milestone follow-up (PAPERS.md)
asks which *data plane* — object storage or a provisioned VM cluster —
wins at which shuffle volume and fan-out.  :class:`ExchangeBackend` is
the seam that makes the question askable: all intermediate reads and
writes (shuffle partitions, result blobs) in
:class:`~repro.core.storage_client.InternalStorage` go through one
backend, selected by :class:`~repro.config.ExchangeConfig`:

* :class:`~repro.exchange.cos.CosExchange` — the paper's direct COS path
  (default; byte-identical to the pre-backend code),
* :class:`~repro.exchange.cached.CachedCosExchange` — the PR 5
  write-through memory tier, re-homed as a backend,
* :class:`~repro.exchange.vm.VmExchange` — an emulated ephemeral-store
  (Redis-like) cluster of provisioned VM nodes.

Contract (pinned by ``tests/exchange/test_backend_contract.py``):

* **Durability is COS's.**  ``put`` writes through to COS first; any
  backend-side copy is a performance tier.  A backend may lose state
  (eviction, node crash) at any time — ``get`` must still return the
  bytes, transparently falling back to COS.
* **Visibility.**  After ``put`` returns, a ``get`` of the same key from
  any site returns exactly the published bytes.
* **Deletion.**  ``delete`` removes the COS object *and* invalidates
  backend copies; a later ``get`` raises
  :class:`~repro.cos.errors.NoSuchKey`.
* **Virtual time is the caller's.**  Every method takes the caller's
  :class:`~repro.cos.client.COSClient` so network time is charged to
  that caller's own link, exactly like the direct path.
* **Site gating.**  The backend tier only engages for code running *on*
  the emulated cloud — a worker's storage is bound to its fixed
  ``(invoker_id, container_id)`` site via :meth:`ExchangeBackend.bound`;
  otherwise the ambient execution context decides.  Client-side (WAN)
  reads and writes always use the plain COS path.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

Site = tuple[Optional[int], Optional[str]]


def ambient_site() -> Optional[Site]:
    """``(invoker_id, container_id)`` of the running function, if any.

    ``None`` for client-side code (no execution context) and for workers
    that predate invoker-id stamping.
    """
    from repro.core import context as ambient

    ctx = ambient.current_context()
    if ctx is None or ctx.execution_context is None:
        return None
    record = ctx.execution_context.record
    if record.invoker_id is None:
        return None
    return record.invoker_id, record.container_id


class ExchangeBackend:
    """Base class: the direct COS exchange, and the seam subclasses fill.

    The base implementation *is* the paper's COS-only path (see
    :class:`~repro.exchange.cos.CosExchange`): puts and gets are exactly
    one charged COS request, ``locate`` knows nothing, invalidation is a
    no-op.  Subclasses override the ``*_steps`` workhorses (and
    ``locate``/``invalidate``/``stats``) to interpose their tier.
    """

    #: backend name as selected by :class:`~repro.config.ExchangeConfig`
    name = "cos"
    #: whether :meth:`locate` yields useful placement hints (lets the DAG
    #: scheduler skip per-dependency directory peeks on plain backends)
    provides_locality = False

    # ------------------------------------------------------------------
    # Site resolution
    # ------------------------------------------------------------------
    def bound(self, site: Site) -> "BoundExchange":
        """A view of this backend pinned to one ``(invoker, container)``.

        The worker's storage uses it because result write-through happens
        after the ambient execution context is popped; everything else
        resolves the site ambiently per call.
        """
        return BoundExchange(self, site)

    def resolve_site(self, site: Optional[Site] = None) -> Optional[Site]:
        """The effective site: the fixed one if given, else ambient."""
        if site is not None and site[0] is not None:
            return site
        return ambient_site()

    # ------------------------------------------------------------------
    # Data path.  ``cos`` is the *caller's* client; time rides its link.
    # ------------------------------------------------------------------
    def put(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ) -> None:
        """Publish one intermediate object (blocking)."""
        cos.put_object(bucket, key, blob)

    def put_steps(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ) -> Iterator[Any]:
        """Steps twin of :meth:`put` (model tasks ``yield from``)."""
        yield from cos.put_object_steps(bucket, key, blob)

    def get(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ) -> bytes:
        """Read one intermediate object (blocking).

        Raises :class:`~repro.cos.errors.NoSuchKey` if it was never
        published (or was deleted) — backend tiers must never mask that.
        """
        return cos.get_object(bucket, key)

    def get_steps(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ) -> Iterator[Any]:
        """Steps twin of :meth:`get` (model tasks ``yield from``)."""
        blob = yield from cos.get_object_steps(bucket, key)
        return blob

    def delete(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ) -> None:
        """Remove the COS object and every backend copy."""
        cos.delete_object(bucket, key)
        self.invalidate(key)

    def list(self, cos: Any, bucket: str, prefix: str) -> list[str]:
        """Keys under ``prefix`` — COS is the source of truth (one LIST)."""
        return cos.list_keys(bucket, prefix)

    # ------------------------------------------------------------------
    # Placement / locality hints
    # ------------------------------------------------------------------
    def locate(self, key: str) -> list[tuple[int, int]]:
        """``(invoker_node_id, resident_bytes)`` per live tier copy.

        The DAG scheduler ranks placement hints with this; backends whose
        storage does not live on invoker nodes (COS, the VM cluster)
        return ``[]`` and the legacy produced-here ordering applies.
        """
        return []

    # ------------------------------------------------------------------
    # Lifecycle & accounting
    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> None:
        """Drop tier copies of ``key`` (its COS object changed/vanished)."""

    def invalidate_prefix(self, prefix: str) -> None:
        """Invalidate every tier copy under ``prefix`` (executor.clean)."""

    def stats(self) -> dict[str, Any]:
        """Aggregate hit/miss/eviction counters for reports and benches."""
        return {}

    def describe(self) -> dict[str, Any]:
        """Backend identity + node capacities (``python -m repro exchange``)."""
        return {"backend": self.name, "nodes": []}

    def billing(self, now: float) -> dict[str, Any]:
        """Exchange-attributable resource usage up to virtual time ``now``.

        COS request charges are accounted by the object store itself
        (:meth:`~repro.cos.object_store.CloudObjectStorage.request_counts`);
        backends that provision capacity (the VM cluster) report their
        VM-seconds here.
        """
        return {"vm_nodes": 0, "vm_seconds": 0.0}


class BoundExchange:
    """A backend view pinned to one producer/consumer site.

    Delegates everything; only the data-path methods gain the fixed
    ``site``.  Handed to the worker's :class:`InternalStorage` so result
    write-through still works after the ambient context is popped.
    """

    def __init__(self, backend: ExchangeBackend, site: Site) -> None:
        self.backend = backend
        self.site = site

    @property
    def name(self) -> str:
        return self.backend.name

    @property
    def provides_locality(self) -> bool:
        return self.backend.provides_locality

    def put(self, cos: Any, bucket: str, key: str, blob: bytes) -> None:
        self.backend.put(cos, bucket, key, blob, site=self.site)

    def put_steps(self, cos: Any, bucket: str, key: str, blob: bytes):
        yield from self.backend.put_steps(cos, bucket, key, blob, site=self.site)

    def get(self, cos: Any, bucket: str, key: str) -> bytes:
        return self.backend.get(cos, bucket, key, site=self.site)

    def get_steps(self, cos: Any, bucket: str, key: str):
        blob = yield from self.backend.get_steps(
            cos, bucket, key, site=self.site
        )
        return blob

    def delete(self, cos: Any, bucket: str, key: str) -> None:
        self.backend.delete(cos, bucket, key, site=self.site)

    def list(self, cos: Any, bucket: str, prefix: str) -> list[str]:
        return self.backend.list(cos, bucket, prefix)

    def locate(self, key: str) -> list[tuple[int, int]]:
        return self.backend.locate(key)

    def invalidate(self, key: str) -> None:
        self.backend.invalidate(key)

    def invalidate_prefix(self, prefix: str) -> None:
        self.backend.invalidate_prefix(prefix)

    def stats(self) -> dict[str, Any]:
        return self.backend.stats()

    def describe(self) -> dict[str, Any]:
        return self.backend.describe()

    def billing(self, now: float) -> dict[str, Any]:
        return self.backend.billing(now)
