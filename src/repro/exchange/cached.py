"""``CachedCosExchange`` — the PR 5 write-through memory tier, as a backend.

Re-homes the ambient-site special cases that used to live inside
``InternalStorage`` (``_cache_site`` / ``_cache_publish`` /
``_exchange_get_steps``): the backend owns the
:class:`~repro.cache.CachePlane` and the tiered read path, and the
storage client just routes intermediates through it.  The moved code is
timing-identical — same latency charges, same ``cache.*`` trace events —
so same-seed cached traces stay byte-identical across the refactor.

Resolution order for an in-cloud read: local memory hit (fixed latency +
memory bandwidth) → peer copy located via the consistent-hash directory
(one round trip on the reader's in-cloud link — the directory owner
forwards the request to the holder, so consult and fetch share it —
payload at node-to-node bandwidth) → COS fallback (the ordinary charged
GET).  Writers publish through their node's cache after the COS put.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.exchange.base import ExchangeBackend, Site
from repro.net.latency import TransientNetworkError

__all__ = ["CachedCosExchange"]


class CachedCosExchange(ExchangeBackend):
    """COS exchange with the memory-tier cache plane in front of reads."""

    name = "cached-cos"
    provides_locality = True

    def __init__(
        self,
        cache_config: Any,
        n_nodes: int,
        kernel: Any = None,
        tracer: Any = None,
    ) -> None:
        from repro.cache import CachePlane

        #: the cluster-wide cache tier (``env.cache`` aliases it)
        self.plane = CachePlane(cache_config, n_nodes, kernel=kernel, tracer=tracer)

    # ------------------------------------------------------------------
    # Write path: COS first (durability), then the producer's cache
    # ------------------------------------------------------------------
    def put(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ) -> None:
        cos.put_object(bucket, key, blob)
        self._publish(key, blob, site)

    def put_steps(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ):
        yield from cos.put_object_steps(bucket, key, blob)
        self._publish(key, blob, site)

    def _publish(self, key: str, blob: bytes, site: Optional[Site]) -> None:
        site = self.resolve_site(site)
        if site is not None:
            node_id, container_id = site
            self.plane.publish(key, blob, node_id, container_id)

    # ------------------------------------------------------------------
    # Read path: tiered for in-cloud sites, plain COS otherwise
    # ------------------------------------------------------------------
    def get(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ) -> bytes:
        site = self.resolve_site(site)
        if site is None:
            return cos.get_object(bucket, key)
        return cos.link.kernel.drive(
            self._tiered_get_steps(cos, bucket, key, site)
        )

    def get_steps(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ):
        site = self.resolve_site(site)
        if site is None:
            blob = yield from cos.get_object_steps(bucket, key)
            return blob
        blob = yield from self._tiered_get_steps(cos, bucket, key, site)
        return blob

    def _tiered_get_steps(
        self, cos: Any, bucket: str, key: str, site: Site
    ):
        """Tiered read of one intermediate object (steps generator).

        Peer-path transient network failures fall through to COS;
        :class:`~repro.cos.errors.NoSuchKey` from COS propagates
        unchanged.
        """
        from repro.vtime.kernel import vsleep

        plane = self.plane
        node_id, container_id = site
        kernel = cos.link.kernel
        t0 = kernel.now()
        blob = plane.local_get(key, node_id)
        if blob is not None:
            yield vsleep(plane.hit_delay(len(blob)))
            t1 = kernel.now()
            plane.note_read("local", len(blob), t1 - t0)
            plane.trace_span(
                "cache.hit", t0, t1, key=key, bytes=len(blob), node=node_id
            )
            return blob
        if plane.config.peer_fetch:
            try:
                located = plane.peer_get(key, node_id)
                if located is not None:
                    blob, src_node = located
                    # one consult+fetch round trip, payload at peer bandwidth
                    yield from cos.link.request_steps(0)
                    yield vsleep(plane.peer_transfer_delay(len(blob)))
                    t1 = kernel.now()
                    plane.note_read("peer", len(blob), t1 - t0)
                    plane.trace_span(
                        "cache.peer", t0, t1,
                        key=key, bytes=len(blob), node=node_id, src=src_node,
                    )
                    if plane.config.populate_on_miss:
                        plane.admit(key, blob, node_id, container_id)
                    return blob
            except TransientNetworkError:
                # the peer path is best-effort: fall back to COS
                plane.note_peer_failure()
        plane.trace_point("cache.miss", key=key, node=node_id)
        t_cos = kernel.now()
        blob = yield from cos.get_object_steps(bucket, key)
        plane.note_read("cos", len(blob), kernel.now() - t_cos)
        if plane.config.populate_on_miss:
            plane.admit(key, blob, node_id, container_id)
        return blob

    # ------------------------------------------------------------------
    # Placement, lifecycle, accounting: the plane's
    # ------------------------------------------------------------------
    def locate(self, key: str) -> list[tuple[int, int]]:
        return self.plane.locate(key)

    def invalidate(self, key: str) -> None:
        self.plane.invalidate(key)

    def invalidate_prefix(self, prefix: str) -> None:
        self.plane.invalidate_prefix(prefix)

    def stats(self) -> dict[str, Any]:
        stats = self.plane.stats()
        stats["hits"] = stats["local_hits"] + stats["peer_hits"]
        stats["misses"] = stats["cos_misses"]
        return stats

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "nodes": [
                {
                    "node": node.node_id,
                    "capacity_bytes": node.budget_bytes,
                    "used_bytes": node.used_bytes,
                }
                for node in self.plane.nodes
            ],
            **self.stats(),
        }
