"""``CosExchange`` — the paper's direct object-storage exchange.

Every intermediate put/get is exactly one charged COS request on the
caller's link, no tier in front.  This is the default backend and the
regression baseline: with :class:`~repro.config.ExchangeConfig` unset a
same-seed run must export a trace byte-identical to the pre-backend code
(``tests/exchange/test_golden_regression.py``), so this class adds *no*
virtual-time charges, trace events or RNG draws — only pure counters.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.exchange.base import ExchangeBackend, Site

__all__ = ["CosExchange"]


class CosExchange(ExchangeBackend):
    """Direct COS exchange (§3/Fig. 1): the base class path + counters."""

    name = "cos"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {"puts": 0, "gets": 0, "bytes_put": 0, "bytes_got": 0}

    def put(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ) -> None:
        cos.put_object(bucket, key, blob)
        self._note("puts", "bytes_put", len(blob))

    def put_steps(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ):
        yield from cos.put_object_steps(bucket, key, blob)
        self._note("puts", "bytes_put", len(blob))

    def get(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ) -> bytes:
        blob = cos.get_object(bucket, key)
        self._note("gets", "bytes_got", len(blob))
        return blob

    def get_steps(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ):
        blob = yield from cos.get_object_steps(bucket, key)
        self._note("gets", "bytes_got", len(blob))
        return blob

    def _note(self, op_counter: str, byte_counter: str, nbytes: int) -> None:
        with self._lock:
            self._counters[op_counter] += 1
            self._counters[byte_counter] += nbytes

    def stats(self) -> dict[str, Any]:
        with self._lock:
            stats: dict[str, Any] = dict(self._counters)
        # every read is a COS "miss" by construction: no tier exists
        stats["hits"] = 0
        stats["misses"] = stats["gets"]
        return stats

    def describe(self) -> dict[str, Any]:
        return {"backend": self.name, "nodes": [], **self.stats()}
