"""``VmExchange`` — an emulated ephemeral-store (Redis-like) VM cluster.

The Milestone follow-up to the paper (PAPERS.md) provisions a small
cluster of memory-backed store VMs next to the workers and routes
intermediates through it instead of object storage.  This backend
emulates that plane:

* **Provisioned nodes.**  ``vm_nodes`` nodes boot with the environment;
  exchange traffic arriving before ``vm_startup_s`` waits for the
  cluster (the provisioning cost the paper's COS path never pays).
* **Keyspace.**  A consistent-hash ring assigns each key one owner node
  (Redis-cluster style); readers and writers talk straight to the owner
  over their own in-cloud link (one round trip) with the payload at
  ``vm_bandwidth_bps``.
* **Memory capacity.**  Each node holds at most
  ``vm_node_memory_bytes`` in a byte-budgeted LRU; eviction-on-full
  drops the oldest entries.  Durability still belongs to COS — every
  put writes through — so an evicted (or never-stored oversize) entry
  just means the next read falls back to the charged COS GET.
* **Node failure.**  The ``vm-node-crash`` chaos hook kills a node at a
  seeded virtual time: its memory vanishes, the fault lands on the
  chaos timeline, and the node rejoins empty after another
  ``vm_startup_s``.  Readers fall back to COS transparently and
  repopulate the rejoined node on miss.
* **Accounting.**  The cluster accrues VM-seconds (``vm_nodes`` × time
  since boot) on the billing/cost layer — the flip side of the COS
  path's per-request charges; the crossover between the two is what
  ``benchmarks/bench_exchange_matrix.py`` measures.  Traffic is emitted
  as ``exchange.*`` events on the "exchange" trace layer.

Like every backend, the tier only engages for in-cloud sites; the
client's WAN-side storage takes the plain COS path.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.cache.node_cache import NodeCache
from repro.cache.ring import HashRing
from repro.exchange.base import ExchangeBackend, Site

__all__ = ["VmExchange", "VmNode"]


class VmNode:
    """One provisioned store VM: a byte-budgeted LRU plus a lifecycle."""

    def __init__(
        self,
        node_id: int,
        capacity_bytes: int,
        clock,
        ready_at: float,
        crash_at: Optional[float],
        restart_s: float,
    ) -> None:
        self.node_id = node_id
        self.store = NodeCache(node_id, capacity_bytes, clock=clock)
        #: end of the provisioning window (cluster boots at t=0)
        self.ready_at = ready_at
        #: seeded crash time from the chaos plane, or ``None``
        self.crash_at = crash_at
        #: the node rejoins (empty) this long after a crash
        self.restart_s = restart_s
        self._crashed = False
        self._lock = threading.Lock()

    def crash_due(self, now: float) -> bool:
        """Whether the seeded crash fires at ``now`` (first observer wins)."""
        if self.crash_at is None or now < self.crash_at:
            return False
        with self._lock:
            if self._crashed:
                return False
            self._crashed = True
        return True

    def up(self, now: float) -> bool:
        """Whether the node serves at ``now`` (booted, not mid-restart)."""
        if now < self.ready_at:
            return False
        if self.crash_at is not None and now >= self.crash_at:
            return now >= self.crash_at + self.restart_s
        return True


class VmExchange(ExchangeBackend):
    """Write-through exchange over a provisioned ephemeral-store cluster."""

    name = "vm"

    def __init__(
        self,
        config: Any,
        kernel: Any = None,
        tracer: Any = None,
        chaos: Any = None,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.tracer = tracer
        self.chaos = chaos
        clock = kernel.now if kernel is not None else None
        self.ring = HashRing(config.vm_nodes, config.vm_ring_vnodes)
        self.nodes = [
            VmNode(
                i,
                config.vm_node_memory_bytes,
                clock=clock,
                ready_at=config.vm_startup_s,
                crash_at=(
                    chaos.vm_node_crash_time(i) if chaos is not None else None
                ),
                restart_s=config.vm_startup_s,
            )
            for i in range(config.vm_nodes)
        ]
        self._lock = threading.Lock()
        self._counters = {
            "puts": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "down_ops": 0,
            "startup_waits": 0,
            "bytes_put": 0,
            "bytes_from_vm": 0,
            "bytes_from_cos": 0,
        }

    # ------------------------------------------------------------------
    # Write path: COS first (durability), then the owner VM node
    # ------------------------------------------------------------------
    def put(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ) -> None:
        cos.link.kernel.drive(self.put_steps(cos, bucket, key, blob, site=site))

    def put_steps(
        self, cos: Any, bucket: str, key: str, blob: bytes,
        site: Optional[Site] = None,
    ):
        yield from cos.put_object_steps(bucket, key, blob)
        if self.resolve_site(site) is None:
            return
        yield from self._vm_put_steps(cos, key, blob)

    def _vm_put_steps(self, cos: Any, key: str, blob: bytes):
        from repro.vtime.kernel import vsleep

        kernel = cos.link.kernel
        yield from self._wait_provisioned_steps(kernel)
        node = self.nodes[self.ring.owner(key)]
        t0 = kernel.now()
        # one round trip to the owner node, payload at the store bandwidth
        yield from cos.link.request_steps(0)
        yield vsleep(len(blob) / self.config.vm_bandwidth_bps)
        now = kernel.now()
        self._apply_crash(node, now)
        if not node.up(now):
            self._count("down_ops")
            self._trace_point("exchange.down", node=node.node_id, key=key, op="put")
            return
        evicted = node.store.put(key, blob, None)
        for victim, size in evicted:
            self._count("evictions")
            self._trace_point(
                "exchange.evict", node=node.node_id, key=victim,
                bytes=size, reason="lru",
            )
        self._count("puts", bytes_put=len(blob))
        self._trace_span(
            "exchange.put", t0, now, node=node.node_id, key=key, bytes=len(blob)
        )

    # ------------------------------------------------------------------
    # Read path: owner node first, transparent COS fallback
    # ------------------------------------------------------------------
    def get(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ) -> bytes:
        if self.resolve_site(site) is None:
            return cos.get_object(bucket, key)
        return cos.link.kernel.drive(self._vm_get_steps(cos, bucket, key))

    def get_steps(
        self, cos: Any, bucket: str, key: str, site: Optional[Site] = None
    ):
        if self.resolve_site(site) is None:
            blob = yield from cos.get_object_steps(bucket, key)
            return blob
        blob = yield from self._vm_get_steps(cos, bucket, key)
        return blob

    def _vm_get_steps(self, cos: Any, bucket: str, key: str):
        from repro.vtime.kernel import vsleep

        kernel = cos.link.kernel
        yield from self._wait_provisioned_steps(kernel)
        node = self.nodes[self.ring.owner(key)]
        t0 = kernel.now()
        # consult the owner node: one round trip on the reader's link
        yield from cos.link.request_steps(0)
        now = kernel.now()
        self._apply_crash(node, now)
        blob = node.store.get(key) if node.up(now) else None
        if blob is not None:
            yield vsleep(
                self.config.vm_hit_latency_s
                + len(blob) / self.config.vm_bandwidth_bps
            )
            self._count("hits", bytes_from_vm=len(blob))
            self._trace_span(
                "exchange.hit", t0, kernel.now(),
                node=node.node_id, key=key, bytes=len(blob),
            )
            return blob
        self._count("misses")
        self._trace_point("exchange.miss", node=node.node_id, key=key)
        # transparent fallback: the ordinary charged COS GET.  NoSuchKey
        # propagates unchanged (the object was never published / deleted).
        blob = yield from cos.get_object_steps(bucket, key)
        self._count_bytes(bytes_from_cos=len(blob))
        now = kernel.now()
        if node.up(now):
            # repopulate the (possibly freshly restarted) owner on miss
            for victim, size in node.store.put(key, blob, None):
                self._count("evictions")
                self._trace_point(
                    "exchange.evict", node=node.node_id, key=victim,
                    bytes=size, reason="lru",
                )
        return blob

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _wait_provisioned_steps(self, kernel):
        """Block until the cluster finishes provisioning (startup latency)."""
        from repro.vtime.kernel import vsleep

        wait = self.config.vm_startup_s - kernel.now()
        if wait > 0:
            self._count("startup_waits")
            self._trace_point("exchange.provisioning", wait_s=round(wait, 6))
            yield vsleep(wait)

    def _apply_crash(self, node: VmNode, now: float) -> None:
        """Fire the node's seeded crash the first time anyone observes it."""
        if not node.crash_due(now):
            return
        dropped = node.store.drop_container(None)
        target = f"vm-node-{node.node_id}@{node.crash_at:.3f}"
        if self.chaos is not None:
            self.chaos.record(node.crash_at, "vm", "crash", target)
        self._trace_point(
            "exchange.crash", node=node.node_id,
            t=node.crash_at, lost_entries=len(dropped),
        )

    def invalidate(self, key: str) -> None:
        node = self.nodes[self.ring.owner(key)]
        node.store.drop(key)

    def invalidate_prefix(self, prefix: str) -> None:
        for node in self.nodes:
            for key in node.store.keys():
                if key.startswith(prefix):
                    node.store.drop(key)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _count(self, counter: str, **bytes_counters: int) -> None:
        with self._lock:
            self._counters[counter] += 1
            for name, nbytes in bytes_counters.items():
                self._counters[name] += nbytes

    def _count_bytes(self, **bytes_counters: int) -> None:
        with self._lock:
            for name, nbytes in bytes_counters.items():
                self._counters[name] += nbytes

    def stats(self) -> dict[str, Any]:
        with self._lock:
            stats: dict[str, Any] = dict(self._counters)
        stats["resident_bytes"] = sum(n.store.used_bytes for n in self.nodes)
        return stats

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "nodes": [
                {
                    "node": node.node_id,
                    "capacity_bytes": node.store.budget_bytes,
                    "used_bytes": node.store.used_bytes,
                    "ready_at_s": node.ready_at,
                    "crash_at_s": node.crash_at,
                }
                for node in self.nodes
            ],
            **self.stats(),
        }

    # ------------------------------------------------------------------
    # Trace emission (no-ops unless the environment traces)
    # ------------------------------------------------------------------
    def _trace_point(self, name: str, **attrs: Any) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.point(name, "exchange", **attrs)

    def _trace_span(self, name: str, t0: float, t1: float, **attrs: Any) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.span_at(name, "exchange", t0, t1, **attrs)

    def vm_seconds(self, now: float) -> float:
        """Provisioned VM-seconds up to virtual time ``now`` (nodes boot
        with the environment at t=0 and bill until teardown)."""
        return len(self.nodes) * max(0.0, now)

    def billing(self, now: float) -> dict[str, Any]:
        from repro.core import cost

        seconds = self.vm_seconds(now)
        return {
            "vm_nodes": len(self.nodes),
            "vm_seconds": round(seconds, 3),
            "vm_cost_usd": round(cost.vm_seconds_cost(seconds), 8),
        }
