"""Top-level command line: ``python -m repro``.

Subcommands::

    python -m repro version          # package + substrate versions
    python -m repro quickstart       # run the Fig. 1 flow end to end
    python -m repro demo             # quickstart + wsk-style inspection
    python -m repro bench <exp>      # delegate to repro.bench (fig2 ...)
    python -m repro trace FILE [--svg OUT] [--chrome OUT] [--title T]
                                     # inspect / render an exported trace
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence


def _cmd_version() -> int:
    import repro

    print(f"repro {repro.__version__} — IBM-PyWren reproduction")
    print("substrates: vtime kernel, cos, faas (OpenWhisk-like), mq, net")
    return 0


def _cmd_quickstart() -> int:
    import repro as pw

    def my_map_function(x):
        return x + 7

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor()
        executor.map(my_map_function, [3, 6, 9])
        return executor.get_result(), pw.now()

    result, elapsed = env.run(main)
    print(f"map(x + 7, [3, 6, 9]) -> {result}   ({elapsed:.1f}s virtual)")
    return 0


def _cmd_demo() -> int:
    import repro as pw
    from repro.faas.shell import WskShell

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor(invoker_mode="massive")

        def task(x):
            pw.sleep(10)
            return x * x

        return executor.get_result(executor.map(task, list(range(20))))

    results = env.run(main)
    print(f"ran 20 functions -> sum of squares = {sum(results)}\n")
    shell = WskShell(env)
    for command in ["action list", "activation list --limit 3", "billing summary"]:
        print(f"$ wsk {command}")
        print(shell.run(command))
        print()
    return 0


def _cmd_trace(args: Sequence[str]) -> int:
    """Inspect a trace JSONL file; render Fig. 2/3-style SVG or Chrome JSON."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Summarize an exported trace and render it as the "
        "paper's Fig. 2/3-style SVG timeline or Chrome trace_event JSON "
        "(loadable in Perfetto).",
    )
    parser.add_argument("file", help="trace JSONL file (executor.trace_jsonl())")
    parser.add_argument("--svg", metavar="OUT", help="write timeline SVG here")
    parser.add_argument(
        "--chrome", metavar="OUT", help="write Chrome trace_event JSON here"
    )
    parser.add_argument(
        "--title", default=None, help="SVG title (default: derived from file)"
    )
    opts = parser.parse_args(list(args))

    from repro.analytics.timeline import render_execution_timeline
    from repro.trace import derive, export

    with open(opts.file, "r", encoding="utf-8") as fh:
        events = export.from_jsonl(fh.read())
    if not events:
        print(f"{opts.file}: no events")
        return 1

    by_layer: dict[str, int] = {}
    for event in events:
        by_layer[event.layer] = by_layer.get(event.layer, 0) + 1
    horizon = max(event.end for event in events)
    print(f"{opts.file}: {len(events)} events over {horizon:.2f}s virtual")
    for layer in sorted(by_layer):
        print(f"  {layer:<11} {by_layer[layer]}")

    records = derive.call_records_from_events(events)
    if records:
        stats = derive.job_stats_from_events(events)
        print(
            f"calls: {stats.n_calls}  makespan: {stats.makespan:.2f}s  "
            f"spawn spread: {stats.spawn_spread:.2f}s  "
            f"p95 duration: {stats.p95_duration:.2f}s  "
            f"failed: {stats.failed_calls}  retries: {stats.retries_total}"
        )
    billing = derive.billing_totals_from_events(events)
    if billing["activations"]:
        print(
            f"billing: {billing['activations']} activations, "
            f"{billing['gb_seconds']:.3f} GB-s, ${billing['cost']:.6f}"
        )

    if opts.svg:
        intervals = derive.execution_intervals(events)
        title = opts.title or f"Trace {opts.file}"
        with open(opts.svg, "w", encoding="utf-8") as fh:
            fh.write(render_execution_timeline(intervals, title=title))
        print(f"wrote {opts.svg} ({len(intervals)} executions)")
    if opts.chrome:
        export.write_chrome_trace(events, opts.chrome)
        print(f"wrote {opts.chrome} (open in Perfetto / chrome://tracing)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, *rest = argv
    if command == "version":
        return _cmd_version()
    if command == "quickstart":
        return _cmd_quickstart()
    if command == "demo":
        return _cmd_demo()
    if command == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(rest)
    if command == "trace":
        return _cmd_trace(rest)
    print(f"unknown command {command!r}\n{__doc__}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
