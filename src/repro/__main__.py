"""Top-level command line: ``python -m repro``.

Run without arguments for the subcommand listing — it is generated from
the command registry at the bottom of this module, so a new subcommand
shows up the moment it is registered (the old hand-written docstring had
drifted out of date more than once).
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence


def _cmd_version(args: Sequence[str]) -> int:
    del args
    import repro

    print(f"repro {repro.__version__} — IBM-PyWren reproduction")
    print("substrates: vtime kernel, cos, faas (OpenWhisk-like), mq, net")
    return 0


def _cmd_quickstart(args: Sequence[str]) -> int:
    del args
    import repro as pw

    def my_map_function(x):
        return x + 7

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor()
        executor.map(my_map_function, [3, 6, 9])
        return executor.get_result(), pw.now()

    result, elapsed = env.run(main)
    print(f"map(x + 7, [3, 6, 9]) -> {result}   ({elapsed:.1f}s virtual)")
    return 0


def _cmd_demo(args: Sequence[str]) -> int:
    del args
    import repro as pw
    from repro.faas.shell import WskShell

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor(invoker_mode="massive")

        def task(x):
            pw.sleep(10)
            return x * x

        return executor.get_result(executor.map(task, list(range(20))))

    results = env.run(main)
    print(f"ran 20 functions -> sum of squares = {sum(results)}\n")
    shell = WskShell(env)
    for command in ["action list", "activation list --limit 3", "billing summary"]:
        print(f"$ wsk {command}")
        print(shell.run(command))
        print()
    return 0


def _cmd_trace(args: Sequence[str]) -> int:
    """Inspect a trace JSONL file; render Fig. 2/3-style SVG or Chrome JSON."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Summarize an exported trace and render it as the "
        "paper's Fig. 2/3-style SVG timeline or Chrome trace_event JSON "
        "(loadable in Perfetto).",
    )
    parser.add_argument("file", help="trace JSONL file (executor.trace_jsonl())")
    parser.add_argument("--svg", metavar="OUT", help="write timeline SVG here")
    parser.add_argument(
        "--chrome", metavar="OUT", help="write Chrome trace_event JSON here"
    )
    parser.add_argument(
        "--title", default=None, help="SVG title (default: derived from file)"
    )
    parser.add_argument(
        "--tenant", default=None, metavar="NAMESPACE",
        help="keep only one tenant's events (multi-tenant traces stamp a "
        "'tenant' id; namespace attrs match too)",
    )
    opts = parser.parse_args(list(args))

    from repro.analytics.timeline import render_execution_timeline
    from repro.trace import derive, export

    with open(opts.file, "r", encoding="utf-8") as fh:
        events = export.from_jsonl(fh.read())
    if opts.tenant is not None:
        events = [
            event
            for event in events
            if event.get_id("tenant") == opts.tenant
            or event.get_attr("tenant") == opts.tenant
            or event.get_attr("namespace") == opts.tenant
        ]
        if not events:
            print(f"{opts.file}: no events for tenant {opts.tenant!r}")
            return 1
    if not events:
        print(f"{opts.file}: no events")
        return 1

    by_layer: dict[str, int] = {}
    for event in events:
        by_layer[event.layer] = by_layer.get(event.layer, 0) + 1
    horizon = max(event.end for event in events)
    print(f"{opts.file}: {len(events)} events over {horizon:.2f}s virtual")
    for layer in sorted(by_layer):
        print(f"  {layer:<11} {by_layer[layer]}")

    records = derive.call_records_from_events(events)
    if records:
        stats = derive.job_stats_from_events(events)
        print(
            f"calls: {stats.n_calls}  makespan: {stats.makespan:.2f}s  "
            f"spawn spread: {stats.spawn_spread:.2f}s  "
            f"p95 duration: {stats.p95_duration:.2f}s  "
            f"failed: {stats.failed_calls}  retries: {stats.retries_total}"
        )
    billing = derive.billing_totals_from_events(events)
    if billing["activations"]:
        print(
            f"billing: {billing['activations']} activations, "
            f"{billing['gb_seconds']:.3f} GB-s, ${billing['cost']:.6f}"
        )

    if opts.svg:
        from repro.analytics.timeline import dag_stage_groups, render_staged_timeline

        title = opts.title or f"Trace {opts.file}"
        groups = dag_stage_groups(events)
        if groups:
            # DAG workloads render grouped by stage (one colored band per
            # stage) so the barrier-free overlap between stages is visible
            with open(opts.svg, "w", encoding="utf-8") as fh:
                fh.write(render_staged_timeline(groups, title=title))
            n_nodes = sum(len(ivs) for _stage, ivs in groups)
            print(f"wrote {opts.svg} ({n_nodes} DAG nodes, {len(groups)} stages)")
        else:
            intervals = derive.execution_intervals(events)
            with open(opts.svg, "w", encoding="utf-8") as fh:
                fh.write(render_execution_timeline(intervals, title=title))
            print(f"wrote {opts.svg} ({len(intervals)} executions)")
    if opts.chrome:
        export.write_chrome_trace(events, opts.chrome)
        print(f"wrote {opts.chrome} (open in Perfetto / chrome://tracing)")
    return 0


def _cmd_dag(args: Sequence[str]) -> int:
    """``python -m repro dag render``: emit Graphviz/SVG of a built graph."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro dag",
        description="Inspect DAG workflows: 'render' builds one of the "
        "example graphs and emits Graphviz DOT (stdout or --dot) and/or "
        "a standalone SVG (--svg).",
    )
    parser.add_argument("action", choices=["render"])
    parser.add_argument(
        "--example",
        default="mergesort",
        choices=["mergesort", "wordcount", "sequence"],
        help="which example graph to build (default: mergesort)",
    )
    parser.add_argument(
        "--depth", type=int, default=2, help="mergesort tree depth"
    )
    parser.add_argument(
        "--reducers", type=int, default=4, help="wordcount reducer count"
    )
    parser.add_argument(
        "--stages", type=int, default=3, help="sequence chain length"
    )
    parser.add_argument(
        "--no-fuse", action="store_true", help="disable linear-chain fusion"
    )
    parser.add_argument("--dot", metavar="OUT", help="write DOT here")
    parser.add_argument("--svg", metavar="OUT", help="write SVG here")
    parser.add_argument(
        "--swarm-trace",
        metavar="JSONL",
        help="a swarm-scheduled run's trace JSONL; colors DOT edges by "
        "the invoking site (who invoked whom)",
    )
    opts = parser.parse_args(list(args))

    from repro.dag import DagBuilder, render

    builder = DagBuilder()
    if opts.example == "mergesort":
        def _leaf(chunk):
            return sorted(chunk)

        def _merge(results):
            merged = []
            for part in results:
                merged.extend(part)
            return sorted(merged)

        def build(width, d):
            if d <= 0 or width <= 1:
                return builder.call(_leaf, None, name=f"sort/{width}", stage="sort")
            left = build(width // 2, d - 1)
            right = build(width - width // 2, d - 1)
            return builder.reduce(
                _merge, [left, right], name=f"merge/{width}", stage=f"merge{d}"
            )

        build(2 ** max(opts.depth, 0), max(opts.depth, 0))
    elif opts.example == "wordcount":
        def _count(text):
            return text

        def _reduce(futures):
            return futures

        maps = builder.map(_count, list(range(4)), name="map", stage="map")
        for index in range(max(opts.reducers, 1)):
            builder.reduce(
                _reduce, maps, pass_futures=True,
                name=f"reduce[{index}]", stage="reduce",
            )
    else:  # sequence
        def _stage(value):
            return value

        node = builder.call(_stage, 0, name="f0", stage="seq")
        for index in range(1, max(opts.stages, 1)):
            node = node.then(_stage, name=f"f{index}", stage="seq")

    dag = builder.build(fuse=not opts.no_fuse)
    print(render.describe(dag))
    invoked_by = None
    if opts.swarm_trace:
        from repro.trace import export

        with open(opts.swarm_trace, encoding="utf-8") as fh:
            invoked_by = render.swarm_invoked_by(export.from_jsonl(fh.read()))
        print(f"swarm trace: {len(invoked_by)} worker-fired nodes")
    dot = render.to_dot(dag, invoked_by=invoked_by)
    if opts.dot:
        with open(opts.dot, "w", encoding="utf-8") as fh:
            fh.write(dot)
        print(f"wrote {opts.dot}")
    elif not opts.svg:
        print(dot, end="")
    if opts.svg:
        with open(opts.svg, "w", encoding="utf-8") as fh:
            fh.write(render.to_svg(dag))
        print(f"wrote {opts.svg}")
    return 0


def _cmd_events(args: Sequence[str]) -> int:
    """``python -m repro events resume``: crash the driver, adopt the job.

    The whole cloud lives inside one virtual-time kernel, so the demo
    plays both drivers: client-crash chaos kills generation 0 at the
    seeded virtual time, then a fresh executor replays the journal,
    reconciles against committed statuses in COS and finishes the run.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro events",
        description="Durable event-sourced orchestration: 'resume' runs a "
        "workload under client-crash chaos, then reattaches to the "
        "orphaned job from its journal and completes it with zero lost "
        "work.",
    )
    parser.add_argument("action", choices=["resume"])
    parser.add_argument(
        "--crash-at", type=float, default=4.0,
        help="virtual time (s) at which the driver dies (default: 4.0)",
    )
    parser.add_argument("--seed", type=int, default=7, help="chaos seed")
    parser.add_argument(
        "--workload", default="map_reduce",
        choices=["map_reduce", "mergesort"],
        help="what the doomed driver runs (default: map_reduce)",
    )
    parser.add_argument(
        "--journal", metavar="OUT", default=None,
        help="also write the replayed journal as JSONL here",
    )
    opts = parser.parse_args(list(args))

    import repro as pw
    from repro.chaos import ChaosProfile

    chaos = ChaosProfile(
        "client-crash", seed=opts.seed, client_crash_at_s=opts.crash_at
    )
    env = pw.CloudEnvironment.create(events=True, chaos=chaos)

    def _submit(executor):
        if opts.workload == "map_reduce":
            executor.map_reduce(
                lambda x: x * x, [1, 2, 3, 4, 5, 6], lambda xs: sum(xs)
            )
        else:
            def _chunk(values):
                pw.sleep(5)
                return sorted(values)

            def _merge(parts):
                pw.sleep(2)
                return sorted(x for part in parts for x in part)

            executor.map_reduce(_chunk, [[9, 4], [7, 1], [8, 2]], _merge)

    def main() -> int:
        executor = pw.ibm_cf_executor()
        job_id = executor.executor_id
        try:
            _submit(executor)
            result = executor.get_result()
            print(
                f"driver survived to t={pw.now():.1f}s (crash window "
                f"missed); result: {result}"
            )
            return 0
        except pw.ClientCrashError:
            print(f"driver killed at t={pw.now():.1f}s (job {job_id})")
            adopter = env.executor()
            job = adopter.reattach(job_id)
            stats = job.stats
            print(
                f"replayed {stats['events_replayed']} events -> "
                f"{stats['calls']} calls "
                f"({stats['already_committed']} already committed, "
                f"{stats['reinvoked']} re-invoked, "
                f"{stats['refired']} re-fired, {stats['buried']} buried)"
            )
            result = job.get_result()
            print(f"resumed result at t={pw.now():.1f}s: {result}")
            if opts.journal:
                from repro.events import to_jsonl

                with open(opts.journal, "w", encoding="utf-8") as fh:
                    fh.write(to_jsonl(adopter.journal.replay()))
                print(f"wrote {opts.journal}")
            return 0

    return env.run(main)


def _cmd_exchange(args: Sequence[str]) -> int:
    """``python -m repro exchange``: inspect the exchange backends.

    Runs a small shuffle wordcount through the chosen backend and prints
    what the new observability surface exposes: backend identity, node
    capacities, hit/miss counters, COS request tallies with their dollar
    cost, and (for the VM backend) provisioned VM-seconds.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro exchange",
        description="Inspect intermediate-data exchange backends: run a "
        "small shuffle through one and report node capacities, hit/miss "
        "counters and the COS-requests vs VM-seconds bill.",
    )
    parser.add_argument(
        "--backend", default="vm", choices=["cos", "cached-cos", "vm"],
        help="exchange backend to exercise (default: vm)",
    )
    parser.add_argument("--seed", type=int, default=42, help="run seed")
    parser.add_argument(
        "--docs", type=int, default=12, help="documents to shuffle"
    )
    parser.add_argument(
        "--reducers", type=int, default=3, help="reducer fan-in"
    )
    opts = parser.parse_args(list(args))

    import repro as pw
    from repro.core import cost
    from repro.core.shuffle import merge_shuffle_results

    env = pw.CloudEnvironment.create(seed=opts.seed, exchange=opts.backend)
    docs = [
        f"serverless data analytics shuffle exchange doc{i}"
        for i in range(max(opts.docs, 1))
    ]

    def main_() -> dict:
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            lambda text: [(w, 1) for w in text.split()],
            docs,
            lambda key, values: sum(values),
            n_reducers=max(opts.reducers, 1),
        )
        merge_shuffle_results(executor.get_result(reducers))
        return {"t": pw.now()}

    run = env.run(main_)
    info = env.exchange.describe()
    print(f"backend: {info['backend']}   (wall {run['t']:.2f}s virtual)")
    for node in info["nodes"]:
        line = (
            f"  node {node['node']}: "
            f"{node['used_bytes']}/{node['capacity_bytes']} bytes"
        )
        if node.get("crash_at_s") is not None:
            line += f"  crash@{node['crash_at_s']:.1f}s"
        print(line)
    stats = env.exchange.stats()
    if stats:
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        print(f"  tier reads: {hits} hits, {misses} misses")
    counts = env.storage.request_counts()
    cos_usd = cost.cos_request_cost(counts)
    ops = ", ".join(f"{op}={n}" for op, n in sorted(counts.items()))
    print(f"  cos requests: {ops}")
    billing = env.exchange.billing(env.now())
    print(
        f"  bill: cos ${cos_usd:.6f}"
        + (
            f" + {billing['vm_nodes']} VM nodes x "
            f"{billing['vm_seconds'] / max(billing['vm_nodes'], 1):.1f}s "
            f"= ${billing['vm_cost_usd']:.6f}"
            if billing.get("vm_seconds")
            else ""
        )
    )
    return 0


def _cmd_bench(args: Sequence[str]) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(list(args))


#: the single subcommand registry: name -> (handler, one-line help).
#: ``main()`` dispatches from it and the usage listing is generated from
#: it, so the two cannot drift apart.
COMMANDS: dict[str, tuple[Callable[[Sequence[str]], int], str]] = {
    "version": (_cmd_version, "package + substrate versions"),
    "quickstart": (_cmd_quickstart, "run the Fig. 1 flow end to end"),
    "demo": (_cmd_demo, "quickstart + wsk-style inspection"),
    "bench": (_cmd_bench, "paper experiments (fig2, fig3, ...); see repro.bench"),
    "trace": (_cmd_trace, "inspect / render an exported trace (SVG, Chrome)"),
    "dag": (_cmd_dag, "Graphviz/SVG of a built DAG (dag render)"),
    "events": (_cmd_events, "durable orchestration demo (events resume)"),
    "exchange": (_cmd_exchange, "inspect exchange backends: nodes, hits, bill"),
}


def usage() -> str:
    """The subcommand listing, generated from :data:`COMMANDS`."""
    lines = [
        "python -m repro — serverless-analytics reproduction CLI.",
        "",
        "Subcommands:",
    ]
    for name, (_handler, help_line) in COMMANDS.items():
        lines.append(f"    {name:<12} {help_line}")
    lines.append("")
    lines.append("Run 'python -m repro <subcommand> --help' for options.")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(usage())
        return 2
    command, *rest = argv
    entry = COMMANDS.get(command)
    if entry is None:
        print(f"unknown command {command!r}\n{usage()}")
        return 2
    handler, _help = entry
    return handler(rest)


if __name__ == "__main__":
    sys.exit(main())
