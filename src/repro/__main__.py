"""Top-level command line: ``python -m repro``.

Subcommands::

    python -m repro version          # package + substrate versions
    python -m repro quickstart       # run the Fig. 1 flow end to end
    python -m repro demo             # quickstart + wsk-style inspection
    python -m repro bench <exp>      # delegate to repro.bench (fig2 ...)
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence


def _cmd_version() -> int:
    import repro

    print(f"repro {repro.__version__} — IBM-PyWren reproduction")
    print("substrates: vtime kernel, cos, faas (OpenWhisk-like), mq, net")
    return 0


def _cmd_quickstart() -> int:
    import repro as pw

    def my_map_function(x):
        return x + 7

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor()
        executor.map(my_map_function, [3, 6, 9])
        return executor.get_result(), pw.now()

    result, elapsed = env.run(main)
    print(f"map(x + 7, [3, 6, 9]) -> {result}   ({elapsed:.1f}s virtual)")
    return 0


def _cmd_demo() -> int:
    import repro as pw
    from repro.faas.shell import WskShell

    env = pw.CloudEnvironment.create()

    def main():
        executor = pw.ibm_cf_executor(invoker_mode="massive")

        def task(x):
            pw.sleep(10)
            return x * x

        return executor.get_result(executor.map(task, list(range(20))))

    results = env.run(main)
    print(f"ran 20 functions -> sum of squares = {sum(results)}\n")
    shell = WskShell(env)
    for command in ["action list", "activation list --limit 3", "billing summary"]:
        print(f"$ wsk {command}")
        print(shell.run(command))
        print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, *rest = argv
    if command == "version":
        return _cmd_version()
    if command == "quickstart":
        return _cmd_quickstart()
    if command == "demo":
        return _cmd_demo()
    if command == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(rest)
    print(f"unknown command {command!r}\n{__doc__}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
