"""Trace exporters: flat JSONL (round-trippable) and Chrome ``trace_event``.

JSONL is the persistence format — one compact, key-sorted JSON object per
event, written in the deterministic :meth:`TraceEvent.sort_key` order so
two runs of the same seed produce byte-identical dumps.  The Chrome format
loads directly in Perfetto / ``chrome://tracing``: spans become complete
("X") events and points become instants ("i"), with one track per layer.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.trace.events import KIND_POINT, KIND_SPAN, LAYERS, TraceEvent


def _sorted(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    return sorted(events, key=TraceEvent.sort_key)


# ----------------------------------------------------------------------
# Flat JSONL
# ----------------------------------------------------------------------

def event_to_dict(event: TraceEvent) -> dict:
    """Plain-dict form of one event (stable keys, dict-valued ids/attrs)."""
    out: dict = {
        "t": event.t,
        "name": event.name,
        "layer": event.layer,
        "kind": event.kind,
    }
    if event.dur is not None:
        out["dur"] = event.dur
    if event.ids:
        out["ids"] = event.id_dict()
    if event.attrs:
        out["attrs"] = event.attr_dict()
    return out


def event_from_dict(data: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    return TraceEvent(
        t=data["t"],
        name=data["name"],
        layer=data["layer"],
        kind=data.get("kind", KIND_POINT),
        dur=data.get("dur"),
        ids=tuple(sorted(data.get("ids", {}).items())),
        attrs=tuple(sorted(data.get("attrs", {}).items())),
    )


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events to deterministic JSON-lines text."""
    lines = [
        json.dumps(event_to_dict(e), sort_keys=True, separators=(",", ":"))
        for e in _sorted(events)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> list[TraceEvent]:
    """Parse JSON-lines text back into events (blank lines ignored)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Chrome trace_event JSON (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------

def _tid(layer: str) -> int:
    try:
        return LAYERS.index(layer)
    except ValueError:
        return len(LAYERS)


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build a Chrome ``trace_event`` document from the event stream.

    Virtual seconds map to trace microseconds; each layer gets its own
    thread track, named via ``thread_name`` metadata.
    """
    ordered = _sorted(events)
    trace_events: list[dict] = []
    seen_layers: set[str] = set()
    for event in ordered:
        seen_layers.add(event.layer)
        record: dict = {
            "name": event.name,
            "cat": event.layer,
            "ts": event.t * 1e6,
            "pid": 1,
            "tid": _tid(event.layer),
            "args": {**event.id_dict(), **event.attr_dict()},
        }
        if event.kind == KIND_SPAN:
            record["ph"] = "X"
            record["dur"] = (event.dur or 0.0) * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": _tid(layer),
            "args": {"name": layer},
        }
        for layer in LAYERS
        if layer in seen_layers
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> None:
    """Write a Perfetto-loadable trace file to ``path``."""
    document = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")


def write_jsonl(events: Sequence[TraceEvent], path: str) -> None:
    """Write the flat JSONL dump to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(events))
