"""``repro.trace`` — the unified trace spine.

One virtual-time event stream feeds everything the paper's evaluation
narrates: per-call statistics (Fig. 3's fast/slow executors), billing
totals, the progress bar, and the Fig. 2/3-style timelines.  Every layer
of the emulated cloud — gateway, controller, invoker nodes, containers,
workers, COS, network links, the chaos plane — emits structured spans and
point events stamped with virtual time and causally linked by the id
hierarchy ``executor_id (job) → callset_id → call_id → activation_id →
attempt``.

The spine has three parts:

* :mod:`repro.trace.tracer` — the process-wide :class:`Tracer` collecting
  :class:`~repro.trace.events.TraceEvent` records with near-zero overhead
  when disabled (every emission site guards on ``tracer.enabled``);
* :mod:`repro.trace.derive` — consumers: job statistics, billing totals
  and execution intervals derived *from the stream*, matching the values
  the legacy per-layer counters produce;
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON (loadable in
  Perfetto / ``chrome://tracing``) and a flat JSONL format that round-trips
  and is persisted to COS next to each job's other objects.

Enable tracing when building an environment::

    env = CloudEnvironment.create(trace=True)
    ...
    events = env.tracer.events()
    export.write_chrome_trace(events, "job.trace.json")
"""

from repro.trace.events import LAYERS, TraceEvent
from repro.trace.tracer import Tracer
from repro.trace import derive, export

__all__ = ["TraceEvent", "Tracer", "LAYERS", "derive", "export"]
