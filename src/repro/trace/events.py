"""The trace event model: structured spans and points on the virtual clock.

Events are immutable and content-comparable: ids and attributes are stored
as sorted tuples, so two runs that produce the same causal history produce
*equal* events, and a deterministically sorted stream is byte-stable across
runs of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

#: the layers of the emulated cloud that emit onto the spine, in stack order
LAYERS = (
    "dag",         # DagScheduler: graph submissions, node spans, burials, retries
    "swarm",       # worker-driven scheduling: counter commits, in-cloud handoffs
    "events",      # event journal: appends, replays, resume reconciliation
    "scan",        # pushdown scans: plans, per-partition selectivity, merges
    "stream",      # micro-batch streaming: ingests, window fires, late events
    "client",      # FunctionExecutor: submissions, invocations, burials, progress
    "gateway",     # CloudFunctionsClient: invoke round trips, 429 throttles
    "controller",  # CloudFunctions: accepted activations, placement, image pulls
    "container",   # cold starts, user-code execution windows, injected fates
    "worker",      # runner phases: deserialize / run / commit
    "cache",       # memory-tier exchange: hits, peer transfers, misses, evicts
    "exchange",    # exchange backends: VM-plane puts/hits/misses, crashes
    "cos",         # object-storage requests with byte counts
    "net",         # raw link round trips
    "chaos",       # injected faults mirrored from the chaos plane
)

#: span/point identity of an event
KIND_SPAN = "span"
KIND_POINT = "point"


def _as_items(mapping: Optional[Mapping[str, Any]]) -> tuple[tuple[str, Any], ...]:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class TraceEvent:
    """One span or point event on the trace spine.

    ``ids`` carries the causal hierarchy (``executor_id``, ``callset_id``,
    ``call_id``, ``activation_id``, ``attempt`` — whichever the emitting
    layer knows); ``attrs`` carries layer-specific payload (byte counts,
    action names, success flags).  Both are sorted ``(key, value)`` tuples
    so events hash, compare and serialize deterministically.
    """

    t: float
    name: str
    layer: str
    kind: str = KIND_POINT
    dur: Optional[float] = None
    ids: tuple[tuple[str, Any], ...] = field(default_factory=tuple)
    attrs: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def end(self) -> float:
        """Span end time (== ``t`` for points)."""
        return self.t + (self.dur or 0.0)

    def id_dict(self) -> dict[str, Any]:
        return dict(self.ids)

    def attr_dict(self) -> dict[str, Any]:
        return dict(self.attrs)

    def get_id(self, key: str, default: Any = None) -> Any:
        for k, v in self.ids:
            if k == key:
                return v
        return default

    def get_attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def sort_key(self) -> tuple:
        """Deterministic total order independent of emission interleaving.

        Ties on time are broken by content, so an event multiset sorts to
        the same sequence no matter which thread appended first.
        """
        return (
            self.t,
            self.layer,
            self.name,
            self.kind,
            self.dur if self.dur is not None else -1.0,
            repr(self.ids),
            repr(self.attrs),
        )


def span(
    name: str,
    layer: str,
    t0: float,
    t1: float,
    ids: Optional[Mapping[str, Any]] = None,
    attrs: Optional[Mapping[str, Any]] = None,
) -> TraceEvent:
    """Build a span event covering ``[t0, t1]``."""
    return TraceEvent(
        t=t0,
        name=name,
        layer=layer,
        kind=KIND_SPAN,
        dur=max(0.0, t1 - t0),
        ids=_as_items(ids),
        attrs=_as_items(attrs),
    )


def point(
    name: str,
    layer: str,
    t: float,
    ids: Optional[Mapping[str, Any]] = None,
    attrs: Optional[Mapping[str, Any]] = None,
) -> TraceEvent:
    """Build an instantaneous point event."""
    return TraceEvent(
        t=t,
        name=name,
        layer=layer,
        kind=KIND_POINT,
        dur=None,
        ids=_as_items(ids),
        attrs=_as_items(attrs),
    )
