"""The :class:`Tracer`: thread-safe event collection on the virtual clock.

One tracer per :class:`~repro.core.environment.CloudEnvironment`; every
layer holds a reference and guards emission with ``tracer is not None and
tracer.enabled`` so a disabled spine costs two attribute loads per site.

Causal ids flow *ambiently*: :meth:`Tracer.bind` pushes an id mapping onto
a thread-local stack that the virtual-time kernel propagates into spawned
tasks (the same mechanism ``repro.core.context`` uses), so a COS request
issued deep inside a running cloud function is automatically stamped with
the job/call/activation ids the controller bound around the handler.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.trace import events as ev
from repro.vtime.kernel import Kernel, register_context_propagator

# Thread-local ambient ids, propagated into kernel tasks at spawn.
_BOUND = threading.local()


def _current_ids() -> Optional[dict[str, Any]]:
    return getattr(_BOUND, "ids", None)


def _capture_ids() -> Optional[dict[str, Any]]:
    return _current_ids()


def _install_ids(token: Optional[dict[str, Any]]) -> None:
    _BOUND.ids = dict(token) if token else None


def _uninstall_ids(_token: Optional[dict[str, Any]]) -> None:
    _BOUND.ids = None


register_context_propagator(_capture_ids, _install_ids, _uninstall_ids)


class Tracer:
    """Append-only, thread-safe collector of :class:`TraceEvent` records."""

    def __init__(self, kernel: Kernel, enabled: bool = False) -> None:
        self.kernel = kernel
        #: the master switch every emission site checks first
        self.enabled = bool(enabled)
        self._events: list[ev.TraceEvent] = []
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[ev.TraceEvent], None]] = []

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _merged_ids(self, ids: Optional[Mapping[str, Any]]) -> dict[str, Any]:
        ambient = _current_ids()
        if ambient and ids:
            return {**ambient, **ids}
        if ambient:
            return dict(ambient)
        return dict(ids) if ids else {}

    def _append(self, event: ev.TraceEvent) -> None:
        with self._lock:
            self._events.append(event)
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)

    def point(
        self,
        name: str,
        layer: str,
        t: Optional[float] = None,
        ids: Optional[Mapping[str, Any]] = None,
        **attrs: Any,
    ) -> None:
        """Record an instantaneous event (no-op when disabled)."""
        if not self.enabled:
            return
        when = self.kernel.now() if t is None else t
        self._append(ev.point(name, layer, when, self._merged_ids(ids), attrs))

    def span_at(
        self,
        name: str,
        layer: str,
        t0: float,
        t1: float,
        ids: Optional[Mapping[str, Any]] = None,
        **attrs: Any,
    ) -> None:
        """Record a span with explicit endpoints (no-op when disabled)."""
        if not self.enabled:
            return
        self._append(ev.span(name, layer, t0, t1, self._merged_ids(ids), attrs))

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        layer: str,
        ids: Optional[Mapping[str, Any]] = None,
        **attrs: Any,
    ) -> Iterator[None]:
        """Measure the enclosed block as a span on the virtual clock."""
        if not self.enabled:
            yield
            return
        t0 = self.kernel.now()
        try:
            yield
        finally:
            self.span_at(name, layer, t0, self.kernel.now(), ids, **attrs)

    @contextlib.contextmanager
    def bind(self, **ids: Any) -> Iterator[None]:
        """Push ambient causal ids for the current task (and its spawns)."""
        if not self.enabled or not ids:
            yield
            return
        previous = _current_ids()
        _BOUND.ids = {**previous, **ids} if previous else dict(ids)
        try:
            yield
        finally:
            _BOUND.ids = previous

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def subscribe(
        self, callback: Callable[[ev.TraceEvent], None]
    ) -> Callable[[], None]:
        """Register a live listener; returns an unsubscribe function.

        Listeners run synchronously on the emitting task — keep them cheap
        (the progress bar is the canonical subscriber).
        """
        with self._lock:
            self._subscribers.append(callback)

        def _unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return _unsubscribe

    def events(self) -> list[ev.TraceEvent]:
        """All events in deterministic (time, content) order."""
        with self._lock:
            snapshot = list(self._events)
        return sorted(snapshot, key=ev.TraceEvent.sort_key)

    def raw_events(self) -> list[ev.TraceEvent]:
        """All events in append order (interleaving-dependent)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
