"""Derive the legacy consumers' numbers from the trace stream.

The point of the spine: per-call statistics, billing totals and execution
intervals all fall out of the one event stream, matching what the
per-layer counters report.  The winning status of each call is the
``worker.commit`` span whose conditional PUT won (``committed=True``), or
the executor's ``client.bury`` point for calls that were given up on.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.stats import CallRecord, JobStats, stats_from_call_records
from repro.faas.billing import BillingEntry
from repro.trace.events import TraceEvent


def _matches(event: TraceEvent, executor_id: Optional[str], callset_id: Optional[str]) -> bool:
    if executor_id is not None and event.get_id("executor_id") != executor_id:
        return False
    if callset_id is not None and event.get_id("callset_id") != callset_id:
        return False
    return True


def call_records_from_events(
    events: Iterable[TraceEvent],
    executor_id: Optional[str] = None,
    callset_id: Optional[str] = None,
) -> list[CallRecord]:
    """Reconstruct per-call outcomes from the stream.

    One record per ``(executor_id, callset_id, call_id)``: timestamps and
    success come from the committed ``worker.commit`` span or the
    ``client.bury`` point (whichever won the at-most-once race), attempts
    from the highest ``client.invoke`` attempt number seen.
    """
    winners: dict[tuple, TraceEvent] = {}
    attempts: dict[tuple, int] = {}
    for event in events:
        if not _matches(event, executor_id, callset_id):
            continue
        key = (
            event.get_id("executor_id"),
            event.get_id("callset_id"),
            event.get_id("call_id"),
        )
        if key[2] is None:
            continue
        if event.name == "client.invoke":
            attempt = event.get_id("attempt") or 1
            attempts[key] = max(attempts.get(key, 1), attempt)
        elif event.name == "worker.commit" and event.get_attr("committed"):
            winners[key] = event
        elif event.name == "client.bury" and key not in winners:
            winners[key] = event
    records = []
    ordered = sorted(winners, key=lambda k: tuple("" if p is None else str(p) for p in k))
    for key in ordered:
        event = winners[key]
        records.append(
            CallRecord(
                start=event.get_attr("run_start"),
                end=event.get_attr("run_end"),
                success=bool(event.get_attr("success")),
                attempts=attempts.get(key, 1),
            )
        )
    return records


def job_stats_from_events(
    events: Iterable[TraceEvent],
    executor_id: Optional[str] = None,
    callset_id: Optional[str] = None,
) -> JobStats:
    """Trace-derived :class:`JobStats` — matches :func:`collect_job_stats`."""
    return stats_from_call_records(
        call_records_from_events(events, executor_id, callset_id)
    )


def execution_intervals(
    events: Iterable[TraceEvent],
    executor_id: Optional[str] = None,
    callset_id: Optional[str] = None,
) -> list[tuple[float, float]]:
    """(start, end) execution windows of all calls that reported timestamps.

    Feed these to :func:`repro.analytics.timeline.concurrency_timeline` or
    :func:`render_execution_timeline` for the Fig. 2/3-style views.
    """
    return [
        (record.start, record.end)
        for record in call_records_from_events(events, executor_id, callset_id)
        if record.start is not None and record.end is not None
    ]


def billing_entries_from_events(events: Iterable[TraceEvent]) -> list[BillingEntry]:
    """One :class:`BillingEntry` per ``container.execute`` span.

    The controller bills every placed activation — including crashed and
    hung ones — so the span is emitted on every fate path.
    """
    entries = []
    for event in events:
        if event.name != "container.execute":
            continue
        entries.append(
            BillingEntry(
                activation_id=event.get_id("activation_id"),
                action_name=event.get_attr("action"),
                memory_mb=event.get_attr("memory_mb"),
                duration_s=event.dur or 0.0,
            )
        )
    return entries


def billing_totals_from_events(events: Iterable[TraceEvent]) -> dict:
    """Aggregate billing from the stream — matches :class:`BillingMeter`."""
    entries = billing_entries_from_events(events)
    by_action: dict[str, float] = {}
    for entry in entries:
        by_action[entry.action_name] = by_action.get(entry.action_name, 0.0) + entry.gb_seconds
    return {
        "activations": len(entries),
        "gb_seconds": sum(e.gb_seconds for e in entries),
        "cost": sum(e.cost for e in entries),
        "by_action": by_action,
    }


def cos_byte_totals(events: Iterable[TraceEvent]) -> dict[str, dict[str, float]]:
    """Per-operation COS request counts and byte totals from ``cos.*`` spans."""
    totals: dict[str, dict[str, float]] = {}
    for event in events:
        if event.layer != "cos":
            continue
        op = event.name.split(".", 1)[-1]
        bucket = totals.setdefault(op, {"requests": 0, "bytes": 0})
        bucket["requests"] += 1
        bucket["bytes"] += event.get_attr("bytes", 0) or 0
    return totals
