"""Platform limits, mirroring §3 of the paper.

"At the time of this writing, the IBM Cloud Functions service limits
function execution to 600 seconds, 512MB of RAM per function execution, and
a maximum 1,000 concurrent invocations, though the number of concurrent
functions can be increased if needed."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SystemLimits:
    """Tunable limits of the emulated platform."""

    #: maximum execution time of a single function (seconds)
    max_exec_seconds: float = 600.0
    #: hard cap on per-action memory (MB)
    max_memory_mb: int = 512
    #: default per-action memory when unspecified (MB)
    default_memory_mb: int = 256
    #: per-namespace concurrent invocations (raisable, as the paper notes)
    max_concurrent: int = 1000
    #: invoker nodes in the cluster
    invoker_count: int = 20
    #: memory per invoker node (MB)
    invoker_memory_mb: int = 102_400
    #: seconds an idle warm container is kept before eviction
    warm_idle_ttl: float = 600.0

    def validate(self) -> None:
        if self.max_exec_seconds <= 0:
            raise ValueError("max_exec_seconds must be positive")
        if not (0 < self.default_memory_mb <= self.max_memory_mb):
            raise ValueError("default_memory_mb must be in (0, max_memory_mb]")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.invoker_count <= 0 or self.invoker_memory_mb <= 0:
            raise ValueError("invoker cluster must have capacity")

    @property
    def cluster_capacity(self) -> int:
        """Upper bound on simultaneously resident default-size containers."""
        per_node = self.invoker_memory_mb // self.default_memory_mb
        return per_node * self.invoker_count
