"""The Cloud Functions controller: accepts invocations, places containers,
runs handlers, records activations.

This plays the role OpenWhisk's controller + load balancer play for IBM
Cloud Functions: it enforces the per-namespace concurrency limit (429 +
client retry when exceeded), schedules activations onto invoker nodes,
charges cold-start/image-pull latencies, and *really executes* the action's
Python handler inside a kernel task.

The region is multi-tenant: attaching a
:class:`~repro.faas.tenants.TenantRegistry` (see :meth:`attach_tenants`)
turns on per-tenant admission control at accept time and replaces
first-come scheduling with a weighted-fair dispatch queue
(:class:`~repro.faas.dispatch.FairDispatchQueue`), so one namespace's
invocation storm cannot starve the others.  With no registry attached the
controller runs exactly the legacy path — same RNG draws, same trace
bytes — which is what the paper's one-tenant experiments use.
"""

from __future__ import annotations

import inspect
import itertools
import random
import threading
import traceback
from typing import Any, Optional

from repro.faas.action import Action, Handler, Namespace
from repro.faas.activation import ActivationRecord, ActivationStatus
from repro.faas.errors import (
    ActivationNotFound,
    NamespaceNotFound,
    ThrottledError,
)
from repro.faas.invoker_node import InvokerNode, Placement
from repro.faas.limits import SystemLimits
from repro.faas.runtime import DEFAULT_RUNTIME_NAME, RuntimeRegistry
from repro.vtime import Kernel, VCondition, VEvent
from repro.vtime.kernel import Waiter, current_task, vjoin, vsleep, vwait

#: controller-side processing time per accepted invocation request (seconds);
#: together with the caller's link RTT this yields the per-invocation service
#: times calibrated in DESIGN.md §5.
API_OVERHEAD_MEAN = 0.060
API_OVERHEAD_JITTER = 0.15

#: registry pull bandwidth seen by one invoker node (MB/s)
IMAGE_PULL_MBPS = 50.0

#: cold container boot time bounds (seconds)
COLD_START_MIN = 0.35
COLD_START_MAX = 0.90


def _call_ids(params: dict[str, Any]) -> dict[str, Any]:
    """Causal ids a runner-call params dict carries (absent keys skipped)."""
    ids = {}
    for key in ("executor_id", "callset_id", "call_id"):
        value = params.get(key)
        if value is not None:
            ids[key] = value
    return ids


def _run_handler_boxed(
    handler: Handler, params: dict[str, Any], ctx: "ExecutionContext", box: dict
) -> None:
    """Run a plain (blocking) handler on a pooled thread.

    Outcome goes into ``box`` so the platform's model task can distinguish a
    handler ``Exception`` (an activation *error*, formatted exactly as the
    in-task traceback used to be) from infrastructure failures.
    """
    try:
        box["result"] = handler(params, ctx)
    except Exception:  # noqa: BLE001 - the platform reports, not crashes
        box["error"] = traceback.format_exc()


class ExecutionContext:
    """What a running action sees: its activation, COS, and the platform.

    ``ctx.cos`` and ``ctx.functions`` talk to the services over an in-cloud
    (low-latency) link — functions run in the same data center as COS, which
    is the asymmetry the massive-spawning mechanism (§5.1) exploits.
    """

    def __init__(
        self,
        platform: "CloudFunctions",
        namespace: str,
        record: ActivationRecord,
        action: Action,
    ) -> None:
        self.platform = platform
        self.namespace = namespace
        self.record = record
        self.action = action
        self._cos = None
        self._functions = None

    @property
    def kernel(self) -> Kernel:
        return self.platform.kernel

    @property
    def activation_id(self) -> str:
        return self.record.activation_id

    @property
    def cos(self):
        """A COS client on an in-cloud link (lazy, one per activation)."""
        if self._cos is None:
            from repro.cos.client import COSClient

            link = self.platform.in_cloud_link_factory()
            self._cos = COSClient(self.platform.storage, link)
        return self._cos

    @property
    def functions(self):
        """A Cloud Functions client on an in-cloud link (for composition)."""
        if self._functions is None:
            from repro.faas.gateway import CloudFunctionsClient

            link = self.platform.in_cloud_link_factory()
            # workers act with the platform's own identity: the controller
            # trusts invocations originating from its containers
            self._functions = CloudFunctionsClient(
                self.platform, link, credentials=self.platform.trusted_token
            )
        return self._functions

    def sleep(self, seconds: float) -> None:
        """Model compute time inside the handler."""
        self.kernel.sleep(seconds)

    def sleep_steps(self, seconds: float):
        """Steps twin of :meth:`sleep` for generator handlers."""
        yield vsleep(seconds)

    def compute_steps(self, seconds: float):
        """Steps twin of :meth:`compute` for generator handlers."""
        yield vsleep(self._contended(seconds))

    def compute(self, seconds: float) -> None:
        """Model *CPU-bound* compute: contention-aware sleep.

        §6.2 observes that "some functions ran fast while others slow ...
        due to the internal operation of IBM Cloud Functions ... and the
        available resources in the cluster."  With the platform's
        ``contention_coeff`` > 0, nominal compute time inflates with the
        memory load of the invoker node this activation landed on.
        """
        self.kernel.sleep(self._contended(seconds))

    def _contended(self, seconds: float) -> float:
        coeff = self.platform.contention_coeff
        if coeff > 0 and self.record.invoker_id is not None:
            node = self.platform.invokers[self.record.invoker_id]
            seconds *= 1.0 + coeff * node.load_fraction()
        return seconds

    def log(self, message: str) -> None:
        """Append a line to this activation's log (like ``print`` in a
        real OpenWhisk action, retrievable from the activation record)."""
        self.record.logs.append((self.kernel.now(), str(message)))

    def remaining_time(self) -> float:
        """Seconds left before this activation hits its execution limit."""
        limit = min(self.action.timeout_s, self.platform.limits.max_exec_seconds)
        elapsed = self.kernel.now() - (self.record.start_time or self.kernel.now())
        return max(0.0, limit - elapsed)


class CloudFunctions:
    """The emulated IBM Cloud Functions service."""

    def __init__(
        self,
        kernel: Kernel,
        storage: Any,
        limits: Optional[SystemLimits] = None,
        registry: Optional[RuntimeRegistry] = None,
        seed: int = 42,
        crash_prob: float = 0.0,
        chaos=None,
    ) -> None:
        if not (0.0 <= crash_prob <= 1.0):
            raise ValueError("crash_prob must be in [0, 1]")
        #: probability an activation's container dies mid-flight without
        #: ever running (or reporting) the user function — fault injection
        #: for resilience tests; 0 by default
        self.crash_prob = crash_prob
        #: optional :class:`repro.chaos.ChaosPlane` scheduling container
        #: crashes/hangs, node blackouts and synthetic 429s
        self.chaos = chaos
        #: the trace spine (set by :class:`CloudEnvironment`); the controller
        #: emits accept/place/cold-start/execute spans onto it
        self.tracer = None
        #: the intermediate-data exchange backend (set by
        #: :class:`CloudEnvironment`; ``None`` until attached — workers
        #: then fall back to a private direct-COS backend)
        self.exchange = None
        self._chaos_invoke_seq = itertools.count()
        self.kernel = kernel
        self.storage = storage
        self.limits = limits or SystemLimits()
        self.limits.validate()
        self.registry = registry or RuntimeRegistry()
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._namespaces: dict[str, Namespace] = {}
        self._activations: dict[str, ActivationRecord] = {}
        # Completion events are lazy: ``None`` until somebody actually
        # waits (most activations are observed via COS status objects or
        # MQ push, so eagerly building an event per activation would cost
        # a lock + condition + waiter list for each of 50k in-flight calls).
        self._completion: dict[str, Optional[VEvent]] = {}
        self._act_lock = threading.Lock()
        self._act_ids = itertools.count(1)
        self._active: dict[str, int] = {}
        self._active_total = 0
        self._peak_active = 0
        self._throttled_total = 0
        from repro.faas.iam import IAM

        #: key issuance/verification; enforcement is off unless
        #: ``require_auth`` is set — the isolation boundary between tenant
        #: namespaces once a :class:`~repro.faas.tenants.TenantRegistry`
        #: shares the region
        self.iam = IAM(seed)
        self.require_auth = False
        #: multi-tenant control plane (``None`` = legacy single-tenant
        #: scheduling; see :meth:`attach_tenants`)
        self.tenants = None
        self._dispatch_queue = None
        self._dispatched_mb = 0
        self._dispatch_budget_mb = 0
        #: sentinel credential carried by in-cloud worker clients
        self.trusted_token = object()
        #: CPU-contention coefficient for ExecutionContext.compute();
        #: 0 (off) keeps the calibrated experiment timings exact
        self.contention_coeff = 0.0
        self._capacity = VCondition(kernel)
        self._rr = itertools.count()
        # Cluster-wide warm-idle hint per action fqn: lets _place_steps skip
        # the all-nodes warm scan when nothing can be warm (the common case
        # during a ramp-up).  May overcount after TTL expiry or eviction —
        # a scan that comes up empty resyncs it — but never undercounts.
        self._warm_idle: dict[str, int] = {}
        self.invokers = [
            InvokerNode(
                i, self.limits.invoker_memory_mb, self.limits.warm_idle_ttl
            )
            for i in range(self.limits.invoker_count)
        ]
        # The default runtime image ships preinstalled on every node.
        for node in self.invokers:
            node.cache_image(DEFAULT_RUNTIME_NAME)
        if self.chaos is not None:
            for node in self.invokers:
                node.blackouts = self.chaos.blackout_windows(node.node_id)
        self._link_seq = itertools.count(1000)
        self.environment: Any = None  # back-reference set by CloudEnvironment
        from repro.faas.billing import BillingMeter

        self.billing = BillingMeter()

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def in_cloud_link_factory(self):
        """A fresh in-cloud network link (independent RNG stream)."""
        from repro.net.latency import LatencyModel
        from repro.net.link import NetworkLink

        return NetworkLink(
            self.kernel,
            LatencyModel.in_cloud(),
            seed=next(self._link_seq),
            chaos=self.chaos,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # Action management
    # ------------------------------------------------------------------
    def namespace(self, name: str, create: bool = True) -> Namespace:
        with self._act_lock:
            ns = self._namespaces.get(name)
            if ns is None:
                if not create:
                    raise NamespaceNotFound(name)
                ns = Namespace(name)
                self._namespaces[name] = ns
            return ns

    def create_action(
        self,
        namespace: str,
        name: str,
        handler: Handler,
        runtime: str = DEFAULT_RUNTIME_NAME,
        memory_mb: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> Action:
        """Deploy an action.  Validates runtime and limits."""
        image = self.registry.get(runtime)  # raises RuntimeNotFound
        memory = memory_mb if memory_mb is not None else self.limits.default_memory_mb
        if not (0 < memory <= self.limits.max_memory_mb):
            raise ValueError(
                f"action memory {memory}MB outside (0, "
                f"{self.limits.max_memory_mb}MB]"
            )
        timeout = timeout_s if timeout_s is not None else self.limits.max_exec_seconds
        timeout = min(timeout, self.limits.max_exec_seconds)
        action = Action(
            namespace=namespace,
            name=name,
            handler=handler,
            runtime=image.name,
            memory_mb=memory,
            timeout_s=timeout,
        )
        self.namespace(namespace).put(action)
        return action

    # ------------------------------------------------------------------
    # Multi-tenant control plane
    # ------------------------------------------------------------------
    def attach_tenants(self, registry) -> None:
        """Switch the region into multi-tenant mode.

        ``registry`` (a :class:`~repro.faas.tenants.TenantRegistry`)
        supplies per-tenant quotas enforced at accept time and the
        dispatch policy.  Accepted invocations then queue per namespace
        and leave the queue in deficit-round-robin order (or global
        arrival order under the ``"fifo"`` baseline) as cluster memory
        frees up, instead of each racing straight to placement.
        """
        if self.tenants is not None:
            raise ValueError("a tenant registry is already attached")
        from repro.faas.dispatch import FairDispatchQueue

        self.tenants = registry
        # costs are action memory (MB): a weight-1.0 tenant earns one
        # default-sized action's worth of dispatch credit per round
        self._dispatch_queue = FairDispatchQueue(
            policy=registry.policy,
            quantum=float(self.limits.default_memory_mb),
        )
        self._dispatch_budget_mb = (
            self.limits.invoker_count * self.limits.invoker_memory_mb
        )
        self._dispatched_mb = 0

    def _dispatch_kick(self) -> None:
        """Drain the fair-dispatch queue while the cluster has headroom.

        Called after every enqueue and every activation completion (no
        daemon poller: a timer that re-arms forever would keep virtual
        time advancing and mask real deadlocks).  Pops admitted
        invocations in the registry's dispatch order while
        dispatched-but-unfinished action memory stays below the invoker
        fleet's total, spawning one platform task per activation.  The
        headroom gate may overshoot by at most one action —
        :meth:`_place_steps` absorbs any real capacity wait — which keeps
        the pop decision atomic with the DRR state.
        """
        tenants = self.tenants
        while True:
            with self._act_lock:
                if self._dispatched_mb >= self._dispatch_budget_mb:
                    popped = None
                else:
                    popped = self._dispatch_queue.pop()
                if popped is not None:
                    self._dispatched_mb += int(popped[2])
            if popped is None:
                return
            namespace, (action, params, record), _cost = popped
            tenants.on_dispatched(namespace)
            record.dispatch_time = self.kernel.now()
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.point(
                    "controller.dispatch", "controller",
                    ids={
                        **_call_ids(params),
                        "activation_id": record.activation_id,
                        "tenant": namespace,
                    },
                    action=action.name,
                    queued_s=round(
                        record.dispatch_time - record.submit_time, 6
                    ),
                )
            self.kernel.spawn_model(
                self._execute,
                action,
                params,
                record,
                name=f"fn-{action.name}-{record.activation_id}",
            )

    def _tenant_release(self, action: Action, record: ActivationRecord) -> None:
        """Return an activation's quota + dispatch credit (tenancy only)."""
        tenants = self.tenants
        if tenants is None:
            return
        with self._act_lock:
            self._dispatched_mb -= action.memory_mb
        tenants.on_complete(record.namespace, action.memory_mb)
        self._dispatch_kick()

    # ------------------------------------------------------------------
    # Invocation path
    # ------------------------------------------------------------------
    def invoke(
        self,
        namespace: str,
        action_name: str,
        params: dict[str, Any],
        credentials: Any = None,
    ) -> str:
        """Accept one invocation; returns its activation id.

        Raises :class:`ThrottledError` (HTTP 429) when the namespace is at
        its concurrent-invocation limit — and, with a tenant registry
        attached, when any of the calling tenant's quotas (rate,
        concurrency, memory, queue depth) is exhausted; the error then
        carries the refusal ``reason``.  When ``require_auth`` is set,
        ``credentials`` (an :class:`~repro.faas.iam.ApiKey`) must authorize
        the namespace.  Charges controller-side processing time to the
        calling task, like a synchronous HTTP POST would.  Blocking wrapper
        over :meth:`invoke_steps` (thread tasks only).
        """
        return self.kernel.drive(
            self.invoke_steps(namespace, action_name, params, credentials)
        )

    def invoke_steps(
        self,
        namespace: str,
        action_name: str,
        params: dict[str, Any],
        credentials: Any = None,
    ):
        """Steps twin of :meth:`invoke` (model tasks ``yield from``)."""
        if self.require_auth and credentials is not self.trusted_token:
            from repro.faas.iam import AuthenticationError

            if credentials is None:
                raise AuthenticationError("this platform requires an API key")
            self.iam.authorize(credentials, namespace)
        action = self.namespace(namespace, create=False).get(action_name)
        with self._rng_lock:
            overhead = API_OVERHEAD_MEAN * (
                1 + self._rng.uniform(-API_OVERHEAD_JITTER, API_OVERHEAD_JITTER)
            )
        yield vsleep(overhead)
        tenants = self.tenants
        if tenants is not None:
            # tenant admission control: quota refusals are 429s carrying a
            # machine-readable reason, counted per tenant by the registry
            try:
                tenants.admit(namespace, action.memory_mb, self.kernel.now())
            except ThrottledError:
                with self._act_lock:
                    self._throttled_total += 1
                raise
        with self._act_lock:
            current = self._active.get(namespace, 0)
            if current >= self.limits.max_concurrent:
                self._throttled_total += 1
                if tenants is not None:
                    tenants.release_admission(namespace, action.memory_mb)
                raise ThrottledError(
                    f"namespace {namespace!r} at concurrency limit "
                    f"({self.limits.max_concurrent})",
                    retry_after=self._retry_after_hint(current),
                )
            if self.chaos is not None and self.chaos.should_throttle(
                next(self._chaos_invoke_seq)
            ):
                self._throttled_total += 1
                if tenants is not None:
                    tenants.release_admission(namespace, action.memory_mb)
                hint = self._retry_after_hint(current)
                self.chaos.record(
                    self.kernel.now(), "throttle", "429",
                    f"{namespace}/{action_name}",
                    tenant=namespace if tenants is not None else None,
                )
                raise ThrottledError(
                    f"chaos: synthetic 429 for namespace {namespace!r}",
                    retry_after=hint,
                )
            self._active[namespace] = current + 1
            self._active_total += 1
            self._peak_active = max(self._peak_active, self._active_total)
            activation_id = f"act-{next(self._act_ids):08d}"
            record = ActivationRecord(
                activation_id=activation_id,
                namespace=namespace,
                action_name=action_name,
                submit_time=self.kernel.now(),
            )
            self._activations[activation_id] = record
            self._completion[activation_id] = None
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            ids = {**_call_ids(params), "activation_id": activation_id}
            if tenants is not None:
                ids["tenant"] = namespace
            tracer.point(
                "controller.accept",
                "controller",
                ids=ids,
                namespace=namespace,
                action=action_name,
            )
        if tenants is None:
            self.kernel.spawn_model(
                self._execute,
                action,
                dict(params),
                record,
                name=f"fn-{action_name}-{activation_id}",
            )
        else:
            # multi-tenant: the invocation queues per namespace and leaves
            # in weighted-fair order as the dispatcher finds headroom
            with self._act_lock:
                self._dispatch_queue.set_weight(
                    namespace, tenants.get(namespace).weight
                )
                self._dispatch_queue.push(
                    namespace,
                    (action, dict(params), record),
                    cost=float(action.memory_mb),
                )
            self._dispatch_kick()
        return activation_id

    def _retry_after_hint(self, current: int) -> float:
        """``Retry-After`` seconds, scaled with how loaded the namespace is.

        A lightly loaded namespace tells clients to come back quickly; one
        pinned at its limit pushes them a full second out.
        """
        fraction = min(1.0, current / max(1, self.limits.max_concurrent))
        return round(0.25 + 0.75 * fraction, 3)

    def _execute(
        self, action: Action, params: dict[str, Any], record: ActivationRecord
    ):
        """Model-task body for one activation (a generator of kernel ops).

        Pure platform modelling — placement, image pull, cold boot, fault
        fates, billing — runs on the kernel's model loop and holds no OS
        thread while sleeping.  Only a plain (non-generator) user handler
        occupies a pooled worker thread, and only for its own duration.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            yield from self._execute_steps(action, params, record, None)
            return
        # bind the causal ids ambiently so every span emitted below this
        # task — worker phases, COS requests, in-cloud link round trips —
        # is stamped with them automatically (plus the tenant dimension
        # when the region is multi-tenant)
        ids = _call_ids(params)
        if self.tenants is not None:
            ids["tenant"] = record.namespace
        with tracer.bind(**ids, activation_id=record.activation_id):
            yield from self._execute_steps(action, params, record, tracer)

    def _execute_steps(
        self,
        action: Action,
        params: dict[str, Any],
        record: ActivationRecord,
        tracer,
    ):
        t_place = self.kernel.now()
        placement, node = yield from self._place_steps(
            action, params.get("placement_hint")
        )
        record.invoker_id = node.node_id
        record.container_id = placement.container.container_id
        record.cold_start = placement.cold
        record.image_pulled = placement.needs_pull
        if tracer is not None:
            tracer.span_at(
                "controller.place", "controller", t_place, self.kernel.now(),
                invoker_id=node.node_id,
                cold=placement.cold,
                needs_pull=placement.needs_pull,
            )
        if placement.needs_pull:
            image = self.registry.get(action.runtime)
            t_pull = self.kernel.now()
            yield vsleep(image.size_mb / IMAGE_PULL_MBPS)
            node.cache_image(action.runtime)
            if tracer is not None:
                tracer.span_at(
                    "controller.image_pull", "controller",
                    t_pull, self.kernel.now(),
                    runtime=action.runtime, size_mb=image.size_mb,
                )
        if placement.cold:
            with self._rng_lock:
                boot = self._rng.uniform(COLD_START_MIN, COLD_START_MAX)
            t_boot = self.kernel.now()
            yield vsleep(boot)
            if tracer is not None:
                tracer.span_at(
                    "container.cold_start", "container",
                    t_boot, self.kernel.now(),
                    runtime=action.runtime,
                )

        record.start_time = self.kernel.now()
        with self._rng_lock:
            # sample only when fault injection is on, so the RNG stream (and
            # therefore all calibrated timings) is unchanged at crash_prob=0
            crashed = self.crash_prob > 0 and self._rng.random() < self.crash_prob
            crash_after = self._rng.uniform(0.1, 2.0) if crashed else 0.0
        fate, fate_delay = ("crash", crash_after) if crashed else ("run", 0.0)
        if fate == "run" and self.chaos is not None:
            fate, fate_delay = self.chaos.container_fate(record.activation_id)
            if fate != "run":
                self.chaos.record(
                    record.start_time, "container", fate, record.activation_id,
                    tenant=record.namespace if self.tenants is not None else None,
                )
        if fate != "run":
            # the container dies without the handler completing: no result,
            # no status object in COS — the client only notices by absence.
            # A crash dies within seconds; a hang wedges until the platform
            # reaps the unresponsive container after ``fate_delay``.
            yield vsleep(fate_delay)
            record.end_time = self.kernel.now()
            record.status = ActivationStatus.ERROR
            record.error = (
                "infrastructure failure: container crashed"
                if fate == "crash"
                else "infrastructure failure: container hung and was reaped"
            )
            self.billing.record(
                record.activation_id,
                action.name,
                action.memory_mb,
                record.end_time - record.start_time,
                namespace=record.namespace,
            )
            if tracer is not None:
                tracer.point(
                    "container.fault", "container", t=record.start_time,
                    fate=fate,
                )
                # billed window: crashed containers still cost GB-seconds
                tracer.span_at(
                    "container.execute", "container",
                    record.start_time, record.end_time,
                    action=action.name,
                    memory_mb=action.memory_mb,
                    cold=placement.cold,
                    invoker_id=node.node_id,
                    status=fate,
                )
            node.discard(placement.container, crashed=True)
            with self._act_lock:
                self._active[record.namespace] -= 1
                self._active_total -= 1
                event = self._completion[record.activation_id]
            if event is not None:
                event.set()
            with self._capacity:
                self._capacity.notify_all()
            self._tenant_release(action, record)
            return

        ctx = ExecutionContext(self, record.namespace, record, action)
        status = ActivationStatus.SUCCESS
        if inspect.isgeneratorfunction(action.handler):
            # a steps-style handler runs inline on the model loop: the whole
            # activation is threadless end to end
            try:
                record.result = yield from action.handler(params, ctx)
            except Exception:  # noqa: BLE001 - the platform reports, not crashes
                status = ActivationStatus.ERROR
                record.error = traceback.format_exc()
        else:
            # a plain blocking handler gets a pooled worker thread for
            # exactly its own duration; ambient context (trace bind) is
            # captured from this step and follows it
            box: dict[str, Any] = {}
            handler_task = self.kernel.spawn(
                _run_handler_boxed,
                action.handler,
                params,
                ctx,
                box,
                name=f"hnd-{action.name}-{record.activation_id}",
            )
            yield vjoin(handler_task)
            if handler_task._exception is not None:
                # non-Exception BaseException (or kernel teardown): this
                # activation's platform task dies with it, as before
                raise handler_task._exception
            if "error" in box:
                status = ActivationStatus.ERROR
                record.error = box["error"]
            else:
                record.result = box.get("result")
        record.end_time = self.kernel.now()

        limit = min(action.timeout_s, self.limits.max_exec_seconds)
        if record.end_time - record.start_time > limit:
            # The real platform would have killed the function at the limit;
            # we label the activation and clamp its recorded interval.
            status = ActivationStatus.TIMEOUT
            record.error = (
                f"function exceeded execution limit of {limit:.0f}s"
            )
            record.result = None
            record.end_time = record.start_time + limit
        record.status = status
        self.billing.record(
            record.activation_id,
            action.name,
            action.memory_mb,
            record.end_time - record.start_time,
            namespace=record.namespace,
        )
        if tracer is not None:
            tracer.span_at(
                "container.execute", "container",
                record.start_time, record.end_time,
                action=action.name,
                memory_mb=action.memory_mb,
                cold=placement.cold,
                invoker_id=node.node_id,
                status=status,
            )

        node.release(placement.container, self.kernel.now())
        fqn = placement.container.action_fqn
        self._warm_idle[fqn] = self._warm_idle.get(fqn, 0) + 1
        with self._act_lock:
            self._active[record.namespace] -= 1
            self._active_total -= 1
            event = self._completion[record.activation_id]
        if event is not None:
            event.set()
        with self._capacity:
            self._capacity.notify_all()
        self._tenant_release(action, record)

    def _place_steps(self, action: Action, hint: Optional[list] = None):
        """Find a node for the activation, waiting for capacity if needed.

        Steps generator: when the cluster is full, the activation parks on
        the capacity condition via a registered waiter (1 s timeout retry),
        holding no OS thread while it waits.

        ``hint`` is an optional ordered list of preferred invoker-node ids
        (the DAG scheduler's locality hint: nodes whose warm containers
        produced this call's inputs).  Hinted nodes are tried first in the
        warm scan only — locality means reusing a warm container next to
        the data; a cold start is the same price everywhere.
        """
        invokers = self.invokers
        n_nodes = len(invokers)
        while True:
            start = next(self._rr) % n_nodes
            now = self.kernel.now()
            # Blacked-out nodes (chaos plane) accept no placements; the
            # capacity wait below retries once their window passes.
            chaos = self.chaos is not None
            # Warm scan first: reusing an idle container anywhere in the
            # cluster beats a cold start (OpenWhisk prefers warm reuse).
            # The hint makes the scan O(1) when nothing can be warm; the
            # scan itself is authoritative, the hint only gates it.
            if self._warm_idle.get(action.fqn, 0) > 0:
                if hint:
                    for node_id in hint:
                        if not isinstance(node_id, int):
                            continue
                        if not 0 <= node_id < n_nodes:
                            continue
                        node = invokers[node_id]
                        if chaos and not node.available(now):
                            continue
                        placement = node.try_place_warm(action, now)
                        if placement is not None:
                            self._warm_idle[action.fqn] -= 1
                            return placement, node
                for k in range(n_nodes):
                    node = invokers[(start + k) % n_nodes]
                    if chaos and not node.available(now):
                        continue
                    placement = node.try_place_warm(action, now)
                    if placement is not None:
                        self._warm_idle[action.fqn] -= 1
                        return placement, node
                if not chaos:
                    # every node was scanned and none had a live warm
                    # container: the hint was stale (TTL expiry/eviction)
                    self._warm_idle[action.fqn] = 0
            for k in range(n_nodes):
                node = invokers[(start + k) % n_nodes]
                if chaos and not node.available(now):
                    continue
                placement = node.try_place_cold(action, now)
                if placement is not None:
                    return placement, node
            waiter = Waiter(current_task())
            self._capacity.register_waiter(waiter)
            yield vwait(waiter, 1.0)

    # ------------------------------------------------------------------
    # Results / introspection
    # ------------------------------------------------------------------
    def get_activation(self, activation_id: str) -> ActivationRecord:
        with self._act_lock:
            try:
                return self._activations[activation_id]
            except KeyError:
                raise ActivationNotFound(activation_id) from None

    def get_activations_bulk(
        self, activation_ids: list[str]
    ) -> list[Optional[ActivationRecord]]:
        """Records for many activations at once (``None`` for unknown ids).

        One API call instead of N — what the client's lost-call detector
        uses to scan a whole callset per polling round.
        """
        with self._act_lock:
            return [self._activations.get(aid) for aid in activation_ids]

    def wait_activation(
        self, activation_id: str, timeout: Optional[float] = None
    ) -> ActivationRecord:
        """Block (virtual time) until the activation finishes."""
        with self._act_lock:
            record = self._activations.get(activation_id)
            if record is None:
                raise ActivationNotFound(activation_id)
            if record.finished:
                return record
            event = self._completion.get(activation_id)
            if event is None:
                # first waiter materializes the completion event; the
                # record's status is always assigned before the completer
                # takes _act_lock, so this check-then-wait cannot miss
                event = VEvent(self.kernel)
                self._completion[activation_id] = event
        event.wait(timeout)
        return self.get_activation(activation_id)

    def activations(self) -> list[ActivationRecord]:
        with self._act_lock:
            return list(self._activations.values())

    @property
    def active_count(self) -> int:
        """Activations in flight across all namespaces."""
        with self._act_lock:
            return self._active_total

    def active_in(self, namespace: str) -> int:
        """Activations in flight for one namespace."""
        with self._act_lock:
            return self._active.get(namespace, 0)

    @property
    def peak_active(self) -> int:
        with self._act_lock:
            return self._peak_active

    @property
    def throttled_total(self) -> int:
        with self._act_lock:
            return self._throttled_total
