"""Sub-second billing metering.

§1 names "sub-second billing" as one of serverless computing's draws; IBM
Cloud Functions bills GB-seconds at 100 ms granularity.  The platform
meters every activation so experiments can report what a job *costs* — an
axis the paper leaves implicit in Table 3's executor counts.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

#: IBM Cloud Functions list price at the time of the paper (USD per GB-s)
PRICE_PER_GB_SECOND = 0.000017

#: billing granularity: durations round up to 100 ms
BILLING_QUANTUM_S = 0.1


def billed_duration(duration_s: float) -> float:
    """Round a duration up to the billing quantum (sub-second billing).

    Durations within float epsilon of an exact quantum multiple do not bump
    to the next quantum; every activation bills at least one quantum.
    """
    if duration_s <= 0:
        return BILLING_QUANTUM_S
    quanta = math.ceil(duration_s / BILLING_QUANTUM_S - 1e-9)
    return max(1, quanta) * BILLING_QUANTUM_S


@dataclass
class BillingEntry:
    """One metered activation."""

    activation_id: str
    action_name: str
    memory_mb: int
    duration_s: float
    #: owning namespace — the billing dimension tenant rollups group by
    namespace: str = ""

    @property
    def gb_seconds(self) -> float:
        return (self.memory_mb / 1024.0) * billed_duration(self.duration_s)

    @property
    def cost(self) -> float:
        return self.gb_seconds * PRICE_PER_GB_SECOND


class BillingMeter:
    """Aggregates GB-seconds and cost across a platform's activations."""

    def __init__(self) -> None:
        self._entries: list[BillingEntry] = []
        self._lock = threading.Lock()

    def record(
        self,
        activation_id: str,
        action_name: str,
        memory_mb: int,
        duration_s: float,
        namespace: str = "",
    ) -> BillingEntry:
        entry = BillingEntry(
            activation_id, action_name, memory_mb, duration_s, namespace
        )
        with self._lock:
            self._entries.append(entry)
        return entry

    @property
    def activations(self) -> int:
        with self._lock:
            return len(self._entries)

    def total_gb_seconds(self) -> float:
        with self._lock:
            return sum(e.gb_seconds for e in self._entries)

    def total_cost(self) -> float:
        with self._lock:
            return sum(e.cost for e in self._entries)

    def by_action(self) -> dict[str, float]:
        """GB-seconds per action name."""
        with self._lock:
            out: dict[str, float] = {}
            for entry in self._entries:
                out[entry.action_name] = out.get(entry.action_name, 0.0) + entry.gb_seconds
            return out

    def by_namespace(self) -> dict[str, float]:
        """GB-seconds per namespace (the per-tenant billing dimension)."""
        with self._lock:
            out: dict[str, float] = {}
            for entry in self._entries:
                out[entry.namespace] = out.get(entry.namespace, 0.0) + entry.gb_seconds
            return out

    def entries_for(self, namespace: str) -> list[BillingEntry]:
        """This namespace's metered activations, in record order."""
        with self._lock:
            return [e for e in self._entries if e.namespace == namespace]

    def entries(self) -> list[BillingEntry]:
        with self._lock:
            return list(self._entries)
