"""Actions (deployed functions) and namespaces."""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.faas.errors import ActionNotFound

#: Signature of an action handler: (params, context) -> result.
Handler = Callable[[dict[str, Any], Any], Any]


@dataclass(frozen=True)
class Action:
    """A deployed function.

    ``handler`` is a real Python callable — the platform genuinely executes
    it inside an emulated container task, receiving the invocation params
    and an :class:`~repro.faas.controller.ExecutionContext`.
    """

    namespace: str
    name: str
    handler: Handler
    runtime: str
    memory_mb: int
    timeout_s: float

    @property
    def fqn(self) -> str:
        """Fully qualified name, e.g. ``guest/pywren_runner``."""
        return f"{self.namespace}/{self.name}"


class Namespace:
    """A per-tenant collection of actions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._actions: dict[str, Action] = {}
        self._lock = threading.Lock()

    def put(self, action: Action) -> None:
        with self._lock:
            self._actions[action.name] = action

    def get(self, action_name: str) -> Action:
        with self._lock:
            try:
                return self._actions[action_name]
            except KeyError:
                raise ActionNotFound(f"{self.name}/{action_name}") from None

    def delete(self, action_name: str) -> None:
        with self._lock:
            if action_name not in self._actions:
                raise ActionNotFound(f"{self.name}/{action_name}")
            del self._actions[action_name]

    def list_actions(self) -> list[str]:
        with self._lock:
            return sorted(self._actions)
