"""Client-side API gateway for Cloud Functions.

Every endpoint (the user's laptop, a remote invoker function) talks to the
controller through a :class:`CloudFunctionsClient` carrying its own network
link — so an invocation from a WAN client costs a WAN round trip while one
from inside the cloud costs microseconds, which is the entire story of the
paper's §5.1.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.config import RetryConfig
from repro.faas.activation import ActivationRecord
from repro.faas.controller import CloudFunctions
from repro.faas.errors import ThrottledError
from repro.net.link import NetworkLink
from repro.retry import RetryPolicy
from repro.vtime.kernel import vsleep

#: approximate size of an invocation HTTP request (auth headers + params)
INVOKE_PAYLOAD_BYTES = 1024


def _gateway_ids(params: dict[str, Any]) -> dict[str, Any]:
    """Causal ids present in a call's params (absent keys skipped)."""
    ids = {}
    for key in ("executor_id", "callset_id", "call_id"):
        value = params.get(key)
        if value is not None:
            ids[key] = value
    return ids


class CloudFunctionsClient:
    """Latency-charging, retrying client for the controller.

    Network transients follow the shared
    :class:`~repro.retry.RetryPolicy`; 429 throttles are retried until they
    clear (an invocation that is never issued never finishes), sleeping the
    server's ``Retry-After`` hint when one is given and the policy's
    backoff schedule otherwise.
    """

    def __init__(
        self,
        platform: CloudFunctions,
        link: NetworkLink,
        credentials=None,
        retry: Optional[RetryConfig] = None,
    ) -> None:
        self.platform = platform
        self.link = link
        #: optional :class:`~repro.faas.iam.ApiKey` sent with every request
        self.credentials = credentials
        self.policy = RetryPolicy(retry, seed=link.seed)
        self._invocations = 0
        self._throttle_retries = 0
        self._throttle_retries_by_ns: dict[str, int] = {}
        self._throttle_reasons: dict[str, int] = {}

    @property
    def invocations(self) -> int:
        return self._invocations

    @property
    def throttle_retries(self) -> int:
        return self._throttle_retries

    def throttle_retries_by_namespace(self) -> dict[str, int]:
        """429 retries this client absorbed, per target namespace."""
        return dict(self._throttle_retries_by_ns)

    def throttle_reasons(self) -> dict[str, int]:
        """429 retries by refusal reason (tenant quotas name theirs;
        plain capacity throttles count under ``"capacity"``)."""
        return dict(self._throttle_reasons)

    def _network_round_trip(self, payload_bytes: int) -> None:
        self.policy.run(
            lambda: self.link.request(payload_bytes), self.platform.kernel
        )

    def _network_round_trip_steps(self, payload_bytes: int):
        yield from self.policy.run_steps(
            lambda: self.link.request_steps(payload_bytes)
        )

    def invoke(
        self,
        namespace: str,
        action_name: str,
        params: Optional[dict[str, Any]] = None,
    ) -> str:
        """Invoke an action; blocks for the network + API round trip only.

        Retries transient network failures and 429 throttles (both grow with
        latency in the paper's account of slow WAN spawning).  Blocking
        wrapper over :meth:`invoke_steps` (thread tasks only).
        """
        return self.platform.kernel.drive(
            self.invoke_steps(namespace, action_name, params)
        )

    def invoke_steps(
        self,
        namespace: str,
        action_name: str,
        params: Optional[dict[str, Any]] = None,
    ):
        """Steps twin of :meth:`invoke` (model tasks ``yield from``)."""
        params = params or {}
        kernel = self.platform.kernel
        tracer = getattr(self.platform, "tracer", None)
        if tracer is not None and not tracer.enabled:
            tracer = None
        call_ids = _gateway_ids(params) if tracer is not None else None
        t0 = kernel.now() if tracer is not None else None
        # tenant dimension only in multi-tenant regions, so single-tenant
        # traces stay byte-identical to pre-tenancy runs
        multitenant = getattr(self.platform, "tenants", None) is not None
        # duck-typed platforms (test fakes) may only offer blocking invoke
        invoke_steps = getattr(self.platform, "invoke_steps", None)
        throttle_attempt = 0
        while True:
            yield from self._network_round_trip_steps(INVOKE_PAYLOAD_BYTES)
            try:
                if invoke_steps is not None:
                    activation_id = yield from invoke_steps(
                        namespace, action_name, params,
                        credentials=self.credentials,
                    )
                else:
                    activation_id = self.platform.invoke(
                        namespace, action_name, params,
                        credentials=self.credentials,
                    )
            except ThrottledError as exc:
                self._throttle_retries += 1
                throttle_attempt += 1
                self._throttle_retries_by_ns[namespace] = (
                    self._throttle_retries_by_ns.get(namespace, 0) + 1
                )
                reason = getattr(exc, "reason", None)
                reason_label = reason if reason is not None else "capacity"
                self._throttle_reasons[reason_label] = (
                    self._throttle_reasons.get(reason_label, 0) + 1
                )
                if tracer is not None:
                    attrs = dict(
                        action=action_name,
                        attempt=throttle_attempt,
                        retry_after=exc.retry_after,
                    )
                    ids = call_ids
                    if multitenant:
                        ids = {**call_ids, "tenant": namespace}
                        if reason is not None:
                            attrs["reason"] = reason
                    tracer.point(
                        "gateway.throttle", "gateway", ids=ids, **attrs
                    )
                yield vsleep(
                    self.policy.backoff(throttle_attempt, exc.retry_after)
                )
                continue
            self._invocations += 1
            if tracer is not None:
                ids = {**call_ids, "activation_id": activation_id}
                if multitenant:
                    ids["tenant"] = namespace
                tracer.span_at(
                    "gateway.invoke", "gateway", t0, kernel.now(),
                    ids=ids,
                    namespace=namespace,
                    action=action_name,
                    throttles=throttle_attempt,
                )
            return activation_id

    def invoke_blocking(
        self,
        namespace: str,
        action_name: str,
        params: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> ActivationRecord:
        activation_id = self.invoke(namespace, action_name, params)
        return self.wait(activation_id, timeout=timeout)

    def get_activations(
        self, activation_ids: list[str]
    ) -> list[Optional[ActivationRecord]]:
        """Bulk-fetch activation records: one round trip for the whole batch.

        ``None`` for unknown ids.  The executor's lost-call detector scans an
        entire callset per polling round with this, instead of N requests.
        """
        self._network_round_trip(INVOKE_PAYLOAD_BYTES)
        return self.platform.get_activations_bulk(activation_ids)

    def wait(
        self, activation_id: str, timeout: Optional[float] = None
    ) -> ActivationRecord:
        """Wait for an activation and fetch its record (one round trip)."""
        record = self.platform.wait_activation(activation_id, timeout=timeout)
        self.link.request_with_retries(0)
        return record
