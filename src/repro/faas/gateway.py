"""Client-side API gateway for Cloud Functions.

Every endpoint (the user's laptop, a remote invoker function) talks to the
controller through a :class:`CloudFunctionsClient` carrying its own network
link — so an invocation from a WAN client costs a WAN round trip while one
from inside the cloud costs microseconds, which is the entire story of the
paper's §5.1.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faas.activation import ActivationRecord
from repro.faas.controller import CloudFunctions
from repro.faas.errors import ThrottledError
from repro.net.link import NetworkLink

#: approximate size of an invocation HTTP request (auth headers + params)
INVOKE_PAYLOAD_BYTES = 1024

#: backoff before retrying a throttled (429) invocation
THROTTLE_BACKOFF = 1.0


class CloudFunctionsClient:
    """Latency-charging, retrying client for the controller."""

    RETRIES = 5
    RETRY_BACKOFF = 1.0

    def __init__(
        self,
        platform: CloudFunctions,
        link: NetworkLink,
        credentials=None,
    ) -> None:
        self.platform = platform
        self.link = link
        #: optional :class:`~repro.faas.iam.ApiKey` sent with every request
        self.credentials = credentials
        self._invocations = 0
        self._throttle_retries = 0

    @property
    def invocations(self) -> int:
        return self._invocations

    @property
    def throttle_retries(self) -> int:
        return self._throttle_retries

    def invoke(
        self,
        namespace: str,
        action_name: str,
        params: Optional[dict[str, Any]] = None,
    ) -> str:
        """Invoke an action; blocks for the network + API round trip only.

        Retries transient network failures and 429 throttles (both grow with
        latency in the paper's account of slow WAN spawning).
        """
        params = params or {}
        while True:
            self.link.request_with_retries(
                INVOKE_PAYLOAD_BYTES,
                retries=self.RETRIES,
                backoff=self.RETRY_BACKOFF,
            )
            try:
                activation_id = self.platform.invoke(
                    namespace, action_name, params, credentials=self.credentials
                )
            except ThrottledError:
                self._throttle_retries += 1
                self.platform.kernel.sleep(THROTTLE_BACKOFF)
                continue
            self._invocations += 1
            return activation_id

    def invoke_blocking(
        self,
        namespace: str,
        action_name: str,
        params: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> ActivationRecord:
        activation_id = self.invoke(namespace, action_name, params)
        return self.wait(activation_id, timeout=timeout)

    def wait(
        self, activation_id: str, timeout: Optional[float] = None
    ) -> ActivationRecord:
        """Wait for an activation and fetch its record (one round trip)."""
        record = self.platform.wait_activation(activation_id, timeout=timeout)
        self.link.request_with_retries(0)
        return record
