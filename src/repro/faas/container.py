"""Containers: the unit of warm/cold execution on an invoker node."""

from __future__ import annotations

import itertools
from typing import Optional

_container_ids = itertools.count(1)


class Container:
    """A (simulated) Docker container bound to one action.

    OpenWhisk warms containers per action: after an activation finishes, the
    container parks in the invoker's idle pool and a subsequent activation
    of the *same action* reuses it with no start latency.

    Cached intermediates are tagged with the container that produced (or
    fetched) them: the container's memory is where they physically live, so
    its reclaim — idle eviction, pressure, or a chaos-injected crash —
    drops those entries from the node's cache and readers fall back to a
    peer copy or COS (see :mod:`repro.cache`).
    """

    IDLE = "idle"
    BUSY = "busy"
    STOPPED = "stopped"
    #: the container died mid-activation (injected crash/hang) — unlike
    #: STOPPED it never returned to the warm pool
    CRASHED = "crashed"

    def __init__(
        self,
        action_fqn: str,
        runtime: str,
        memory_mb: int,
        created: float,
        invoker_id: int,
    ) -> None:
        self.container_id = f"wsk-cont-{next(_container_ids):06d}"
        self.action_fqn = action_fqn
        self.runtime = runtime
        self.memory_mb = memory_mb
        self.created = created
        self.invoker_id = invoker_id
        self.state = Container.BUSY
        self.last_used = created
        self.activations_served = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Container {self.container_id} {self.action_fqn} "
            f"{self.memory_mb}MB {self.state}>"
        )
