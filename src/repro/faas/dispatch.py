"""Weighted-fair dispatch across tenant namespaces (deficit round robin).

Under overload the controller used to drain accepted invocations in pure
arrival order, so one namespace's storm could park every other tenant's
work behind its backlog.  :class:`FairDispatchQueue` replaces that with
the classic deficit-round-robin scheduler (Shreedhar & Varghese, '95):
each tenant owns a FIFO queue and a *deficit counter*; every time the
round-robin pointer visits a backlogged tenant its deficit grows by
``quantum * weight``, and the tenant may dispatch work while the deficit
covers the head item's cost.  Service shares therefore converge to the
weight ratio, no tenant is ever starved, and a tenant that goes idle
forfeits its credit (deficit resets on re-activation) so it cannot bank
capacity while empty.

The structure is deliberately *pure*: no locks, no clocks, no RNG — the
controller serializes access under its own lock, and the hypothesis
property suite (``tests/faas/test_dispatch_properties.py``) pins the
fairness contract directly on this class:

* **work-conserving** — ``pop()`` returns an item whenever any tenant
  queue is non-empty;
* **weight-proportional** — long-run service shares track weights within
  a bounded deficit (``quantum * weight + max_cost``);
* **per-tenant FIFO** — items of one tenant dispatch in push order;
* **deterministic** — the dispatch order is a pure function of the push
  sequence and the weights.

``policy="fifo"`` keeps the old first-come order behind the same API —
the "unfair baseline" the tenant-storm bench measures against.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

__all__ = ["FairDispatchQueue", "POLICIES"]

#: dispatch policies: deficit round robin, or the first-come baseline
POLICIES = ("drr", "fifo")


class FairDispatchQueue:
    """Per-tenant FIFO queues drained by deficit round robin.

    ``quantum`` is the service credit (in cost units) a weight-1.0 tenant
    earns per round-robin visit.  Costs default to 1.0 (count-fair); the
    controller passes action memory so shares are memory-fair.
    """

    def __init__(self, policy: str = "drr", quantum: float = 1.0) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"dispatch policy must be one of {POLICIES}, got {policy!r}"
            )
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.policy = policy
        self.quantum = float(quantum)
        self._weights: dict[str, float] = {}
        self._queues: dict[str, deque] = {}
        # round-robin rotation of tenants with a non-empty queue, in the
        # order they became backlogged (deterministic tie-break)
        self._active: deque[str] = deque()
        self._deficit: dict[str, float] = {}
        # global arrival order, kept only by the fifo baseline policy
        self._arrivals: deque[str] = deque()
        self._len = 0
        self._pushed = 0
        self._popped = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def pending(self, tenant: str) -> int:
        """Queued items for one tenant."""
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def backlogged_tenants(self) -> list[str]:
        """Tenants with a non-empty queue, in rotation order."""
        return list(self._active)

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self._weights[tenant] = float(weight)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, tenant: str, item: Any, cost: float = 1.0) -> None:
        """Append ``item`` to ``tenant``'s FIFO with dispatch ``cost``."""
        if cost <= 0:
            raise ValueError("cost must be positive")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # (re)activation: join the rotation at the back with zero
            # credit — an idle tenant banks nothing
            self._active.append(tenant)
            self._deficit[tenant] = 0.0
        queue.append((item, float(cost)))
        if self.policy == "fifo":
            self._arrivals.append(tenant)
        self._len += 1
        self._pushed += 1

    def pop(self) -> Optional[tuple[str, Any, float]]:
        """Dispatch the next item as ``(tenant, item, cost)``.

        Returns ``None`` only when every queue is empty (the structure is
        work-conserving).  Under ``"fifo"`` this is global arrival order;
        under ``"drr"`` the deficit-round-robin order described above.
        """
        if self._len == 0:
            return None
        if self.policy == "fifo":
            return self._pop_fifo()
        return self._pop_drr()

    def _pop_fifo(self) -> tuple[str, Any, float]:
        # per-tenant FIFOs + the global arrival deque agree on heads, so
        # popping the arrival tenant's head IS global first-come order
        tenant = self._arrivals.popleft()
        queue = self._queues[tenant]
        item, cost = queue.popleft()
        self._finish_pop(tenant, queue)
        return tenant, item, cost

    def _pop_drr(self) -> tuple[str, Any, float]:
        while True:
            tenant = self._active[0]
            queue = self._queues[tenant]
            head_cost = queue[0][1]
            if self._deficit[tenant] + 1e-12 >= head_cost:
                item, cost = queue.popleft()
                self._deficit[tenant] -= cost
                self._finish_pop(tenant, queue)
                return tenant, item, cost
            # insufficient credit: earn one quantum and move to the back
            self._deficit[tenant] += self.quantum * self.weight(tenant)
            self._active.rotate(-1)

    def _finish_pop(self, tenant: str, queue: deque) -> None:
        self._len -= 1
        self._popped += 1
        if not queue:
            try:
                self._active.remove(tenant)
            except ValueError:
                pass
            self._deficit[tenant] = 0.0

    def stats(self) -> dict[str, int]:
        return {"pushed": self._pushed, "popped": self._popped, "pending": self._len}
