"""Identity and access management for the platform.

IBM Cloud Functions namespaces are per-tenant: an API key authenticates a
client and authorizes it for exactly one namespace, and the §3 concurrency
limit ("maximum 1,000 concurrent invocations") applies per namespace, not
per cluster.  In a multi-tenant region (a
:class:`~repro.faas.tenants.TenantRegistry` attached) this is the
isolation boundary: a key for tenant A can never invoke, list or read
activations in tenant B's namespace.  Enforcement stays optional
(``require_auth``, off by default so the paper's one-tenant experiment
scripts run unchanged) but both properties hold whenever it is on.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from dataclasses import dataclass

from repro.faas.errors import FaaSError


class AuthenticationError(FaaSError):
    """Unknown or revoked API key, or bad secret."""


class AuthorizationError(FaaSError):
    """Valid key, wrong namespace."""


@dataclass(frozen=True)
class ApiKey:
    """A credential bound to one namespace."""

    key_id: str
    secret: str
    namespace: str


class IAM:
    """Key issuance and verification."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._counter = itertools.count(1)
        self._keys: dict[str, ApiKey] = {}
        self._lock = threading.Lock()

    def create_api_key(self, namespace: str) -> ApiKey:
        """Issue a key for ``namespace`` (deterministic given the seed)."""
        if not namespace:
            raise ValueError("namespace must be non-empty")
        with self._lock:
            n = next(self._counter)
            key_id = f"key-{hashlib.sha256(f'{self._seed}:{n}:id'.encode()).hexdigest()[:12]}"
            secret = hashlib.sha256(f"{self._seed}:{n}:secret".encode()).hexdigest()[:32]
            key = ApiKey(key_id, secret, namespace)
            self._keys[key_id] = key
            return key

    def revoke(self, key_id: str) -> None:
        with self._lock:
            self._keys.pop(key_id, None)

    def authenticate(self, key_id: str, secret: str) -> str:
        """Return the key's namespace or raise :class:`AuthenticationError`."""
        with self._lock:
            key = self._keys.get(key_id)
        if key is None or key.secret != secret:
            raise AuthenticationError(f"invalid API key {key_id!r}")
        return key.namespace

    def authorize(self, key: ApiKey, namespace: str) -> None:
        """Verify ``key`` may act on ``namespace``."""
        granted = self.authenticate(key.key_id, key.secret)
        if granted != namespace:
            raise AuthorizationError(
                f"key {key.key_id!r} is bound to namespace {granted!r}, "
                f"not {namespace!r}"
            )
