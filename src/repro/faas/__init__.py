"""Emulated IBM Cloud Functions (Apache OpenWhisk-like FaaS platform)."""

from repro.faas.action import Action, Namespace
from repro.faas.activation import ActivationRecord, ActivationStatus
from repro.faas.billing import (
    PRICE_PER_GB_SECOND,
    BillingEntry,
    BillingMeter,
    billed_duration,
)
from repro.faas.container import Container
from repro.faas.controller import CloudFunctions, ExecutionContext
from repro.faas.dispatch import FairDispatchQueue
from repro.faas.errors import (
    ActionNotFound,
    ActivationNotFound,
    FaaSError,
    FunctionTimeoutError,
    NamespaceNotFound,
    RuntimeNotFound,
    ThrottledError,
)
from repro.faas.gateway import CloudFunctionsClient
from repro.faas.iam import (
    IAM,
    ApiKey,
    AuthenticationError,
    AuthorizationError,
)
from repro.faas.invoker_node import InvokerNode
from repro.faas.limits import SystemLimits
from repro.faas.runtime import (
    DEFAULT_RUNTIME_NAME,
    RuntimeImage,
    RuntimeRegistry,
)
from repro.faas.tenants import TenantNotFound, TenantRegistry

__all__ = [
    "Action",
    "Namespace",
    "ActivationRecord",
    "ActivationStatus",
    "Container",
    "CloudFunctions",
    "CloudFunctionsClient",
    "ExecutionContext",
    "InvokerNode",
    "SystemLimits",
    "RuntimeImage",
    "RuntimeRegistry",
    "DEFAULT_RUNTIME_NAME",
    "FaaSError",
    "ActionNotFound",
    "NamespaceNotFound",
    "ActivationNotFound",
    "RuntimeNotFound",
    "ThrottledError",
    "FunctionTimeoutError",
    "BillingMeter",
    "BillingEntry",
    "billed_duration",
    "PRICE_PER_GB_SECOND",
    "IAM",
    "ApiKey",
    "AuthenticationError",
    "AuthorizationError",
    "FairDispatchQueue",
    "TenantRegistry",
    "TenantNotFound",
]
