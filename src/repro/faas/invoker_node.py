"""Invoker nodes: the machines containers are placed on.

Each node has a fixed memory budget.  Idle (warm) containers keep holding
memory until evicted by TTL or by pressure from a new placement — this is
what makes warm-start behaviour and cluster capacity interact the way the
paper's elasticity experiment (§6.2) exercises.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.faas.action import Action
from repro.faas.container import Container


class Placement:
    """Result of a successful placement on a node."""

    __slots__ = ("container", "cold", "needs_pull")

    def __init__(self, container: Container, cold: bool, needs_pull: bool) -> None:
        self.container = container
        self.cold = cold
        self.needs_pull = needs_pull


class InvokerNode:
    """One node of the Cloud Functions cluster."""

    def __init__(self, node_id: int, memory_mb: int, warm_idle_ttl: float) -> None:
        self.node_id = node_id
        self.memory_mb = memory_mb
        self.warm_idle_ttl = warm_idle_ttl
        self._used_mb = 0
        self._idle: dict[str, list[Container]] = {}
        self._cached_images: set[str] = set()
        self._lock = threading.Lock()
        self.cold_starts = 0
        self.warm_starts = 0
        #: scheduled (start, end) windows during which this node accepts no
        #: placements (chaos-plane blackouts); empty by default
        self.blackouts: list[tuple[float, float]] = []
        #: the :class:`~repro.cache.CachePlane`, or ``None`` when the cache
        #: tier is disabled.  Cached intermediates live in container memory,
        #: so reclaiming a container drops its entries from this node's cache.
        self.cache_plane = None
        # (container_id, reason) pairs evicted under self._lock, reclaimed
        # from the cache plane once the lock is released (lock order:
        # node lock strictly before any cache-plane lock)
        self._doomed_containers: list[tuple[str, str]] = []

    # -- availability --------------------------------------------------------
    def available(self, now: float) -> bool:
        """Whether the node accepts placements at virtual time ``now``."""
        return not any(start <= now < end for start, end in self.blackouts)

    # -- image cache -------------------------------------------------------
    def image_cached(self, runtime: str) -> bool:
        with self._lock:
            return runtime in self._cached_images

    def cache_image(self, runtime: str) -> None:
        with self._lock:
            self._cached_images.add(runtime)

    # -- capacity ------------------------------------------------------------
    @property
    def used_mb(self) -> int:
        with self._lock:
            return self._used_mb

    @property
    def free_mb(self) -> int:
        with self._lock:
            return self.memory_mb - self._used_mb

    def load_fraction(self) -> float:
        """Fraction of this node's memory held by containers (0..1).

        Used by the CPU-contention model: a packed node gives each
        function a smaller compute share.
        """
        with self._lock:
            return self._used_mb / self.memory_mb if self.memory_mb else 0.0

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._idle.values())

    # -- placement -----------------------------------------------------------
    def try_place_warm(self, action: Action, now: float) -> Optional[Placement]:
        """Reuse a warm idle container of ``action``, if this node has one."""
        placement = None
        with self._lock:
            self._expire_idle_locked(now)
            pool = self._idle.get(action.fqn)
            if pool:
                container = pool.pop()
                container.state = Container.BUSY
                container.last_used = now
                self.warm_starts += 1
                placement = Placement(container, cold=False, needs_pull=False)
        self._flush_doomed_containers()
        return placement

    def try_place(self, action: Action, now: float) -> Optional[Placement]:
        """Try to place an activation of ``action`` on this node.

        Preference order, mirroring OpenWhisk's container pool:
        1. reuse a warm idle container of the same action;
        2. start a cold container if free memory allows;
        3. evict idle containers (stalest first) to make room.

        Returns ``None`` when the node cannot host the activation.
        """
        warm = self.try_place_warm(action, now)
        if warm is not None:
            return warm
        return self.try_place_cold(action, now)

    def _flush_doomed_containers(self) -> None:
        """Drop cached entries of containers evicted while holding the lock."""
        if not self._doomed_containers:
            return
        with self._lock:
            doomed, self._doomed_containers = self._doomed_containers, []
        plane = self.cache_plane
        if plane is not None:
            for container_id, reason in doomed:
                plane.reclaim_container(self.node_id, container_id, reason)

    def try_place_cold(self, action: Action, now: float) -> Optional[Placement]:
        """Start a cold container, evicting idle ones for room if needed.

        Skips the warm check: callers that already scanned the cluster for
        warm containers (the controller's placement loop) use this directly.
        """
        placement = None
        with self._lock:
            if self._make_room_locked(action.memory_mb, now):
                self._used_mb += action.memory_mb
                container = Container(
                    action.fqn, action.runtime, action.memory_mb, now, self.node_id
                )
                self.cold_starts += 1
                needs_pull = action.runtime not in self._cached_images
                placement = Placement(container, cold=True, needs_pull=needs_pull)
        self._flush_doomed_containers()
        return placement

    def release(self, container: Container, now: float) -> None:
        """Return a finished container to the warm pool."""
        with self._lock:
            container.state = Container.IDLE
            container.last_used = now
            container.activations_served += 1
            self._idle.setdefault(container.action_fqn, []).append(container)

    def discard(self, container: Container, crashed: bool = False) -> None:
        """Destroy a busy container (crash path): frees its memory.

        Any intermediates the container held in the node cache die with it;
        readers transparently fall back to a peer copy or to COS.
        """
        with self._lock:
            container.state = Container.CRASHED if crashed else Container.STOPPED
            self._used_mb -= container.memory_mb
        plane = self.cache_plane
        if plane is not None:
            plane.reclaim_container(
                self.node_id,
                container.container_id,
                "crash" if crashed else "stop",
            )

    def _make_room_locked(self, needed_mb: int, now: float) -> bool:
        if self.memory_mb - self._used_mb >= needed_mb:
            return True
        # Evict stalest idle containers until the request fits.
        idle_all = sorted(
            (c for pool in self._idle.values() for c in pool),
            key=lambda c: c.last_used,
        )
        for victim in idle_all:
            self._evict_locked(victim)
            if self.memory_mb - self._used_mb >= needed_mb:
                return True
        return self.memory_mb - self._used_mb >= needed_mb

    def _evict_locked(self, container: Container) -> None:
        pool = self._idle.get(container.action_fqn, [])
        if container in pool:
            pool.remove(container)
            container.state = Container.STOPPED
            self._used_mb -= container.memory_mb
            if self.cache_plane is not None:
                self._doomed_containers.append(
                    (container.container_id, "reclaim")
                )

    def _expire_idle_locked(self, now: float) -> None:
        for pool in list(self._idle.values()):
            for container in list(pool):
                if now - container.last_used > self.warm_idle_ttl:
                    self._evict_locked(container)
