"""Errors raised by the emulated IBM Cloud Functions platform."""

from __future__ import annotations


class FaaSError(Exception):
    """Base class for platform errors."""


class ActionNotFound(FaaSError):
    """Invocation referenced an action that was never created."""


class NamespaceNotFound(FaaSError):
    """Unknown namespace."""


class ThrottledError(FaaSError):
    """HTTP 429: the per-namespace concurrent-invocation limit was hit.

    Clients are expected to back off and retry, like IBM-PyWren's client
    does when spawning thousands of functions.  The controller populates
    ``retry_after`` (seconds) from its current load — a ``Retry-After``
    header — and well-behaved clients honor it instead of their own
    backoff schedule.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RuntimeNotFound(FaaSError):
    """The action references a runtime image not present in the registry."""


class ActivationNotFound(FaaSError):
    """Unknown activation id."""


class FunctionTimeoutError(FaaSError):
    """The function exceeded the platform execution time limit."""
