"""Errors raised by the emulated IBM Cloud Functions platform."""

from __future__ import annotations


class FaaSError(Exception):
    """Base class for platform errors."""


class ActionNotFound(FaaSError):
    """Invocation referenced an action that was never created."""


class NamespaceNotFound(FaaSError):
    """Unknown namespace."""


class ThrottledError(FaaSError):
    """HTTP 429: an invocation was refused for capacity or quota reasons.

    Clients are expected to back off and retry, like IBM-PyWren's client
    does when spawning thousands of functions.  The controller populates
    ``retry_after`` (seconds) from its current load — a ``Retry-After``
    header — and well-behaved clients honor it instead of their own
    backoff schedule.  When a :class:`~repro.faas.tenants.TenantRegistry`
    refuses the call, ``reason`` names the exhausted quota (``"rate"``,
    ``"concurrency"``, ``"memory"`` or ``"queue"``); the legacy
    per-namespace concurrency limit and chaos-injected 429s leave it
    ``None``.
    """

    def __init__(
        self,
        message: str,
        retry_after: float | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class RuntimeNotFound(FaaSError):
    """The action references a runtime image not present in the registry."""


class ActivationNotFound(FaaSError):
    """Unknown activation id."""


class FunctionTimeoutError(FaaSError):
    """The function exceeded the platform execution time limit."""
