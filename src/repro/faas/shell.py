"""An ``ibmcloud fn`` / ``wsk``-style command shell over the platform.

IBM Cloud Functions is operated through the OpenWhisk CLI (``wsk action
list``, ``wsk activation get`` ...).  :class:`WskShell` provides the same
read-side verbs against an emulated environment, so examples and tests can
inspect deployed actions, activations, runtimes and billing the way an
operator would.
"""

from __future__ import annotations

import shlex
from typing import Callable

from repro.faas.errors import ActivationNotFound


class ShellError(Exception):
    """Bad command or unknown entity; message is user-facing."""


class WskShell:
    """Parse-and-run for a small ``wsk``-like command language."""

    def __init__(self, environment) -> None:
        self.environment = environment
        self._commands: dict[tuple[str, str], Callable[[list[str]], str]] = {
            ("action", "list"): self._action_list,
            ("action", "get"): self._action_get,
            ("activation", "list"): self._activation_list,
            ("activation", "get"): self._activation_get,
            ("activation", "logs"): self._activation_logs,
            ("activation", "result"): self._activation_result,
            ("runtime", "list"): self._runtime_list,
            ("namespace", "list"): self._namespace_list,
            ("billing", "summary"): self._billing_summary,
            ("property", "get"): self._property_get,
        }

    def run(self, command: str) -> str:
        """Execute one command line; returns its printable output."""
        try:
            tokens = shlex.split(command)
        except ValueError as exc:
            raise ShellError(f"unparsable command: {exc}") from exc
        if len(tokens) < 2:
            raise ShellError(self._usage())
        handler = self._commands.get((tokens[0], tokens[1]))
        if handler is None:
            raise ShellError(
                f"unknown command {tokens[0]!r} {tokens[1]!r}\n{self._usage()}"
            )
        return handler(tokens[2:])

    def _usage(self) -> str:
        verbs = sorted(" ".join(k) for k in self._commands)
        return "commands: " + ", ".join(verbs)

    # -- actions -----------------------------------------------------------
    def _action_list(self, args: list[str]) -> str:
        namespace = args[0] if args else self.environment.config.namespace
        ns = self.environment.platform.namespace(namespace, create=False)
        lines = [f"actions in /{namespace}"]
        for name in ns.list_actions():
            action = ns.get(name)
            lines.append(
                f"  /{namespace}/{name:<42} {action.memory_mb}MB "
                f"{action.runtime}"
            )
        return "\n".join(lines)

    def _action_get(self, args: list[str]) -> str:
        if not args:
            raise ShellError("usage: action get <name> [namespace]")
        name = args[0]
        namespace = args[1] if len(args) > 1 else self.environment.config.namespace
        action = self.environment.platform.namespace(namespace, create=False).get(name)
        return (
            f"name:      {action.fqn}\n"
            f"runtime:   {action.runtime}\n"
            f"memory:    {action.memory_mb}MB\n"
            f"timeout:   {action.timeout_s:.0f}s"
        )

    # -- activations ---------------------------------------------------------
    def _activation_list(self, args: list[str]) -> str:
        limit = int(args[args.index("--limit") + 1]) if "--limit" in args else 20
        records = self.environment.platform.activations()[-limit:]
        lines = [f"activations (last {len(records)})"]
        for record in reversed(records):
            duration = record.duration
            lines.append(
                f"  {record.activation_id}  {record.action_name:<40} "
                f"{record.status or 'running':<8} "
                f"{'' if duration is None else f'{duration:8.2f}s'}"
            )
        return "\n".join(lines)

    def _record(self, args: list[str]):
        if not args:
            raise ShellError("usage: activation <get|logs|result> <id>")
        try:
            return self.environment.platform.get_activation(args[0])
        except ActivationNotFound:
            raise ShellError(f"no activation {args[0]!r}") from None

    def _activation_get(self, args: list[str]) -> str:
        record = self._record(args)
        return (
            f"activation: {record.activation_id}\n"
            f"action:     {record.namespace}/{record.action_name}\n"
            f"status:     {record.status or 'running'}\n"
            f"submitted:  {record.submit_time:.2f}s\n"
            f"started:    {'' if record.start_time is None else f'{record.start_time:.2f}s'}\n"
            f"ended:      {'' if record.end_time is None else f'{record.end_time:.2f}s'}\n"
            f"cold start: {record.cold_start}\n"
            f"container:  {record.container_id}\n"
            f"invoker:    {record.invoker_id}"
        )

    def _activation_logs(self, args: list[str]) -> str:
        record = self._record(args)
        if not record.logs:
            return "(no logs)"
        return "\n".join(f"[{t:10.2f}s] {msg}" for t, msg in record.logs)

    def _activation_result(self, args: list[str]) -> str:
        record = self._record(args)
        if not record.finished:
            return "(still running)"
        if record.error:
            return f"error: {record.error}"
        return repr(record.result)

    # -- platform --------------------------------------------------------------
    def _runtime_list(self, _args: list[str]) -> str:
        registry = self.environment.registry
        lines = ["runtimes"]
        for name in registry.list_images():
            image = registry.get(name)
            lines.append(
                f"  {name:<28} {image.size_mb:>5}MB  python {image.python_version}"
                f"  ({len(image.packages)} packages, owner {image.owner})"
            )
        return "\n".join(lines)

    def _namespace_list(self, _args: list[str]) -> str:
        platform = self.environment.platform
        names = sorted(platform._namespaces)
        return "namespaces\n" + "\n".join(f"  /{n}" for n in names)

    def _billing_summary(self, _args: list[str]) -> str:
        meter = self.environment.platform.billing
        lines = [
            f"activations: {meter.activations}",
            f"GB-seconds:  {meter.total_gb_seconds():.2f}",
            f"cost:        ${meter.total_cost():.6f}",
        ]
        for action, gbs in sorted(meter.by_action().items()):
            lines.append(f"  {action:<46} {gbs:10.2f} GB-s")
        return "\n".join(lines)

    def _property_get(self, _args: list[str]) -> str:
        limits = self.environment.platform.limits
        return (
            f"max_exec_seconds:  {limits.max_exec_seconds:.0f}\n"
            f"max_memory_mb:     {limits.max_memory_mb}\n"
            f"max_concurrent:    {limits.max_concurrent}\n"
            f"invoker_count:     {limits.invoker_count}\n"
            f"invoker_memory_mb: {limits.invoker_memory_mb}"
        )
