"""The tenant registry: quotas, admission control and per-tenant accounting.

A public FaaS region serves thousands of namespaces at once; the paper's
experiments were run against exactly such a shared region, where the §3
limits ("maximum 1,000 concurrent invocations") are enforced *per tenant*.
This module is the control-plane half of that story: a
:class:`TenantRegistry` holds one :class:`~repro.config.TenantConfig` per
namespace and answers, per incoming invocation, "may this tenant admit
one more?" — by concurrency quota, in-flight memory quota, token-bucket
invocation rate and dispatch-queue depth.  A refusal is an HTTP 429
(:class:`~repro.faas.errors.ThrottledError`) with a ``retry_after`` hint
and a machine-readable ``reason``, which the gateway client backs off on.

The registry is pure bookkeeping on the virtual clock: no RNG, no kernel
tasks.  Attaching one to a platform
(:meth:`~repro.faas.controller.CloudFunctions.attach_tenants`) is what
switches the controller from first-come scheduling to the weighted-fair
dispatch queue (:mod:`repro.faas.dispatch`); with no registry attached
the platform behaves exactly as the single-tenant emulation always did.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Union

from repro.config import TenantConfig
from repro.faas.dispatch import POLICIES
from repro.faas.errors import FaaSError, ThrottledError

__all__ = ["TenantRegistry", "TenantNotFound", "TenantState"]


class TenantNotFound(FaaSError):
    """Invocation for a namespace no registered tenant owns."""


class TenantState:
    """Runtime accounting for one tenant (all mutation under registry lock)."""

    __slots__ = (
        "config",
        "inflight",
        "inflight_mb",
        "pending",
        "tokens",
        "token_time",
        "admitted",
        "dispatched",
        "completed",
        "throttled",
    )

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        #: admitted invocations not yet finished (queued + running)
        self.inflight = 0
        #: action memory (MB) held by in-flight invocations
        self.inflight_mb = 0
        #: invocations sitting in the fair-dispatch queue
        self.pending = 0
        #: token bucket for the invocation-rate quota
        self.tokens = float(config.rate_burst)
        self.token_time = 0.0
        self.admitted = 0
        self.dispatched = 0
        self.completed = 0
        #: 429 counts by reason: rate | concurrency | memory | queue
        self.throttled: dict[str, int] = {}

    def snapshot(self) -> dict:
        return {
            "tenant": self.config.name,
            "weight": self.config.weight,
            "inflight": self.inflight,
            "inflight_mb": self.inflight_mb,
            "pending": self.pending,
            "admitted": self.admitted,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "throttled": dict(self.throttled),
        }


class TenantRegistry:
    """All tenants of one emulated region, plus the dispatch policy.

    ``policy`` selects how the controller drains admitted work under
    overload: ``"drr"`` (weighted-fair deficit round robin, the default)
    or ``"fifo"`` (the historical first-come order — kept as the unfair
    baseline the tenant-storm bench measures against).

    ``default`` is an optional :class:`TenantConfig` template: when set,
    an invocation for an unregistered namespace lazily registers a copy
    of it (with ``name`` rebound); when ``None``, unknown namespaces are
    rejected with :class:`TenantNotFound`.
    """

    def __init__(
        self,
        tenants: Iterable[TenantConfig] = (),
        default: Optional[TenantConfig] = None,
        policy: str = "drr",
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"dispatch policy must be one of {POLICIES}, got {policy!r}"
            )
        self.policy = policy
        self.default = default
        if default is not None:
            default.validate()
        self._states: dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self._throttled_total = 0
        for tenant in tenants:
            self.register(tenant)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, tenant: Union[TenantConfig, str]) -> TenantConfig:
        """Register a tenant (idempotent for an identical config)."""
        if isinstance(tenant, str):
            tenant = TenantConfig(name=tenant)
        tenant.validate()
        with self._lock:
            existing = self._states.get(tenant.name)
            if existing is not None:
                if existing.config != tenant:
                    raise ValueError(
                        f"tenant {tenant.name!r} already registered with a "
                        f"different config"
                    )
                return existing.config
            self._states[tenant.name] = TenantState(tenant)
        return tenant

    def get(self, namespace: str) -> TenantConfig:
        """The config owning ``namespace`` (raises :class:`TenantNotFound`)."""
        return self._state(namespace).config

    def known(self, namespace: str) -> bool:
        with self._lock:
            return namespace in self._states

    def names(self) -> list[str]:
        with self._lock:
            return list(self._states)

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    def _state(self, namespace: str) -> TenantState:
        with self._lock:
            state = self._states.get(namespace)
            if state is None:
                if self.default is None:
                    raise TenantNotFound(
                        f"namespace {namespace!r} has no registered tenant"
                    )
                import dataclasses

                config = dataclasses.replace(self.default, name=namespace)
                state = self._states[namespace] = TenantState(config)
            return state

    # ------------------------------------------------------------------
    # Admission control (the gateway-facing 429 surface)
    # ------------------------------------------------------------------
    def admit(self, namespace: str, memory_mb: int, now: float) -> TenantState:
        """Admit one invocation of ``memory_mb`` at virtual time ``now``.

        Checks, in order: invocation rate (token bucket), concurrency
        quota, in-flight memory quota, dispatch-queue depth.  All checks
        pass → the token is consumed and the in-flight counters charged
        atomically; any failure raises :class:`ThrottledError` carrying
        ``retry_after`` and a ``reason`` without consuming anything.
        """
        state = self._state(namespace)
        config = state.config
        with self._lock:
            # refill the bucket lazily on the virtual clock
            if config.rate_per_s is not None:
                elapsed = max(0.0, now - state.token_time)
                state.tokens = min(
                    float(config.rate_burst),
                    state.tokens + elapsed * config.rate_per_s,
                )
                state.token_time = now
                if state.tokens < 1.0:
                    retry_after = (1.0 - state.tokens) / config.rate_per_s
                    self._throttle_locked(state, "rate")
                    raise ThrottledError(
                        f"tenant {namespace!r} over invocation rate "
                        f"({config.rate_per_s}/s)",
                        retry_after=round(retry_after, 3),
                        reason="rate",
                    )
            if (
                config.max_concurrent is not None
                and state.inflight >= config.max_concurrent
            ):
                self._throttle_locked(state, "concurrency")
                raise ThrottledError(
                    f"tenant {namespace!r} at concurrency quota "
                    f"({config.max_concurrent})",
                    retry_after=self._load_hint(
                        state.inflight, config.max_concurrent
                    ),
                    reason="concurrency",
                )
            if (
                config.memory_quota_mb is not None
                and state.inflight_mb + memory_mb > config.memory_quota_mb
            ):
                self._throttle_locked(state, "memory")
                raise ThrottledError(
                    f"tenant {namespace!r} over memory quota "
                    f"({config.memory_quota_mb}MB)",
                    retry_after=self._load_hint(
                        state.inflight_mb, config.memory_quota_mb
                    ),
                    reason="memory",
                )
            if (
                config.max_pending is not None
                and state.pending >= config.max_pending
            ):
                self._throttle_locked(state, "queue")
                raise ThrottledError(
                    f"tenant {namespace!r} dispatch queue full "
                    f"({config.max_pending} pending)",
                    retry_after=self._load_hint(
                        state.pending, config.max_pending
                    ),
                    reason="queue",
                )
            if config.rate_per_s is not None:
                state.tokens -= 1.0
            state.inflight += 1
            state.inflight_mb += memory_mb
            state.pending += 1
            state.admitted += 1
        return state

    @staticmethod
    def _load_hint(current: float, quota: float) -> float:
        """``Retry-After`` seconds scaled with quota pressure (cf. the
        controller's per-namespace hint)."""
        fraction = min(1.0, current / max(1.0, quota))
        return round(0.25 + 0.75 * fraction, 3)

    def _throttle_locked(self, state: TenantState, reason: str) -> None:
        state.throttled[reason] = state.throttled.get(reason, 0) + 1
        self._throttled_total += 1

    # ------------------------------------------------------------------
    # Lifecycle accounting (controller-facing)
    # ------------------------------------------------------------------
    def on_dispatched(self, namespace: str) -> None:
        """An admitted invocation left the queue for an invoker."""
        state = self._state(namespace)
        with self._lock:
            state.pending -= 1
            state.dispatched += 1

    def on_complete(self, namespace: str, memory_mb: int) -> None:
        """An in-flight invocation finished (any status)."""
        state = self._state(namespace)
        with self._lock:
            state.inflight -= 1
            state.inflight_mb -= memory_mb
            state.completed += 1

    def release_admission(self, namespace: str, memory_mb: int) -> None:
        """Roll back an admission that never reached the queue (the
        chaos plane's synthetic 429 fires after quota admission)."""
        state = self._state(namespace)
        with self._lock:
            state.inflight -= 1
            state.inflight_mb -= memory_mb
            state.pending -= 1
            state.admitted -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def inflight(self, namespace: str) -> int:
        return self._state(namespace).inflight

    def pending(self, namespace: str) -> int:
        return self._state(namespace).pending

    @property
    def throttled_total(self) -> int:
        with self._lock:
            return self._throttled_total

    def stats(self) -> dict[str, dict]:
        """Per-tenant accounting snapshot, keyed by namespace."""
        with self._lock:
            return {
                name: state.snapshot() for name, state in self._states.items()
            }

    def weights(self) -> dict[str, float]:
        with self._lock:
            return {
                name: state.config.weight
                for name, state in self._states.items()
            }
