"""Activation records: one per function invocation, like OpenWhisk's."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class ActivationStatus:
    """Terminal states of an activation."""

    SUCCESS = "success"
    ERROR = "error"
    TIMEOUT = "timeout"

    ALL = (SUCCESS, ERROR, TIMEOUT)


@dataclass
class ActivationRecord:
    """Everything the platform knows about one invocation.

    Timestamps are virtual-time seconds.  ``start_time`` is when the handler
    began executing (after any cold start); ``submit_time`` is when the
    controller accepted the request; the difference is the platform-side
    wait (scheduling + container provisioning).
    """

    activation_id: str
    namespace: str
    action_name: str
    submit_time: float
    #: when the fair dispatcher released this invocation to placement
    #: (multi-tenant regions only; ``None`` on the legacy direct path)
    dispatch_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    cold_start: bool = False
    image_pulled: bool = False
    invoker_id: Optional[int] = None
    container_id: Optional[str] = None
    status: Optional[str] = None
    result: Any = None
    error: Optional[str] = None
    #: (virtual timestamp, message) pairs from ``ctx.log()``
    logs: list[tuple[float, str]] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status is not None

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def interval(self) -> tuple[float, float]:
        """(start, end) execution interval; requires a finished activation."""
        if self.start_time is None or self.end_time is None:
            raise ValueError(f"activation {self.activation_id} not finished")
        return (self.start_time, self.end_time)
