"""Docker-style runtimes and the shared image registry (§3.1).

IBM Cloud Functions runs actions inside Docker images.  Users may publish
custom images (extra Python/system packages) to a hub-like registry and
share them; an invoker node pulls an image the first time it runs it and
caches it afterwards ("the Docker container is cached in an internal
registry").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.faas.errors import RuntimeNotFound

#: The default IBM Cloud Functions Python runtime (§3.1).
DEFAULT_RUNTIME_NAME = "python-jessie:3"

#: Packages preinstalled in the default runtime (representative subset of
#: the real image's package list referenced by the paper).
DEFAULT_RUNTIME_PACKAGES = frozenset(
    {
        "numpy",
        "scipy",
        "pandas",
        "scikit-learn",
        "requests",
        "beautifulsoup4",
        "ibm-cos-sdk",
        "redis",
        "elasticsearch",
        "cloudant",
    }
)


@dataclass(frozen=True)
class RuntimeImage:
    """An immutable runtime image published to the registry."""

    name: str
    owner: str = "ibm"
    python_version: str = "3.6"
    packages: frozenset[str] = DEFAULT_RUNTIME_PACKAGES
    size_mb: int = 450

    def with_packages(
        self, extra: Iterable[str], name: str, owner: str, size_mb: Optional[int] = None
    ) -> "RuntimeImage":
        """Derive a custom runtime adding ``extra`` packages (user workflow)."""
        pkgs = frozenset(self.packages) | frozenset(extra)
        return RuntimeImage(
            name=name,
            owner=owner,
            python_version=self.python_version,
            packages=pkgs,
            size_mb=size_mb if size_mb is not None else self.size_mb + 25 * len(set(extra) - set(self.packages)),
        )

    def has_package(self, package: str) -> bool:
        return package in self.packages


class RuntimeRegistry:
    """A Docker-hub-like registry of runtime images.

    Publishing is idempotent per (name) with last-write-wins, matching how
    tags behave on a real registry.  Images are public: any user can pull by
    name, which is precisely the sharing workflow §3.1 describes
    (a user builds ``matplotlib`` into an image and colleagues reuse it).
    """

    def __init__(self) -> None:
        self._images: dict[str, RuntimeImage] = {}
        self._lock = threading.Lock()
        self.publish(RuntimeImage(name=DEFAULT_RUNTIME_NAME))

    def publish(self, image: RuntimeImage) -> None:
        with self._lock:
            self._images[image.name] = image

    def get(self, name: str) -> RuntimeImage:
        with self._lock:
            try:
                return self._images[name]
            except KeyError:
                raise RuntimeNotFound(
                    f"runtime image {name!r} not in registry "
                    f"(available: {sorted(self._images)})"
                ) from None

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._images

    def list_images(self) -> list[str]:
        with self._lock:
            return sorted(self._images)

    def build_custom_runtime(
        self,
        name: str,
        owner: str,
        extra_packages: Iterable[str],
        base: str = DEFAULT_RUNTIME_NAME,
        python_version: Optional[str] = None,
    ) -> RuntimeImage:
        """Build-and-push helper: derive from ``base`` and publish."""
        base_image = self.get(base)
        image = base_image.with_packages(extra_packages, name=name, owner=owner)
        if python_version is not None:
            image = RuntimeImage(
                name=image.name,
                owner=image.owner,
                python_version=python_version,
                packages=image.packages,
                size_mb=image.size_mb,
            )
        self.publish(image)
        return image
