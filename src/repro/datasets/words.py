"""Synthetic text corpus for the wordcount example and tests."""

from __future__ import annotations

import random
from typing import Optional

from repro.cos.object_store import CloudObjectStorage

_VOCAB = (
    "serverless cloud function data analytics parallel map reduce python "
    "storage object bucket invoke container runtime docker latency "
    "throughput elastic concurrent executor future result partition"
).split()


def generate_document(n_words: int, seed: int = 0) -> str:
    """A deterministic pseudo-document of ``n_words`` words."""
    rng = random.Random(f"doc:{seed}")
    return " ".join(rng.choice(_VOCAB) for _ in range(n_words))


def generate_corpus(n_docs: int, words_per_doc: int = 200, seed: int = 0) -> list[str]:
    """A list of deterministic documents."""
    return [
        generate_document(words_per_doc, seed=seed * 10_000 + i)
        for i in range(n_docs)
    ]


def load_corpus(
    storage: CloudObjectStorage,
    bucket: str = "corpus",
    n_docs: int = 20,
    words_per_doc: int = 200,
    seed: int = 0,
) -> list[str]:
    """Store a corpus in COS (one object per document); returns the keys."""
    storage.create_bucket(bucket, exist_ok=True)
    keys = []
    for i, doc in enumerate(generate_corpus(n_docs, words_per_doc, seed)):
        key = f"docs/doc-{i:04d}.txt"
        storage.put_object(bucket, key, doc.encode("ascii"))
        keys.append(key)
    return keys
