"""Synthetic Airbnb reviews dataset (§6.4's real use case).

The paper processes airbnb.com review datasets for 33 cities obtained from
the IBM Watson Studio Community: total 1.9 GB, 3,695,107 comments, one COS
object per city with "variable size".  We reproduce the dataset's *shape*:
33 city objects whose sizes sum to exactly 1.9 GB, hosted as virtual COS
objects whose content — CSV lines ``lat,lon,review text`` — is generated
deterministically per byte range.

Table 3's executor counts are ``sum(ceil(size/chunk))`` over these sizes,
so the per-city size distribution below (large NYC/Paris/London heads, long
tail) is what reproduces the paper's 47/72/129/242/471/923 concurrency
column.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Optional

from repro.cos.object_store import CloudObjectStorage

#: total dataset size (bytes) — "The total dataset size is of 1.9GB"
TOTAL_SIZE = 1_900_000_000

#: total comments — "a total of 3,695,107 comments"
TOTAL_COMMENTS = 3_695_107

#: default bucket holding one object per city
DEFAULT_BUCKET = "airbnb"

#: (city, relative weight, latitude, longitude) — weights give the heavy
#: head + long tail of the real per-city review volumes
_CITY_TABLE: list[tuple[str, float, float, float]] = [
    ("new-york", 10.0, 40.7128, -74.0060),
    ("paris", 9.0, 48.8566, 2.3522),
    ("london", 8.5, 51.5074, -0.1278),
    ("los-angeles", 6.5, 34.0522, -118.2437),
    ("rome", 5.5, 41.9028, 12.4964),
    ("barcelona", 5.0, 41.3874, 2.1686),
    ("amsterdam", 4.5, 52.3676, 4.9041),
    ("berlin", 4.2, 52.5200, 13.4050),
    ("sydney", 4.0, -33.8688, 151.2093),
    ("toronto", 3.8, 43.6532, -79.3832),
    ("san-francisco", 3.6, 37.7749, -122.4194),
    ("madrid", 3.4, 40.4168, -3.7038),
    ("melbourne", 3.2, -37.8136, 144.9631),
    ("chicago", 3.0, 41.8781, -87.6298),
    ("austin", 2.8, 30.2672, -97.7431),
    ("vancouver", 2.6, 49.2827, -123.1207),
    ("lisbon", 2.5, 38.7223, -9.1393),
    ("copenhagen", 2.4, 55.6761, 12.5683),
    ("dublin", 2.3, 53.3498, -6.2603),
    ("vienna", 2.2, 48.2082, 16.3738),
    ("seattle", 2.1, 47.6062, -122.3321),
    ("boston", 2.0, 42.3601, -71.0589),
    ("washington", 1.9, 38.9072, -77.0369),
    ("montreal", 1.8, 45.5017, -73.5673),
    ("new-orleans", 1.7, 29.9511, -90.0715),
    ("venice", 1.6, 45.4408, 12.3155),
    ("edinburgh", 1.5, 55.9533, -3.1883),
    ("athens", 1.4, 37.9838, 23.7275),
    ("brussels", 1.3, 50.8503, 4.3517),
    ("geneva", 1.2, 46.2044, 6.1432),
    ("portland", 1.1, 45.5152, -122.6784),
    ("san-diego", 1.0, 32.7157, -117.1611),
    ("hong-kong", 0.9, 22.3193, 114.1694),
]

CITIES: list[str] = [row[0] for row in _CITY_TABLE]

CITY_COORDS: dict[str, tuple[float, float]] = {
    row[0]: (row[2], row[3]) for row in _CITY_TABLE
}

assert len(CITIES) == 33, "the paper's dataset has 33 cities"


def city_sizes(total_size: int = TOTAL_SIZE) -> dict[str, int]:
    """Per-city object sizes (bytes), summing exactly to ``total_size``."""
    total_weight = sum(row[1] for row in _CITY_TABLE)
    sizes: dict[str, int] = {}
    allocated = 0
    for city, weight, _lat, _lon in _CITY_TABLE[:-1]:
        size = int(total_size * weight / total_weight)
        sizes[city] = size
        allocated += size
    sizes[_CITY_TABLE[-1][0]] = total_size - allocated
    return sizes


def city_comment_counts(total_comments: int = TOTAL_COMMENTS) -> dict[str, int]:
    """Per-city comment counts, summing exactly to ``total_comments``."""
    sizes = city_sizes()
    counts: dict[str, int] = {}
    allocated = 0
    for city in CITIES[:-1]:
        count = int(total_comments * sizes[city] / TOTAL_SIZE)
        counts[city] = count
        allocated += count
    counts[CITIES[-1]] = total_comments - allocated
    return counts


# ---------------------------------------------------------------------------
# Review content generation
# ---------------------------------------------------------------------------

_BLOCK_SIZE = 4096

#: vocabulary with a known tone so the lexicon analyzer produces meaningful
#: classifications (see repro.analytics.tone)
POSITIVE_WORDS = (
    "great clean cozy amazing lovely perfect wonderful charming helpful "
    "spacious bright friendly comfortable fantastic excellent"
).split()
NEGATIVE_WORDS = (
    "terrible loud dirty noisy awful broken rude cramped smelly "
    "disappointing horrible cold damp overpriced"
).split()
NEUTRAL_WORDS = (
    "host location stay room view bed walk metro beach downtown kitchen "
    "shower apartment street night morning city door floor window"
).split()

_ALL_WORDS = POSITIVE_WORDS + NEGATIVE_WORDS + NEUTRAL_WORDS


def _review_line(
    rng: random.Random, lat: float, lon: float, positivity: float
) -> bytes:
    """One CSV review line: ``lat,lon,words...``  (~100-200 bytes).

    ``positivity`` is the fraction of happy reviewers in this city, so
    different city maps show different green/red mixes (like Fig. 5).
    """
    point_lat = lat + rng.uniform(-0.12, 0.12)
    point_lon = lon + rng.uniform(-0.12, 0.12)
    happy = rng.random() < positivity
    words = []
    # 35-90 words ≈ 500 bytes/line, matching the dataset's 1.9 GB /
    # 3,695,107 comments ≈ 514 bytes per comment
    for _ in range(rng.randint(35, 90)):
        roll = rng.random()
        if roll < 0.25:
            pool = POSITIVE_WORDS if happy else NEGATIVE_WORDS
        elif roll < 0.35:
            pool = NEGATIVE_WORDS if happy else POSITIVE_WORDS
        else:
            pool = NEUTRAL_WORDS
        words.append(rng.choice(pool))
    text = " ".join(words)
    return f"{point_lat:.5f},{point_lon:.5f},{text}\n".encode("ascii")


def city_positivity(city: str) -> float:
    """Deterministic per-city happy-reviewer fraction in [0.30, 0.80]."""
    digest = hashlib.sha256(f"mood:{city}".encode()).digest()
    return 0.30 + (digest[0] % 51) / 100.0


def make_review_content_fn(city: str) -> Callable[[int, int], bytes]:
    """Deterministic byte-range generator of review CSV for ``city``."""
    lat, lon = CITY_COORDS[city]
    positivity = city_positivity(city)

    def _block(index: int) -> bytes:
        digest = hashlib.sha256(f"airbnb:{city}:{index}".encode()).digest()
        rng = random.Random(digest)
        out = bytearray()
        while len(out) < _BLOCK_SIZE:
            out += _review_line(rng, lat, lon, positivity)
        return bytes(out[:_BLOCK_SIZE])

    def content_fn(start: int, end: int) -> bytes:
        if end <= start:
            return b""
        first = start // _BLOCK_SIZE
        last = (end - 1) // _BLOCK_SIZE
        blob = b"".join(_block(i) for i in range(first, last + 1))
        offset = start - first * _BLOCK_SIZE
        return blob[offset : offset + (end - start)]

    return content_fn


def load_dataset(
    storage: CloudObjectStorage,
    bucket: str = DEFAULT_BUCKET,
    total_size: int = TOTAL_SIZE,
) -> dict[str, int]:
    """Create the 33-city dataset as virtual objects; returns {key: size}.

    Objects are named ``reviews/{city}.csv`` to mirror per-city files.  Use
    ``total_size`` to load a scaled-down copy (examples use a few MB).
    """
    storage.create_bucket(bucket, exist_ok=True)
    sizes = city_sizes(total_size)
    loaded: dict[str, int] = {}
    for city, size in sizes.items():
        key = f"reviews/{city}.csv"
        storage.put_virtual_object(
            bucket,
            key,
            size,
            content_fn=make_review_content_fn(city),
            metadata={"city": city},
        )
        loaded[key] = size
    return loaded
