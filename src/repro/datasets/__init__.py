"""Synthetic datasets standing in for the paper's inputs."""

from repro.datasets import airbnb, words

__all__ = ["airbnb", "words"]
