"""SVG scatter-map renderer.

Stand-in for the paper's matplotlib city maps (Fig. 5): "Each point in the
map represents the location of the apartment, and the color of the point
signals the tone of the comments" — green good, blue neutral, red bad.
Produces a self-contained SVG document (no external dependencies).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analytics.tone import NEGATIVE, NEUTRAL, POSITIVE

#: Fig. 5's color scheme
TONE_COLORS = {
    POSITIVE: "#2e9e4f",  # green: good comments
    NEUTRAL: "#3c6fd6",  # blue: neutral comments
    NEGATIVE: "#d63c3c",  # red: bad comments
}

_WIDTH = 800
_HEIGHT = 600
_MARGIN = 30
_POINT_RADIUS = 2.2


def render_city_map(
    city: str,
    points: Sequence[tuple[float, float, str]],
    max_points: int = 5000,
) -> str:
    """Render ``(lat, lon, tone)`` points as an SVG scatter map.

    Coordinates are scaled to the bounding box of the data (an equirect
    projection is plenty at city scale).  At most ``max_points`` points are
    drawn to keep documents bounded.
    """
    points = list(points)[:max_points]
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}">'
        f'<rect width="100%" height="100%" fill="#f7f5f0"/>'
        f'<text x="{_MARGIN}" y="22" font-size="16" '
        f'font-family="sans-serif">Tone map: {city} '
        f"({len(points)} reviews)</text>"
    )
    if not points:
        return header + "</svg>"

    lats = [p[0] for p in points]
    lons = [p[1] for p in points]
    lat_min, lat_max = min(lats), max(lats)
    lon_min, lon_max = min(lons), max(lons)
    lat_span = (lat_max - lat_min) or 1.0
    lon_span = (lon_max - lon_min) or 1.0

    def _x(lon: float) -> float:
        return _MARGIN + (lon - lon_min) / lon_span * (_WIDTH - 2 * _MARGIN)

    def _y(lat: float) -> float:
        # SVG y grows downward; latitude grows upward.
        return _HEIGHT - _MARGIN - (lat - lat_min) / lat_span * (_HEIGHT - 2 * _MARGIN)

    circles = [
        f'<circle cx="{_x(lon):.1f}" cy="{_y(lat):.1f}" r="{_POINT_RADIUS}" '
        f'fill="{TONE_COLORS.get(tone, "#888888")}" fill-opacity="0.7"/>'
        for lat, lon, tone in points
    ]
    return header + "".join(circles) + "</svg>"


def tone_histogram(points: Iterable[tuple[float, float, str]]) -> dict[str, int]:
    """Count points per tone (legend data for a rendered map)."""
    counts = {POSITIVE: 0, NEUTRAL: 0, NEGATIVE: 0}
    for _lat, _lon, tone in points:
        if tone in counts:
            counts[tone] += 1
    return counts
