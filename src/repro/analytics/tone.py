"""Lexicon-based tone analyzer.

Stand-in for the IBM Watson Tone Analyzer the paper uses ("linguistic
analysis to detect emotional and language tones in written text").  It
classifies a comment into positive / neutral / negative overall tone plus
coarse emotion scores, from word counts against a fixed lexicon aligned
with the synthetic dataset's vocabulary — which is all the experiment
needs: a deterministic per-comment classification with a fixed per-byte
compute cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.airbnb import NEGATIVE_WORDS, POSITIVE_WORDS

POSITIVE = "positive"
NEUTRAL = "neutral"
NEGATIVE = "negative"

TONES = (POSITIVE, NEUTRAL, NEGATIVE)

_POSITIVE_SET = frozenset(POSITIVE_WORDS)
_NEGATIVE_SET = frozenset(NEGATIVE_WORDS)

#: emotion tones keyed from the dominant sentiment, mimicking Watson's
#: emotional-tone dimension
_EMOTIONS = {POSITIVE: "joy", NEUTRAL: "analytical", NEGATIVE: "anger"}


@dataclass
class ToneResult:
    """Analysis of a single comment."""

    tone: str
    emotion: str
    positive_hits: int
    negative_hits: int
    word_count: int

    @property
    def polarity(self) -> float:
        """Signed score in [-1, 1]."""
        if self.word_count == 0:
            return 0.0
        return (self.positive_hits - self.negative_hits) / self.word_count


def analyze(text: str) -> ToneResult:
    """Classify one comment."""
    words = text.lower().split()
    positive_hits = sum(1 for w in words if w in _POSITIVE_SET)
    negative_hits = sum(1 for w in words if w in _NEGATIVE_SET)
    if positive_hits > negative_hits:
        tone = POSITIVE
    elif negative_hits > positive_hits:
        tone = NEGATIVE
    else:
        tone = NEUTRAL
    return ToneResult(
        tone=tone,
        emotion=_EMOTIONS[tone],
        positive_hits=positive_hits,
        negative_hits=negative_hits,
        word_count=len(words),
    )


@dataclass
class ToneStats:
    """Aggregated tone counts over many comments (mergeable)."""

    counts: dict[str, int] = field(
        default_factory=lambda: {POSITIVE: 0, NEUTRAL: 0, NEGATIVE: 0}
    )
    comments: int = 0

    def add(self, result: ToneResult) -> None:
        self.counts[result.tone] += 1
        self.comments += 1

    def merge(self, other: "ToneStats") -> "ToneStats":
        for tone in TONES:
            self.counts[tone] += other.counts[tone]
        self.comments += other.comments
        return self

    def scaled(self, factor: float) -> "ToneStats":
        """Extrapolate sampled counts to a full partition."""
        scaled_counts = {t: int(round(c * factor)) for t, c in self.counts.items()}
        out = ToneStats(counts=scaled_counts)
        out.comments = sum(scaled_counts.values())
        return out

    def dominant(self) -> str:
        return max(TONES, key=lambda t: self.counts[t])


def analyze_csv_reviews(data: bytes) -> tuple[ToneStats, list[tuple[float, float, str]]]:
    """Analyze ``lat,lon,text`` CSV review lines.

    Returns aggregate stats plus per-review points ``(lat, lon, tone)`` for
    map rendering.  Malformed/truncated lines (range boundaries cut
    mid-line) are skipped, like a robust CSV chunk reader would.
    """
    stats = ToneStats()
    points: list[tuple[float, float, str]] = []
    for raw_line in data.split(b"\n"):
        parts = raw_line.split(b",", 2)
        if len(parts) != 3:
            continue
        try:
            lat = float(parts[0])
            lon = float(parts[1])
        except ValueError:
            continue
        result = analyze(parts[2].decode("ascii", errors="replace"))
        stats.add(result)
        points.append((lat, lon, result.tone))
    return stats, points
