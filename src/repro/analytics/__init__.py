"""Analytics substrate: tone analysis + map rendering (the §6.4 use case)."""

from repro.analytics.geoplot import TONE_COLORS, render_city_map, tone_histogram
from repro.analytics.timeline import (
    intervals_from_records,
    render_execution_timeline,
)
from repro.analytics.tone import (
    NEGATIVE,
    NEUTRAL,
    POSITIVE,
    TONES,
    ToneResult,
    ToneStats,
    analyze,
    analyze_csv_reviews,
)

__all__ = [
    "analyze",
    "analyze_csv_reviews",
    "ToneResult",
    "ToneStats",
    "TONES",
    "POSITIVE",
    "NEUTRAL",
    "NEGATIVE",
    "render_city_map",
    "tone_histogram",
    "TONE_COLORS",
    "render_execution_timeline",
    "intervals_from_records",
]
