"""Execution-timeline rendering, in the style of the paper's Figs. 2 and 3.

Given activation records (or raw ``(start, end)`` intervals), renders an
SVG with one horizontal gray line per function execution, stacked by start
order, plus the black total-concurrency curve on a secondary axis — the
exact visual language of Fig. 3.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

_WIDTH = 900
_HEIGHT = 520
_MARGIN = 48


def concurrency_timeline(
    intervals: Iterable[tuple[float, float]],
    resolution: float = 1.0,
    t0: Optional[float] = None,
) -> list[tuple[float, int]]:
    """Concurrent-execution counts over time from (start, end) intervals.

    This is how Figs. 2 and 3's black "total concurrent" lines are computed
    from activation records.
    """
    intervals = list(intervals)
    if not intervals:
        return []
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, +1))
        events.append((end, -1))
    events.sort()
    origin = t0 if t0 is not None else min(e[0] for e in events)
    horizon = max(e[0] for e in events)
    timeline: list[tuple[float, int]] = []
    level = 0
    idx = 0
    t = origin
    while t <= horizon + resolution / 2:
        while idx < len(events) and events[idx][0] <= t:
            level += events[idx][1]
            idx += 1
        timeline.append((t - origin, level))
        t += resolution
    return timeline


def render_execution_timeline(
    intervals: Sequence[tuple[float, float]],
    title: str = "Function executions",
    resolution: float = 1.0,
) -> str:
    """Render execution intervals + concurrency curve as an SVG document."""
    intervals = sorted(intervals)
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">'
        f'<rect width="100%" height="100%" fill="#ffffff"/>'
        f'<text x="{_MARGIN}" y="24" font-size="15" '
        f'font-family="sans-serif">{title} ({len(intervals)} functions)</text>'
    )
    if not intervals:
        return header + "</svg>"

    t0 = min(start for start, _ in intervals)
    t1 = max(end for _, end in intervals)
    span = (t1 - t0) or 1.0
    n = len(intervals)

    def _x(t: float) -> float:
        return _MARGIN + (t - t0) / span * (_WIDTH - 2 * _MARGIN)

    def _y_row(i: int) -> float:
        return _HEIGHT - _MARGIN - (i + 1) / n * (_HEIGHT - 2 * _MARGIN)

    rows = [
        f'<line x1="{_x(start):.1f}" y1="{_y_row(i):.1f}" '
        f'x2="{_x(end):.1f}" y2="{_y_row(i):.1f}" '
        f'stroke="#bbbbbb" stroke-width="1"/>'
        for i, (start, end) in enumerate(intervals)
    ]

    timeline = concurrency_timeline(intervals, resolution=resolution, t0=t0)
    peak = max(level for _t, level in timeline) or 1
    points = " ".join(
        f"{_x(t0 + t):.1f},"
        f"{_HEIGHT - _MARGIN - level / peak * (_HEIGHT - 2 * _MARGIN):.1f}"
        for t, level in timeline
    )
    curve = (
        f'<polyline points="{points}" fill="none" stroke="#111111" '
        f'stroke-width="2"/>'
    )
    axis = (
        f'<line x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" x2="{_WIDTH - _MARGIN}" '
        f'y2="{_HEIGHT - _MARGIN}" stroke="#333333"/>'
        f'<text x="{_MARGIN}" y="{_HEIGHT - 14}" font-size="12" '
        f'font-family="sans-serif">0s</text>'
        f'<text x="{_WIDTH - _MARGIN - 40}" y="{_HEIGHT - 14}" font-size="12" '
        f'font-family="sans-serif">{span:.0f}s</text>'
        f'<text x="{_WIDTH - _MARGIN - 120}" y="40" font-size="12" '
        f'font-family="sans-serif">peak concurrency: {peak}</text>'
    )
    return header + "".join(rows) + curve + axis + "</svg>"


def intervals_from_records(records: Iterable, action_prefix: Optional[str] = None):
    """Extract (start, end) pairs from finished activation records."""
    out = []
    for record in records:
        if action_prefix is not None and not record.action_name.startswith(
            action_prefix
        ):
            continue
        if record.start_time is not None and record.end_time is not None:
            out.append((record.start_time, record.end_time))
    return out
