"""Execution-timeline rendering, in the style of the paper's Figs. 2 and 3.

Given activation records, trace events, or raw ``(start, end)`` intervals,
renders an SVG with one horizontal gray line per function execution,
stacked by start order, plus the black total-concurrency curve on a
secondary axis — the exact visual language of Fig. 3.
"""

from __future__ import annotations

from xml.sax.saxutils import escape
from typing import Iterable, Optional, Sequence

_WIDTH = 900
_HEIGHT = 520
_MARGIN = 48


def concurrency_timeline(
    intervals: Iterable[tuple[float, float]],
    resolution: float = 1.0,
    t0: Optional[float] = None,
) -> list[tuple[float, int]]:
    """Concurrent-execution counts over time from (start, end) intervals.

    This is how Figs. 2 and 3's black "total concurrent" lines are computed
    from activation records.  Sweeps the sorted start/end events directly —
    one output sample per time the level changes — so the cost scales with
    the number of intervals, not the horizon, and no float drift accumulates
    the way fixed-step sampling does.  ``resolution`` is kept for API
    compatibility and ignored.

    Returns ``(t - origin, level)`` pairs: the level at the origin (``t0``
    or the earliest event), then one pair per subsequent change point.
    """
    del resolution  # event sweep: sampling step no longer applies
    intervals = list(intervals)
    if not intervals:
        return []
    deltas: dict[float, int] = {}
    for start, end in intervals:
        deltas[start] = deltas.get(start, 0) + 1
        deltas[end] = deltas.get(end, 0) - 1
    changes = sorted(deltas.items())
    origin = t0 if t0 is not None else changes[0][0]
    level = 0
    timeline: list[tuple[float, int]] = []
    for t, delta in changes:
        level += delta
        if t <= origin:
            # everything at or before the origin folds into the first sample
            if timeline:
                timeline[0] = (0.0, level)
            else:
                timeline.append((0.0, level))
        else:
            if not timeline:
                timeline.append((0.0, 0))
            timeline.append((t - origin, level))
    return timeline


def intervals_from_events(
    events: Iterable,
    executor_id: Optional[str] = None,
    callset_id: Optional[str] = None,
) -> list[tuple[float, float]]:
    """(start, end) execution windows from a trace-event stream.

    Thin delegate to :func:`repro.trace.derive.execution_intervals`, so
    timeline figures can be driven directly from an exported trace.
    """
    from repro.trace import derive

    return derive.execution_intervals(events, executor_id, callset_id)


def render_execution_timeline(
    intervals: Sequence[tuple[float, float]],
    title: str = "Function executions",
    resolution: float = 1.0,
) -> str:
    """Render execution intervals + concurrency curve as an SVG document."""
    intervals = sorted(intervals)
    safe_title = escape(str(title))
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">'
        f'<rect width="100%" height="100%" fill="#ffffff"/>'
        f'<text x="{_MARGIN}" y="24" font-size="15" '
        f'font-family="sans-serif">{safe_title} ({len(intervals)} functions)</text>'
    )
    if not intervals:
        return header + "</svg>"

    t0 = min(start for start, _ in intervals)
    t1 = max(end for _, end in intervals)
    span = (t1 - t0) or 1.0
    n = len(intervals)

    def _x(t: float) -> float:
        return _MARGIN + (t - t0) / span * (_WIDTH - 2 * _MARGIN)

    def _y_row(i: int) -> float:
        return _HEIGHT - _MARGIN - (i + 1) / n * (_HEIGHT - 2 * _MARGIN)

    rows = [
        f'<line x1="{_x(start):.1f}" y1="{_y_row(i):.1f}" '
        f'x2="{_x(end):.1f}" y2="{_y_row(i):.1f}" '
        f'stroke="#bbbbbb" stroke-width="1"/>'
        for i, (start, end) in enumerate(intervals)
    ]

    timeline = concurrency_timeline(intervals, resolution=resolution, t0=t0)
    peak = max(level for _t, level in timeline) or 1

    def _xy(t: float, level: int) -> str:
        return (
            f"{_x(t0 + t):.1f},"
            f"{_HEIGHT - _MARGIN - level / peak * (_HEIGHT - 2 * _MARGIN):.1f}"
        )

    # step curve: hold each level until the next change point
    vertices: list[str] = []
    prev_level: Optional[int] = None
    for t, level in timeline:
        if prev_level is not None:
            vertices.append(_xy(t, prev_level))
        vertices.append(_xy(t, level))
        prev_level = level
    curve = (
        f'<polyline points="{" ".join(vertices)}" fill="none" stroke="#111111" '
        f'stroke-width="2"/>'
    )
    axis = (
        f'<line x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" x2="{_WIDTH - _MARGIN}" '
        f'y2="{_HEIGHT - _MARGIN}" stroke="#333333"/>'
        f'<text x="{_MARGIN}" y="{_HEIGHT - 14}" font-size="12" '
        f'font-family="sans-serif">0s</text>'
        f'<text x="{_WIDTH - _MARGIN - 40}" y="{_HEIGHT - 14}" font-size="12" '
        f'font-family="sans-serif">{span:.0f}s</text>'
        f'<text x="{_WIDTH - _MARGIN - 120}" y="40" font-size="12" '
        f'font-family="sans-serif">peak concurrency: {peak}</text>'
    )
    return header + "".join(rows) + curve + axis + "</svg>"


#: per-stage line colors for the DAG-grouped timeline, cycled in order
_STAGE_COLORS = ("#2563eb", "#16a34a", "#ca8a04", "#dc2626", "#7c3aed", "#0891b2")


def render_staged_timeline(
    groups: Sequence[tuple[str, Sequence[tuple[float, float]]]],
    title: str = "DAG execution",
) -> str:
    """Fig. 3-style timeline with rows grouped (and colored) by DAG stage.

    ``groups`` is an ordered list of ``(stage_name, intervals)``; rows are
    stacked stage by stage with a label per band, and the black total-
    concurrency curve spans all stages.  This is what ``python -m repro
    trace --svg`` renders when the trace carries ``dag.node`` spans.
    """
    groups = [(name, sorted(intervals)) for name, intervals in groups]
    all_intervals = [iv for _name, ivs in groups for iv in ivs]
    safe_title = escape(str(title))
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">'
        f'<rect width="100%" height="100%" fill="#ffffff"/>'
        f'<text x="{_MARGIN}" y="24" font-size="15" '
        f'font-family="sans-serif">{safe_title} '
        f"({len(all_intervals)} nodes, {len(groups)} stages)</text>"
    )
    if not all_intervals:
        return header + "</svg>"

    t0 = min(start for start, _ in all_intervals)
    t1 = max(end for _, end in all_intervals)
    span = (t1 - t0) or 1.0
    n = len(all_intervals)

    def _x(t: float) -> float:
        return _MARGIN + (t - t0) / span * (_WIDTH - 2 * _MARGIN)

    def _y_row(i: int) -> float:
        return _HEIGHT - _MARGIN - (i + 1) / n * (_HEIGHT - 2 * _MARGIN)

    parts: list[str] = []
    row = 0
    for group_index, (name, intervals) in enumerate(groups):
        color = _STAGE_COLORS[group_index % len(_STAGE_COLORS)]
        band_top = _y_row(row + len(intervals) - 1) if intervals else None
        for start, end in intervals:
            y = _y_row(row)
            parts.append(
                f'<line x1="{_x(start):.1f}" y1="{y:.1f}" '
                f'x2="{_x(end):.1f}" y2="{y:.1f}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            row += 1
        if band_top is not None:
            parts.append(
                f'<text x="4" y="{band_top + 4:.1f}" font-size="11" '
                f'fill="{color}" font-family="sans-serif">'
                f"{escape(str(name))}</text>"
            )

    timeline = concurrency_timeline(all_intervals, t0=t0)
    peak = max(level for _t, level in timeline) or 1

    def _xy(t: float, level: int) -> str:
        return (
            f"{_x(t0 + t):.1f},"
            f"{_HEIGHT - _MARGIN - level / peak * (_HEIGHT - 2 * _MARGIN):.1f}"
        )

    vertices: list[str] = []
    prev_level: Optional[int] = None
    for t, level in timeline:
        if prev_level is not None:
            vertices.append(_xy(t, prev_level))
        vertices.append(_xy(t, level))
        prev_level = level
    curve = (
        f'<polyline points="{" ".join(vertices)}" fill="none" stroke="#111111" '
        f'stroke-width="2"/>'
    )
    axis = (
        f'<line x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" x2="{_WIDTH - _MARGIN}" '
        f'y2="{_HEIGHT - _MARGIN}" stroke="#333333"/>'
        f'<text x="{_MARGIN}" y="{_HEIGHT - 14}" font-size="12" '
        f'font-family="sans-serif">0s</text>'
        f'<text x="{_WIDTH - _MARGIN - 40}" y="{_HEIGHT - 14}" font-size="12" '
        f'font-family="sans-serif">{span:.0f}s</text>'
        f'<text x="{_WIDTH - _MARGIN - 120}" y="40" font-size="12" '
        f'font-family="sans-serif">peak concurrency: {peak}</text>'
    )
    return header + "".join(parts) + curve + axis + "</svg>"


def dag_stage_groups(events: Iterable) -> list[tuple[str, list[tuple[float, float]]]]:
    """Stage-grouped ``(start, end)`` windows from ``dag.node`` trace spans.

    Stages are ordered by earliest node start; returns ``[]`` when the
    trace has no DAG spans (callers fall back to the flat timeline).
    """
    by_stage: dict[str, list[tuple[float, float]]] = {}
    for event in events:
        if event.name != "dag.node" or event.kind != "span":
            continue
        stage = str(event.get_attr("stage", "dag"))
        by_stage.setdefault(stage, []).append((event.t, event.end))
    return sorted(
        ((stage, ivs) for stage, ivs in by_stage.items()),
        key=lambda item: min(start for start, _ in item[1]),
    )


def intervals_from_records(records: Iterable, action_prefix: Optional[str] = None):
    """Extract (start, end) pairs from finished activation records."""
    out = []
    for record in records:
        if action_prefix is not None and not record.action_name.startswith(
            action_prefix
        ):
            continue
        if record.start_time is not None and record.end_time is not None:
            out.append((record.start_time, record.end_time))
    return out
