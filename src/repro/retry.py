"""Shared retry engine: exponential backoff, full jitter, error classes.

Every client-side component that talks to the emulated cloud — the COS
client, the Cloud Functions gateway, the executor's lost-call recovery —
retries through one :class:`RetryPolicy` built from the single documented
:class:`~repro.config.RetryConfig`.  This mirrors how real serverless
frameworks centralize "is this error worth retrying, and how long do we
wait?" instead of sprinkling constants per call site.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.config import RetryConfig
from repro.cos.errors import ServiceUnavailable, SlowDown
from repro.net.latency import TransientNetworkError

#: errors a client may safely retry: the request either never reached the
#: service or was rejected before any state change.  ThrottledError (the
#: platform's 429) joins lazily — importing repro.faas here would be
#: circular, since its gateway builds on this module.
_RETRYABLE_ERRORS: Optional[tuple] = None


def retryable_errors() -> tuple:
    global _RETRYABLE_ERRORS
    if _RETRYABLE_ERRORS is None:
        from repro.faas.errors import ThrottledError

        _RETRYABLE_ERRORS = (
            TransientNetworkError,  # request lost on the wire
            ServiceUnavailable,     # COS 503
            SlowDown,               # COS 503 SlowDown (rate pushback)
            ThrottledError,         # Cloud Functions 429
        )
    return _RETRYABLE_ERRORS


def is_retryable(exc: BaseException) -> bool:
    """Classify an exception as transient (retry) or terminal (raise)."""
    return isinstance(exc, retryable_errors())


class RetryPolicy:
    """Executes callables under a :class:`RetryConfig` schedule.

    Deterministic under a fixed ``seed`` — the jitter stream is private to
    the policy, so enabling retries never perturbs any other RNG stream in
    the simulation.
    """

    def __init__(self, config: Optional[RetryConfig] = None, seed: int = 0) -> None:
        self.config = config or RetryConfig()
        self.config.validate()
        self._seed = seed
        # The jitter RNG materializes on first backoff: most policies never
        # retry, and a seeded Mersenne state is ~2.5 KB — at 50k concurrent
        # activations (one policy per in-cloud client) eagerness costs >100 MB.
        self._rng: Optional[random.Random] = None
        #: total backoff sleeps taken by this policy (observability)
        self.retries = 0

    def backoff(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Delay before retry number ``attempt`` (1-based).

        A server-supplied ``retry_after`` hint (e.g. from a 429) overrides
        the computed schedule — the service knows its own load better than
        the client's exponential guess.
        """
        if retry_after is not None and retry_after > 0:
            return float(retry_after)
        cfg = self.config
        base = min(
            cfg.max_backoff_s,
            cfg.initial_backoff_s * cfg.multiplier ** (max(1, attempt) - 1),
        )
        if cfg.jitter == "full":
            if self._rng is None:
                self._rng = random.Random(self._seed ^ 0x5E77E7)
            return self._rng.uniform(0.0, base)
        return base

    def run(
        self,
        fn: Callable[[], object],
        kernel,
        classify: Callable[[BaseException], bool] = is_retryable,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ):
        """Call ``fn`` until it succeeds or the attempt budget is spent.

        ``kernel`` provides virtual-time ``sleep``; ``classify`` decides
        retryability; ``on_retry(attempt, exc, delay)`` observes each retry.
        Non-retryable errors and the final failed attempt propagate.
        """
        attempt = 1
        while True:
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - classified below
                if not classify(exc) or attempt >= self.config.max_attempts:
                    raise
                delay = self.backoff(attempt, getattr(exc, "retry_after", None))
                self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                kernel.sleep(delay)
                attempt += 1

    def run_steps(
        self,
        attempt_factory: Callable[[], object],
        classify: Callable[[BaseException], bool] = is_retryable,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ):
        """Steps twin of :meth:`run` for the kernel's model-task API.

        ``attempt_factory()`` returns a *fresh* steps generator per attempt
        (the attempt itself may block via kernel ops).  Backoff sleeps are
        yielded as ops instead of blocking, so the whole retry loop can run
        as — or inside — a model task, or be driven by a thread task.
        """
        from repro.vtime.kernel import vsleep

        attempt = 1
        while True:
            try:
                return (yield from attempt_factory())
            except Exception as exc:  # noqa: BLE001 - classified below
                if not classify(exc) or attempt >= self.config.max_attempts:
                    raise
                delay = self.backoff(attempt, getattr(exc, "retry_after", None))
                self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                yield vsleep(delay)
                attempt += 1
