"""A virtual-time thread kernel.

Every simulated activity (a client, an invoker node, a running cloud
function) is a *real* OS thread registered with the :class:`Kernel`.  Time is
virtual: a task that calls :meth:`Kernel.sleep` does not consume wall-clock
time.  Instead it parks on a private event; when **every** registered task is
blocked, the kernel advances the virtual clock to the earliest pending timer
and wakes exactly one waiter.  This gives three properties the paper's
experiments need:

* user code stays *plain blocking Python* — a function running inside an
  emulated container can create a nested executor and block on its results,
  exactly like IBM-PyWren functions do in the real cloud;
* experiments that span 88 seconds or 86 minutes of modelled time complete in
  milliseconds of CPU time;
* timer firings are serialized in ``(time, seq)`` order, so runs are
  reproducible.

The kernel deliberately mirrors the structure of discrete-event simulators
(SimPy et al.) but trades coroutines for threads so arbitrary third-party
blocking code can participate.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Optional

from repro.vtime.errors import (
    DeadlockError,
    KernelShutdownError,
    NotInKernelError,
)

__all__ = ["Kernel", "Task", "Waiter", "current_kernel", "current_task"]

# Maps OS thread ident -> Task, for every live kernel task in the process.
# Keyed globally (not per kernel) so ambient helpers like ``repro.sleep``
# can find the kernel owning the calling thread.
_THREAD_TASKS: dict[int, "Task"] = {}
_THREAD_TASKS_LOCK = threading.Lock()


def current_task() -> Optional["Task"]:
    """Return the kernel task running on this thread, or ``None``."""
    with _THREAD_TASKS_LOCK:
        return _THREAD_TASKS.get(threading.get_ident())


def current_kernel() -> Optional["Kernel"]:
    """Return the kernel owning the calling thread, or ``None``."""
    task = current_task()
    return task.kernel if task is not None else None


# Ambient-context propagation: higher layers (e.g. repro.core.context)
# register capture/install/uninstall hooks so state bound to the *spawning*
# thread follows into spawned tasks — the way contextvars follow asyncio
# tasks.  Each propagator is (capture() -> token, install(token),
# uninstall(token)).
_CONTEXT_PROPAGATORS: list[tuple[Callable[[], Any], Callable[[Any], None], Callable[[Any], None]]] = []


def register_context_propagator(
    capture: Callable[[], Any],
    install: Callable[[Any], None],
    uninstall: Callable[[Any], None],
) -> None:
    """Register a thread-context propagator applied around every task."""
    _CONTEXT_PROPAGATORS.append((capture, install, uninstall))


class Task:
    """A thread registered with a :class:`Kernel`.

    The public surface is intentionally small: ``name``, ``result()`` and
    ``join()``.  State transitions are owned by the kernel.
    """

    _RUNNING = "running"
    _BLOCKED = "blocked"
    _FINISHED = "finished"

    def __init__(self, kernel: "Kernel", name: str, task_id: int) -> None:
        self.kernel = kernel
        self.name = name
        self.task_id = task_id
        self.daemon = False
        self._state = Task._RUNNING
        self._wake = threading.Event()
        self._wake_exc: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._outcome_ready = threading.Event()
        self._result: Any = None
        self._exception: Optional[BaseException] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.task_id} {self.name!r} {self._state}>"

    @property
    def finished(self) -> bool:
        return self._state == Task._FINISHED

    def result(self) -> Any:
        """Return the task function's return value (task must be finished)."""
        if not self._outcome_ready.is_set():
            raise VTimeUsageError(
                f"task {self.name!r} has not finished; join() it first"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for this task to finish.

        When called from another kernel task, the wait blocks in *virtual*
        time.  When called from an outside (unregistered) thread — typically
        the pytest main thread driving :meth:`Kernel.run` — it blocks in real
        time, which is correct because outside threads are not part of the
        simulation.  Returns ``True`` if the task finished.
        """
        caller = current_task()
        if caller is None:
            self._outcome_ready.wait()
            return True
        return self.kernel._join_task(self, timeout)


class VTimeUsageError(NotInKernelError):
    """Misuse of the kernel API (kept as a NotInKernelError subclass)."""


class Waiter:
    """One pending reason a task is blocked (timer and/or condition slot).

    A waiter is *consumed* exactly once: either its timer fires, or the thing
    it waits on notifies it, whichever happens first.  ``payload`` carries an
    arbitrary wake reason to the woken task (used by queues/conditions).
    """

    __slots__ = ("task", "done", "timed_out", "payload", "on_consume")

    def __init__(self, task: Task) -> None:
        self.task = task
        self.done = False
        self.timed_out = False
        self.payload: Any = None
        # Optional callback run (under the kernel lock) when the waiter is
        # consumed; conditions use it to unlink themselves from wait queues.
        self.on_consume: Optional[Callable[["Waiter"], None]] = None


class Kernel:
    """The virtual-time scheduler.  See module docstring."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start_time)
        self._seq = itertools.count()
        self._task_ids = itertools.count(1)
        self._tasks: dict[int, Task] = {}
        self._running = 0  # tasks currently in RUNNING state
        self._nondaemon_alive = 0
        self._timers: list[tuple[float, int, Waiter]] = []
        self._dead = False
        self._spawned_total = 0
        self._nondaemon_done = threading.Event()
        self._nondaemon_done.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    @property
    def tasks_alive(self) -> int:
        with self._lock:
            return len(self._tasks)

    @property
    def spawned_total(self) -> int:
        """Total number of tasks ever spawned on this kernel."""
        with self._lock:
            return self._spawned_total

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> Task:
        """Start ``fn(*args, **kwargs)`` as a new kernel task.

        ``daemon`` tasks do not keep :meth:`run` alive; they are killed with
        :class:`KernelShutdownError` at shutdown.  The task counts as RUNNING
        from before its thread starts, so virtual time cannot slip past the
        spawn point.
        """
        with self._lock:
            if self._dead:
                raise KernelShutdownError("kernel has been shut down")
            task = Task(self, name or fn.__name__, next(self._task_ids))
            task.daemon = daemon
            self._tasks[task.task_id] = task
            self._running += 1
            self._spawned_total += 1
            if not daemon:
                self._nondaemon_alive += 1
                self._nondaemon_done.clear()

        # capture the spawning thread's ambient context for the child
        tokens = [
            (install, uninstall, capture())
            for capture, install, uninstall in _CONTEXT_PROPAGATORS
        ]

        def _bootstrap() -> None:
            ident = threading.get_ident()
            with _THREAD_TASKS_LOCK:
                _THREAD_TASKS[ident] = task
            installed: list[tuple[Callable[[Any], None], Any]] = []
            try:
                for install, uninstall, token in tokens:
                    install(token)
                    installed.append((uninstall, token))
                task._result = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - recorded, re-raised at join
                task._exception = exc
            finally:
                for uninstall, token in reversed(installed):
                    try:
                        uninstall(token)
                    except Exception:  # pragma: no cover - cleanup best effort
                        pass
                with _THREAD_TASKS_LOCK:
                    _THREAD_TASKS.pop(ident, None)
                self._finish_task(task)

        thread = threading.Thread(target=_bootstrap, name=f"vtask-{task.name}", daemon=True)
        task._thread = thread
        thread.start()
        return task

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` as the root task and return its result.

        Called from an outside thread (e.g. a test).  Blocks in real time
        until the root task and every non-daemon task it spawned finish, then
        shuts the kernel down.  Exceptions from the root task propagate.
        """
        root = self.spawn(fn, *args, name=kwargs.pop("name", "main"), **kwargs)
        root._outcome_ready.wait()
        # Let non-daemon descendants drain before declaring the run over.
        self._nondaemon_done.wait()
        self.shutdown()
        if root._exception is not None:
            raise root._exception
        return root._result

    def _finish_task(self, task: Task) -> None:
        with self._lock:
            task._state = Task._FINISHED
            self._tasks.pop(task.task_id, None)
            self._running -= 1
            if not task.daemon:
                self._nondaemon_alive -= 1
                if self._nondaemon_alive == 0:
                    self._nondaemon_done.set()
            waiters = task.__dict__.pop("_join_waiters", [])
            for waiter in waiters:
                self._consume_waiter(waiter)
            if self._running == 0:
                self._advance_locked()
        task._outcome_ready.set()

    def _join_task(self, task: Task, timeout: Optional[float]) -> bool:
        with self._lock:
            if task._state == Task._FINISHED:
                return True
            waiter = self._make_waiter()
            task.__dict__.setdefault("_join_waiters", []).append(waiter)

            def _unlink(w: Waiter) -> None:
                lst = task.__dict__.get("_join_waiters", [])
                if w in lst:
                    lst.remove(w)

            waiter.on_consume = _unlink
            if timeout is not None:
                self._add_timer_locked(self._now + timeout, waiter)
            self._block_current_locked(waiter.task)
        waiter.task._wake.wait()
        self._post_wake(waiter.task)
        return not waiter.timed_out

    def shutdown(self) -> None:
        """Kill remaining (daemon) tasks by raising in their blocked waits."""
        with self._lock:
            self._dead = True
            blocked = [t for t in self._tasks.values() if t._state == Task._BLOCKED]
            for task in blocked:
                task._wake_exc = KernelShutdownError(
                    f"kernel shut down while task {task.name!r} was blocked"
                )
                task._state = Task._RUNNING
                self._running += 1
                task._wake.set()
        for task in list(_snapshot_threads(self)):
            if task._thread is not None:
                task._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Blocking primitives (used by repro.vtime.sync and sleep)
    # ------------------------------------------------------------------
    def sleep(self, duration: float) -> None:
        """Block the calling task for ``duration`` virtual seconds."""
        task = self._require_current_task()
        with self._lock:
            waiter = Waiter(task)
            self._add_timer_locked(self._now + max(0.0, float(duration)), waiter)
            self._block_current_locked(task)
        task._wake.wait()
        self._post_wake(task)

    def _make_waiter(self) -> Waiter:
        return Waiter(self._require_current_task())

    def _require_current_task(self) -> Task:
        task = current_task()
        if task is None or task.kernel is not self:
            raise NotInKernelError(
                "this operation must run inside a task of this kernel "
                "(use Kernel.run()/Kernel.spawn())"
            )
        return task

    def _add_timer_locked(self, when: float, waiter: Waiter) -> None:
        heapq.heappush(self._timers, (when, next(self._seq), waiter))

    def _block_current_locked(self, task: Task) -> None:
        """Mark the calling task blocked; advance time if it was the last runner.

        Caller holds the kernel lock, and must wait on ``task._wake`` (outside
        the lock) immediately after this returns.
        """
        task._wake.clear()
        task._state = Task._BLOCKED
        self._running -= 1
        if self._running == 0:
            self._advance_locked()

    def block_on(self, waiter: Waiter, timeout: Optional[float] = None) -> None:
        """Block the current task until ``waiter`` is consumed (sync helper).

        The caller must have created ``waiter`` for the current task and made
        it reachable from whatever will eventually wake it.  Must *not* hold
        the kernel lock.
        """
        task = waiter.task
        with self._lock:
            if waiter.done:
                # Consumed between registration and blocking: do not block.
                return
            if timeout is not None:
                self._add_timer_locked(self._now + max(0.0, timeout), waiter)
            self._block_current_locked(task)
        task._wake.wait()
        self._post_wake(task)

    def wake(self, waiter: Waiter, payload: Any = None) -> bool:
        """Consume ``waiter`` (from any kernel task) and wake its task.

        Returns ``False`` if the waiter was already consumed (e.g. timed out).
        """
        with self._lock:
            return self._consume_waiter(waiter, payload)

    def _consume_waiter(self, waiter: Waiter, payload: Any = None) -> bool:
        if waiter.done:
            return False
        waiter.done = True
        waiter.payload = payload
        if waiter.on_consume is not None:
            waiter.on_consume(waiter)
        task = waiter.task
        if task._state == Task._BLOCKED:
            task._state = Task._RUNNING
            self._running += 1
            task._wake.set()
        return True

    def _post_wake(self, task: Task) -> None:
        exc = task._wake_exc
        if exc is not None:
            task._wake_exc = None
            raise exc

    # ------------------------------------------------------------------
    # The clock advance
    # ------------------------------------------------------------------
    def _advance_locked(self) -> None:
        """All tasks are blocked: move time forward and wake one waiter.

        Consumed (cancelled) timers are skipped.  If no live timer remains,
        the simulation is deadlocked; every blocked task gets a
        :class:`DeadlockError` so the failure is diagnosable.
        """
        while self._timers:
            when, _seq, waiter = heapq.heappop(self._timers)
            if waiter.done:
                continue
            if when < self._now:  # pragma: no cover - defensive
                when = self._now
            self._now = when
            waiter.timed_out = True
            self._consume_waiter(waiter)
            return
        blocked = [t for t in self._tasks.values() if t._state == Task._BLOCKED]
        if not blocked:
            return
        names = ", ".join(sorted(t.name for t in blocked))
        for task in blocked:
            task._wake_exc = DeadlockError(
                f"virtual-time deadlock: all tasks blocked with no pending "
                f"timer (blocked tasks: {names})"
            )
            task._state = Task._RUNNING
            self._running += 1
            task._wake.set()


def _snapshot_threads(kernel: Kernel):
    with kernel._lock:
        return list(kernel._tasks.values())
