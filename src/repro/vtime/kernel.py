"""A virtual-time hybrid kernel: model tasks plus pooled threads.

Every simulated activity (a client, an invoker node, a running cloud
function) is registered with the :class:`Kernel`.  Time is virtual: a task
that sleeps does not consume wall-clock time.  When **every** registered
task is blocked, the kernel advances the virtual clock to the earliest
pending timer and wakes exactly one waiter.  This gives three properties the
paper's experiments need:

* user code stays *plain blocking Python* — a function running inside an
  emulated container can create a nested executor and block on its results,
  exactly like IBM-PyWren functions do in the real cloud;
* experiments that span 88 seconds or 86 minutes of modelled time complete in
  milliseconds of CPU time;
* timer firings are serialized in ``(time, seq)`` order, so runs are
  reproducible.

Tasks come in two kinds, sharing one ``(time, seq)`` timer wheel and one
blocked/running accounting:

* **Thread tasks** (:class:`Task`, via :meth:`Kernel.spawn`) execute on real
  OS threads drawn from a recycling pool, so arbitrary third-party blocking
  code can participate.  A finished task's thread parks and is reused by the
  next spawn instead of being torn down.
* **Model tasks** (:class:`ModelTask`, via :meth:`Kernel.spawn_model`) are
  generator-based coroutines stepped by one shared loop thread.  They carry
  *no* OS thread while blocked, which is what lets a single process model
  tens of thousands of concurrent activities (timers, net transfers,
  cold-start delays, invoker bookkeeping).  A model task yields kernel *ops*
  — :func:`vsleep`, :func:`vwait`, :func:`vjoin` — instead of calling the
  blocking primitives.

The same "steps" generator can serve both worlds: a thread task runs it to
completion with :meth:`Kernel.drive` (blocking at each op), while a model
task delegates with ``yield from``.  Ambient context (trace ids, the active
cloud environment) propagates identically into both kinds: thread tasks
install captured tokens once around their function; model tasks install
them around every step and re-capture afterwards, so bindings held across a
yield survive interleaving with other model tasks.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import threading
import weakref
from typing import Any, Callable, Generator, Optional

from repro.vtime.errors import (
    DeadlockError,
    KernelShutdownError,
    NotInKernelError,
)

__all__ = [
    "Kernel",
    "Task",
    "ModelTask",
    "Waiter",
    "SleepOp",
    "WaitOp",
    "JoinOp",
    "vsleep",
    "vwait",
    "vjoin",
    "current_kernel",
    "current_task",
    "live_kernels",
]

# Maps OS thread ident -> task, for every live kernel task in the process.
# Keyed globally (not per kernel) so ambient helpers like ``repro.sleep``
# can find the kernel owning the calling thread.  While the model loop steps
# a model task, the loop thread's ident maps to that task.
_THREAD_TASKS: dict[int, Any] = {}
_THREAD_TASKS_LOCK = threading.Lock()

# Every kernel constructed in this process (weakly referenced): the test
# suite's thread-hygiene fixture uses this to shut down kernels a test
# created but never ran to completion.
_LIVE_KERNELS: "weakref.WeakSet[Kernel]" = weakref.WeakSet()


def current_task() -> Optional[Any]:
    """Return the kernel task running on this thread, or ``None``."""
    with _THREAD_TASKS_LOCK:
        return _THREAD_TASKS.get(threading.get_ident())


def current_kernel() -> Optional["Kernel"]:
    """Return the kernel owning the calling thread, or ``None``."""
    task = current_task()
    return task.kernel if task is not None else None


def live_kernels() -> list["Kernel"]:
    """Every kernel object still alive in this process (weakly tracked)."""
    return list(_LIVE_KERNELS)


# Ambient-context propagation: higher layers (e.g. repro.core.context)
# register capture/install/uninstall hooks so state bound to the *spawning*
# thread follows into spawned tasks — the way contextvars follow asyncio
# tasks.  Each propagator is (capture() -> token, install(token),
# uninstall(token)).  Propagators must restore a pristine (empty) thread
# state when ``uninstall`` is handed the token ``capture`` just returned —
# the model loop relies on that to context-switch between tasks per step.
_CONTEXT_PROPAGATORS: list[tuple[Callable[[], Any], Callable[[Any], None], Callable[[Any], None]]] = []


def register_context_propagator(
    capture: Callable[[], Any],
    install: Callable[[Any], None],
    uninstall: Callable[[Any], None],
) -> None:
    """Register a thread-context propagator applied around every task."""
    _CONTEXT_PROPAGATORS.append((capture, install, uninstall))


def _capture_context() -> list[tuple[Callable[[Any], None], Callable[[Any], None], Any]]:
    return [
        (install, uninstall, capture())
        for capture, install, uninstall in _CONTEXT_PROPAGATORS
    ]


# ---------------------------------------------------------------------------
# Kernel ops: what a model task (or a steps generator) yields to block.
# ---------------------------------------------------------------------------
class SleepOp:
    """Block for ``duration`` virtual seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        self.duration = float(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SleepOp({self.duration!r})"


class WaitOp:
    """Block until ``waiter`` is consumed (or ``timeout`` virtual seconds).

    The waiter must belong to the yielding task and already be reachable
    from whatever will wake it.  After resumption, inspect
    ``waiter.timed_out`` / ``waiter.payload``.
    """

    __slots__ = ("waiter", "timeout")

    def __init__(self, waiter: "Waiter", timeout: Optional[float] = None) -> None:
        self.waiter = waiter
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitOp({self.waiter!r}, timeout={self.timeout!r})"


class JoinOp:
    """Block until ``task`` (thread or model) finishes.

    Resumes with ``True`` if the task finished, ``False`` on timeout —
    the same contract as :meth:`Task.join`.
    """

    __slots__ = ("task", "timeout")

    def __init__(self, task: Any, timeout: Optional[float] = None) -> None:
        self.task = task
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JoinOp({self.task!r}, timeout={self.timeout!r})"


def vsleep(duration: float) -> SleepOp:
    """Op: sleep ``duration`` virtual seconds (``yield vsleep(5)``)."""
    return SleepOp(duration)


def vwait(waiter: "Waiter", timeout: Optional[float] = None) -> WaitOp:
    """Op: wait for ``waiter`` to be consumed (``yield vwait(w, 1.0)``)."""
    return WaitOp(waiter, timeout)


def vjoin(task: Any, timeout: Optional[float] = None) -> JoinOp:
    """Op: join a task (``ok = yield vjoin(child)``)."""
    return JoinOp(task, timeout)


class Task:
    """A pooled-thread task registered with a :class:`Kernel`.

    The public surface is intentionally small: ``name``, ``result()`` and
    ``join()``.  State transitions are owned by the kernel.
    """

    _RUNNING = "running"
    _BLOCKED = "blocked"
    _FINISHED = "finished"

    def __init__(self, kernel: "Kernel", name: str, task_id: int) -> None:
        self.kernel = kernel
        self.name = name
        self.task_id = task_id
        self.daemon = False
        self._state = Task._RUNNING
        self._wake = threading.Event()
        self._wake_exc: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._outcome_ready = threading.Event()
        self._result: Any = None
        self._exception: Optional[BaseException] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.task_id} {self.name!r} {self._state}>"

    @property
    def finished(self) -> bool:
        return self._state == Task._FINISHED

    def result(self) -> Any:
        """Return the task function's return value (task must be finished)."""
        if not self._outcome_ready.is_set():
            raise VTimeUsageError(
                f"task {self.name!r} has not finished; join() it first"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for this task to finish.

        When called from another kernel task, the wait blocks in *virtual*
        time.  When called from an outside (unregistered) thread — typically
        the pytest main thread driving :meth:`Kernel.run` — it blocks in real
        time, which is correct because outside threads are not part of the
        simulation.  Returns ``True`` if the task finished.
        """
        caller = current_task()
        if caller is None:
            self._outcome_ready.wait()
            return True
        return self.kernel._join_task(self, timeout)


class ModelTask:
    """A generator-based coroutine scheduled by the kernel's model loop.

    Shares the observable surface of :class:`Task` (``name``, ``finished``,
    ``result()``, ``join()``) but holds no OS thread: while blocked it is
    just a heap entry + a suspended generator frame.  It advances by
    yielding ops (:func:`vsleep` / :func:`vwait` / :func:`vjoin`); calling
    the blocking kernel primitives from inside one raises
    :class:`VTimeUsageError`.
    """

    # state constants shared with Task so kernel bookkeeping treats both
    # kinds uniformly
    _RUNNING = Task._RUNNING
    _BLOCKED = Task._BLOCKED
    _FINISHED = Task._FINISHED

    def __init__(self, kernel: "Kernel", name: str, task_id: int) -> None:
        self.kernel = kernel
        self.name = name
        self.task_id = task_id
        self.daemon = False
        self._state = ModelTask._RUNNING
        self._gen: Optional[Generator[Any, Any, Any]] = None
        self._pending_exc: Optional[BaseException] = None
        self._resume_value_fn: Optional[Callable[[], Any]] = None
        # ambient-context tokens, re-captured after every step:
        # [(capture, install, uninstall, token), ...]
        self._tokens: list[tuple] = []
        self._outcome_ready = threading.Event()
        self._result: Any = None
        self._exception: Optional[BaseException] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModelTask {self.task_id} {self.name!r} {self._state}>"

    @property
    def finished(self) -> bool:
        return self._state == ModelTask._FINISHED

    def result(self) -> Any:
        """Return the task generator's return value (task must be finished)."""
        if not self._outcome_ready.is_set():
            raise VTimeUsageError(
                f"model task {self.name!r} has not finished; join() it first"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for this model task to finish (see :meth:`Task.join`).

        From inside another *model* task, use ``yield vjoin(task)`` instead.
        """
        caller = current_task()
        if caller is None:
            self._outcome_ready.wait()
            return True
        return self.kernel._join_task(self, timeout)


class VTimeUsageError(NotInKernelError):
    """Misuse of the kernel API (kept as a NotInKernelError subclass)."""


class Waiter:
    """One pending reason a task is blocked (timer and/or condition slot).

    A waiter is *consumed* exactly once: either its timer fires, or the thing
    it waits on notifies it, whichever happens first.  ``payload`` carries an
    arbitrary wake reason to the woken task (used by queues/conditions).
    ``task`` may be a thread task or a model task.
    """

    __slots__ = ("task", "done", "timed_out", "payload", "on_consume")

    def __init__(self, task: Any) -> None:
        self.task = task
        self.done = False
        self.timed_out = False
        self.payload: Any = None
        # Optional callback run (under the kernel lock) when the waiter is
        # consumed; conditions use it to unlink themselves from wait queues.
        self.on_consume: Optional[Callable[["Waiter"], None]] = None


class _PoolWorker:
    """One recycled OS thread of the kernel's spawn pool."""

    __slots__ = ("thread", "ready", "job")

    def __init__(self) -> None:
        self.thread: Optional[threading.Thread] = None
        self.ready = threading.Event()
        # (task, fn, args, kwargs, tokens) while assigned; None = stop signal
        self.job: Optional[tuple] = None


class Kernel:
    """The virtual-time scheduler.  See module docstring.

    ``pool_size`` bounds how many *idle* worker threads are retained for
    reuse; it is not a concurrency cap — when more thread tasks are
    simultaneously alive than the pool holds, extra threads are created and
    retired once the pool is full again.  (A hard cap would deadlock nested
    executors, which block a thread task on children that need threads.)
    """

    def __init__(self, start_time: float = 0.0, pool_size: int = 32) -> None:
        if pool_size < 0:
            raise ValueError("pool_size must be >= 0")
        self._lock = threading.Lock()
        self._now = float(start_time)
        self._seq = itertools.count()
        self._task_ids = itertools.count(1)
        self._tasks: dict[int, Any] = {}
        self._running = 0  # tasks currently in RUNNING state
        self._nondaemon_alive = 0
        self._timers: list[tuple[float, int, Waiter]] = []
        self._dead = False
        self._shutdown_complete = False
        self._spawned_total = 0
        self._nondaemon_done = threading.Event()
        self._nondaemon_done.set()
        # --- recycling thread pool ---
        self._pool_size = int(pool_size)
        self._pool_idle: list[_PoolWorker] = []
        self._pool_workers: set[_PoolWorker] = set()
        self._worker_ids = itertools.count(1)
        self._threads_created = 0
        self._threads_recycled = 0
        self._live_worker_threads = 0
        self._peak_threads = 0
        # --- model-task loop ---
        self._model_ready: collections.deque[ModelTask] = collections.deque()
        self._loop_wake = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._loop_stop = False
        _LIVE_KERNELS.add(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    @property
    def tasks_alive(self) -> int:
        with self._lock:
            return len(self._tasks)

    @property
    def spawned_total(self) -> int:
        """Total number of tasks ever spawned on this kernel."""
        with self._lock:
            return self._spawned_total

    @property
    def pool_size(self) -> int:
        return self._pool_size

    def thread_stats(self) -> dict[str, int]:
        """Worker/loop thread accounting (for scale benches and tests)."""
        with self._lock:
            loop_alive = (
                1
                if self._loop_thread is not None and self._loop_thread.is_alive()
                else 0
            )
            return {
                "pool_size": self._pool_size,
                "threads_created": self._threads_created,
                "threads_recycled": self._threads_recycled,
                "live_threads": self._live_worker_threads + loop_alive,
                "peak_threads": self._peak_threads,
            }

    # ------------------------------------------------------------------
    # Task lifecycle: thread tasks
    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> Task:
        """Start ``fn(*args, **kwargs)`` as a new thread task.

        ``daemon`` tasks do not keep :meth:`run` alive; they are killed with
        :class:`KernelShutdownError` at shutdown.  The task counts as RUNNING
        from before its thread starts, so virtual time cannot slip past the
        spawn point.  The executing thread comes from the kernel's recycling
        pool when one is idle.
        """
        with self._lock:
            if self._dead:
                raise KernelShutdownError("kernel has been shut down")
            task = Task(self, name or fn.__name__, next(self._task_ids))
            task.daemon = daemon
            self._tasks[task.task_id] = task
            self._running += 1
            self._spawned_total += 1
            if not daemon:
                self._nondaemon_alive += 1
                self._nondaemon_done.clear()
            worker = self._pool_idle.pop() if self._pool_idle else None
            if worker is not None:
                self._threads_recycled += 1

        # capture the spawning thread's ambient context for the child
        tokens = _capture_context()
        job = (task, fn, args, kwargs, tokens)
        if worker is None:
            self._start_worker(job)
        else:
            task._thread = worker.thread
            worker.job = job
            worker.ready.set()
        return task

    def _start_worker(self, job: tuple) -> None:
        worker = _PoolWorker()
        worker.job = job
        worker.ready.set()
        thread = threading.Thread(
            target=self._worker_main,
            args=(worker,),
            name=f"vpool-{next(self._worker_ids)}",
            daemon=True,
        )
        worker.thread = thread
        job[0]._thread = thread
        with self._lock:
            self._pool_workers.add(worker)
            self._threads_created += 1
            self._live_worker_threads += 1
            self._note_peak_locked()
        thread.start()

    def _note_peak_locked(self) -> None:
        loop_alive = 1 if self._loop_thread is not None else 0
        self._peak_threads = max(
            self._peak_threads, self._live_worker_threads + loop_alive
        )

    def _worker_main(self, worker: _PoolWorker) -> None:
        while True:
            worker.ready.wait()
            worker.ready.clear()
            job, worker.job = worker.job, None
            if job is None:  # stop signal from shutdown
                break
            task, fn, args, kwargs, tokens = job
            self._run_task_on_thread(task, fn, args, kwargs, tokens)
            with self._lock:
                if self._dead or len(self._pool_idle) >= self._pool_size:
                    break
                self._pool_idle.append(worker)
        with self._lock:
            self._pool_workers.discard(worker)
            self._live_worker_threads -= 1

    def _run_task_on_thread(
        self, task: Task, fn: Callable[..., Any], args: tuple, kwargs: dict, tokens: list
    ) -> None:
        ident = threading.get_ident()
        with _THREAD_TASKS_LOCK:
            _THREAD_TASKS[ident] = task
        installed: list[tuple[Callable[[Any], None], Any]] = []
        try:
            for install, uninstall, token in tokens:
                install(token)
                installed.append((uninstall, token))
            task._result = fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised at join
            task._exception = exc
        finally:
            for uninstall, token in reversed(installed):
                try:
                    uninstall(token)
                except Exception:  # pragma: no cover - cleanup best effort
                    pass
            with _THREAD_TASKS_LOCK:
                _THREAD_TASKS.pop(ident, None)
            self._finish_task(task)

    # ------------------------------------------------------------------
    # Task lifecycle: model tasks
    # ------------------------------------------------------------------
    def spawn_model(
        self,
        fn: Callable[..., Generator[Any, Any, Any]],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> ModelTask:
        """Start generator function ``fn(*args, **kwargs)`` as a model task.

        The generator yields kernel ops (:func:`vsleep`, :func:`vwait`,
        :func:`vjoin`) to block in virtual time; its ``return`` value becomes
        the task result.  No OS thread is held while the task is blocked.
        """
        gen = fn(*args, **kwargs)
        if not (hasattr(gen, "send") and hasattr(gen, "throw")):
            raise VTimeUsageError(
                f"spawn_model() needs a generator function; {fn!r} returned "
                f"{type(gen).__name__}"
            )
        tokens = [
            (capture, install, uninstall, capture())
            for capture, install, uninstall in _CONTEXT_PROPAGATORS
        ]
        with self._lock:
            if self._dead:
                raise KernelShutdownError("kernel has been shut down")
            task = ModelTask(self, name or fn.__name__, next(self._task_ids))
            task.daemon = daemon
            task._gen = gen
            task._tokens = tokens
            self._tasks[task.task_id] = task
            self._running += 1
            self._spawned_total += 1
            if not daemon:
                self._nondaemon_alive += 1
                self._nondaemon_done.clear()
            self._enqueue_model_locked(task)
            self._ensure_loop_locked()
        return task

    def _enqueue_model_locked(self, task: ModelTask) -> None:
        self._model_ready.append(task)
        # set() takes the event's internal lock; while the loop is actively
        # draining, the flag is usually already set — is_set() is a plain
        # flag read, so this guard elides ~one lock round trip per step
        if not self._loop_wake.is_set():
            self._loop_wake.set()

    def _ensure_loop_locked(self) -> None:
        if self._loop_thread is None or not self._loop_thread.is_alive():
            self._loop_stop = False
            self._loop_thread = threading.Thread(
                target=self._loop_main, name="vloop", daemon=True
            )
            self._note_peak_locked()
            self._loop_thread.start()

    def _loop_main(self) -> None:
        batch: list[ModelTask] = []
        while True:
            self._loop_wake.wait()
            self._loop_wake.clear()
            while True:
                # Drain the whole ready deque under one lock acquisition.
                # Tasks enqueued while stepping the batch land on the deque
                # and are picked up on the next sweep — the execution order
                # is identical to popping one at a time (FIFO).
                with self._lock:
                    if not self._model_ready:
                        break
                    batch.extend(self._model_ready)
                    self._model_ready.clear()
                for task in batch:
                    self._step_model(task)
                batch.clear()
            with self._lock:
                if self._loop_stop and not self._model_ready:
                    return

    def _step_model(self, task: ModelTask) -> None:
        """Run one step of ``task`` on the loop thread.

        The task's ambient-context tokens are installed before the step and
        re-captured afterwards, so context mutated *during* the step (e.g. a
        ``tracer.bind`` held across a yield) follows the task, not the loop
        thread.  This relies on propagators restoring pristine thread state
        when uninstalled with their own freshly captured token.
        """
        ident = threading.get_ident()
        with _THREAD_TASKS_LOCK:
            _THREAD_TASKS[ident] = task
        for _capture, install, _uninstall, token in task._tokens:
            install(token)
        op: Any = None
        finished = False
        try:
            if task._pending_exc is not None:
                exc, task._pending_exc = task._pending_exc, None
                op = task._gen.throw(exc)
            else:
                fn = task._resume_value_fn
                task._resume_value_fn = None
                op = task._gen.send(fn() if fn is not None else None)
        except StopIteration as stop:
            task._result = stop.value
            finished = True
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised at join
            task._exception = exc
            finished = True
        finally:
            new_tokens = [
                (capture, install, uninstall, capture())
                for capture, install, uninstall, _old in task._tokens
            ]
            for _capture, _install, uninstall, token in reversed(new_tokens):
                try:
                    uninstall(token)
                except Exception:  # pragma: no cover - cleanup best effort
                    pass
            task._tokens = new_tokens
            with _THREAD_TASKS_LOCK:
                _THREAD_TASKS.pop(ident, None)
        if finished:
            self._finish_model(task)
        else:
            self._interpret_model_op(task, op)

    def _interpret_model_op(self, task: ModelTask, op: Any) -> None:
        with self._lock:
            if isinstance(op, SleepOp):
                waiter = Waiter(task)
                self._add_timer_locked(
                    self._now + max(0.0, op.duration), waiter
                )
                self._block_model_locked(task)
            elif isinstance(op, WaitOp):
                waiter = op.waiter
                if waiter.task is not task:
                    task._pending_exc = VTimeUsageError(
                        f"model task {task.name!r} yielded a WaitOp whose "
                        f"waiter belongs to {waiter.task!r}"
                    )
                    self._enqueue_model_locked(task)
                elif waiter.done:
                    # consumed between registration and the yield: no block
                    self._enqueue_model_locked(task)
                else:
                    if op.timeout is not None:
                        self._add_timer_locked(
                            self._now + max(0.0, op.timeout), waiter
                        )
                    self._block_model_locked(task)
            elif isinstance(op, JoinOp):
                target = op.task
                if target._state == ModelTask._FINISHED:
                    task._resume_value_fn = lambda: True
                    self._enqueue_model_locked(task)
                else:
                    waiter = Waiter(task)
                    target.__dict__.setdefault("_join_waiters", []).append(waiter)

                    def _unlink(w: Waiter, target=target) -> None:
                        lst = target.__dict__.get("_join_waiters", [])
                        if w in lst:
                            lst.remove(w)

                    waiter.on_consume = _unlink
                    if op.timeout is not None:
                        self._add_timer_locked(
                            self._now + max(0.0, op.timeout), waiter
                        )
                    task._resume_value_fn = (
                        lambda w=waiter: not w.timed_out
                    )
                    self._block_model_locked(task)
            else:
                task._pending_exc = VTimeUsageError(
                    f"model task {task.name!r} yielded {op!r}; expected "
                    "vsleep()/vwait()/vjoin()"
                )
                self._enqueue_model_locked(task)

    def _block_model_locked(self, task: ModelTask) -> None:
        task._state = ModelTask._BLOCKED
        self._running -= 1
        if self._running == 0:
            self._advance_locked()

    def _finish_model(self, task: ModelTask) -> None:
        with self._lock:
            task._state = ModelTask._FINISHED
            self._tasks.pop(task.task_id, None)
            self._running -= 1
            if not task.daemon:
                self._nondaemon_alive -= 1
                if self._nondaemon_alive == 0:
                    self._nondaemon_done.set()
            waiters = task.__dict__.pop("_join_waiters", [])
            for waiter in waiters:
                self._consume_waiter(waiter)
            if self._running == 0:
                self._advance_locked()
        task._gen = None
        task._outcome_ready.set()

    # ------------------------------------------------------------------
    # Steps interpreter: one generator, both task kinds
    # ------------------------------------------------------------------
    def drive(self, gen: Generator[Any, Any, Any]) -> Any:
        """Run a steps generator to completion, blocking at each op.

        This is the thread-task twin of ``yield from``: code written once as
        a generator of kernel ops serves model tasks (which delegate to it)
        and thread tasks (which ``drive`` it).  Returns the generator's
        return value; exceptions raised by ops are thrown into the generator
        so its ``try``/``finally`` blocks run.
        """
        value: Any = None
        exc: Optional[BaseException] = None
        while True:
            try:
                op = gen.throw(exc) if exc is not None else gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = None
            exc = None
            try:
                if isinstance(op, SleepOp):
                    self.sleep(op.duration)
                elif isinstance(op, WaitOp):
                    self.block_on(op.waiter, op.timeout)
                elif isinstance(op, JoinOp):
                    value = self._join_any(op.task, op.timeout)
                else:
                    raise VTimeUsageError(
                        f"steps generator yielded {op!r}; expected "
                        "vsleep()/vwait()/vjoin()"
                    )
            except BaseException as caught:  # noqa: BLE001 - rethrown into gen
                exc = caught

    def _join_any(self, task: Any, timeout: Optional[float]) -> bool:
        caller = current_task()
        if caller is None:
            task._outcome_ready.wait()
            return True
        return self._join_task(task, timeout)

    # ------------------------------------------------------------------
    # Run / shutdown
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` as the root task and return its result.

        Called from an outside thread (e.g. a test).  Blocks in real time
        until the root task and every non-daemon task it spawned finish, then
        shuts the kernel down.  Exceptions from the root task propagate.
        """
        root = self.spawn(fn, *args, name=kwargs.pop("name", "main"), **kwargs)
        root._outcome_ready.wait()
        # Let non-daemon descendants drain before declaring the run over.
        self._nondaemon_done.wait()
        self.shutdown()
        if root._exception is not None:
            raise root._exception
        return root._result

    def _finish_task(self, task: Task) -> None:
        with self._lock:
            task._state = Task._FINISHED
            self._tasks.pop(task.task_id, None)
            self._running -= 1
            if not task.daemon:
                self._nondaemon_alive -= 1
                if self._nondaemon_alive == 0:
                    self._nondaemon_done.set()
            waiters = task.__dict__.pop("_join_waiters", [])
            for waiter in waiters:
                self._consume_waiter(waiter)
            if self._running == 0:
                self._advance_locked()
        task._outcome_ready.set()

    def _join_task(self, task: Any, timeout: Optional[float]) -> bool:
        with self._lock:
            if task._state == Task._FINISHED:
                return True
            waiter = self._make_waiter()
            task.__dict__.setdefault("_join_waiters", []).append(waiter)

            def _unlink(w: Waiter) -> None:
                lst = task.__dict__.get("_join_waiters", [])
                if w in lst:
                    lst.remove(w)

            waiter.on_consume = _unlink
            if timeout is not None:
                self._add_timer_locked(self._now + timeout, waiter)
            self._block_current_locked(waiter.task)
        waiter.task._wake.wait()
        self._post_wake(waiter.task)
        return not waiter.timed_out

    def shutdown(self) -> None:
        """Kill remaining (daemon) tasks and reclaim pooled/loop threads.

        Blocked tasks get :class:`KernelShutdownError` raised at their wait
        point; idle pool workers are stopped; the model loop exits once its
        ready queue drains.  Idempotent.
        """
        with self._lock:
            if self._shutdown_complete:
                return
            self._dead = True
            for task in list(self._tasks.values()):
                if task._state != Task._BLOCKED:
                    continue
                exc = KernelShutdownError(
                    f"kernel shut down while task {task.name!r} was blocked"
                )
                task._state = Task._RUNNING
                self._running += 1
                if isinstance(task, ModelTask):
                    task._pending_exc = exc
                    self._enqueue_model_locked(task)
                else:
                    task._wake_exc = exc
                    task._wake.set()
            remaining = list(self._tasks.values())
        for task in remaining:
            task._outcome_ready.wait(timeout=5.0)
        # stop the model loop (after model tasks drained)
        with self._lock:
            self._loop_stop = True
            self._loop_wake.set()
            loop = self._loop_thread
        if loop is not None:
            loop.join(timeout=5.0)
        # stop idle pool workers; busy ones self-retire after their task
        while True:
            with self._lock:
                worker = self._pool_idle.pop() if self._pool_idle else None
            if worker is None:
                break
            worker.job = None
            worker.ready.set()
        with self._lock:
            threads = [
                w.thread for w in self._pool_workers if w.thread is not None
            ]
        for thread in threads:
            thread.join(timeout=5.0)
        with self._lock:
            self._shutdown_complete = True

    # ------------------------------------------------------------------
    # Blocking primitives (used by repro.vtime.sync and sleep)
    # ------------------------------------------------------------------
    def sleep(self, duration: float) -> None:
        """Block the calling thread task for ``duration`` virtual seconds."""
        task = self._require_current_task()
        with self._lock:
            waiter = Waiter(task)
            self._add_timer_locked(self._now + max(0.0, float(duration)), waiter)
            self._block_current_locked(task)
        task._wake.wait()
        self._post_wake(task)

    def _make_waiter(self) -> Waiter:
        return Waiter(self._require_current_task())

    def _require_current_task(self) -> Task:
        task = current_task()
        if task is None or task.kernel is not self:
            raise NotInKernelError(
                "this operation must run inside a task of this kernel "
                "(use Kernel.run()/Kernel.spawn())"
            )
        if isinstance(task, ModelTask):
            raise VTimeUsageError(
                f"model task {task.name!r} called a blocking kernel "
                "primitive; model tasks must yield "
                "vsleep()/vwait()/vjoin() instead"
            )
        return task

    def _add_timer_locked(self, when: float, waiter: Waiter) -> None:
        heapq.heappush(self._timers, (when, next(self._seq), waiter))

    def _block_current_locked(self, task: Task) -> None:
        """Mark the calling task blocked; advance time if it was the last runner.

        Caller holds the kernel lock, and must wait on ``task._wake`` (outside
        the lock) immediately after this returns.
        """
        task._wake.clear()
        task._state = Task._BLOCKED
        self._running -= 1
        if self._running == 0:
            self._advance_locked()

    def block_on(self, waiter: Waiter, timeout: Optional[float] = None) -> None:
        """Block the current thread task until ``waiter`` is consumed.

        The caller must have created ``waiter`` for the current task and made
        it reachable from whatever will eventually wake it.  Must *not* hold
        the kernel lock.  (Model tasks ``yield vwait(waiter)`` instead.)
        """
        task = waiter.task
        if isinstance(task, ModelTask):
            raise VTimeUsageError(
                f"block_on() called with a model-task waiter "
                f"({task.name!r}); yield vwait() instead"
            )
        with self._lock:
            if waiter.done:
                # Consumed between registration and blocking: do not block.
                return
            if timeout is not None:
                self._add_timer_locked(self._now + max(0.0, timeout), waiter)
            self._block_current_locked(task)
        task._wake.wait()
        self._post_wake(task)

    def wake(self, waiter: Waiter, payload: Any = None) -> bool:
        """Consume ``waiter`` (from any kernel task) and wake its task.

        Returns ``False`` if the waiter was already consumed (e.g. timed out).
        """
        with self._lock:
            return self._consume_waiter(waiter, payload)

    def _consume_waiter(self, waiter: Waiter, payload: Any = None) -> bool:
        if waiter.done:
            return False
        waiter.done = True
        waiter.payload = payload
        if waiter.on_consume is not None:
            waiter.on_consume(waiter)
        task = waiter.task
        if task._state == Task._BLOCKED:
            task._state = Task._RUNNING
            self._running += 1
            if isinstance(task, ModelTask):
                self._enqueue_model_locked(task)
            else:
                task._wake.set()
        return True

    def _post_wake(self, task: Task) -> None:
        exc = task._wake_exc
        if exc is not None:
            task._wake_exc = None
            raise exc

    # ------------------------------------------------------------------
    # The clock advance
    # ------------------------------------------------------------------
    def _advance_locked(self) -> None:
        """All tasks are blocked: move time forward and wake one waiter.

        Consumed (cancelled) timers are skipped.  If no live timer remains,
        the simulation is deadlocked; every blocked task gets a
        :class:`DeadlockError` so the failure is diagnosable.
        """
        while self._timers:
            when, _seq, waiter = heapq.heappop(self._timers)
            if waiter.done:
                continue
            if when < self._now:  # pragma: no cover - defensive
                when = self._now
            self._now = when
            waiter.timed_out = True
            self._consume_waiter(waiter)
            return
        blocked = [t for t in self._tasks.values() if t._state == Task._BLOCKED]
        if not blocked:
            return
        names = ", ".join(sorted(t.name for t in blocked))
        for task in blocked:
            exc = DeadlockError(
                f"virtual-time deadlock: all tasks blocked with no pending "
                f"timer (blocked tasks: {names})"
            )
            task._state = Task._RUNNING
            self._running += 1
            if isinstance(task, ModelTask):
                task._pending_exc = exc
                self._enqueue_model_locked(task)
            else:
                task._wake_exc = exc
                task._wake.set()
