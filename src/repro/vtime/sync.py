"""Synchronization primitives that block in virtual time.

These mirror the ``threading`` module's condition/event/semaphore/queue
surface, but a blocked task parks inside the :class:`~repro.vtime.Kernel`
so virtual time keeps advancing.  Real ``threading`` locks are still used to
guard shared state — they are only ever held for short critical sections,
never across a virtual-time block.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Iterable, Optional

from repro.vtime.kernel import Kernel, Task, Waiter, current_task, vwait

__all__ = ["VCondition", "VEvent", "VSemaphore", "VQueue", "QueueEmpty", "gather"]


class QueueEmpty(Exception):
    """Raised by :meth:`VQueue.get` on timeout."""


class VCondition:
    """A condition variable whose ``wait`` blocks in virtual time.

    Follows the ``threading.Condition`` contract: the underlying lock must be
    held around ``wait``/``notify`` calls.  Use as a context manager.
    """

    def __init__(self, kernel: Kernel, lock: Optional[threading.Lock] = None) -> None:
        self._kernel = kernel
        self._lock = lock if lock is not None else threading.Lock()
        self._waiters: list[Waiter] = []

    # -- lock protocol -------------------------------------------------
    def acquire(self) -> bool:
        return self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "VCondition":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    # -- condition protocol --------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Release the lock, block until notified or timed out, re-acquire.

        Returns ``False`` on timeout, like ``threading.Condition.wait``.
        """
        kernel = self._kernel
        task = kernel._require_current_task()
        waiter = Waiter(task)
        with kernel._lock:
            self._waiters.append(waiter)
            waiter.on_consume = self._unlink
        self._lock.release()
        try:
            kernel.block_on(waiter, timeout)
        finally:
            self._lock.acquire()
        return not waiter.timed_out

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        """Wait until ``predicate()`` is true; returns its final value."""
        if timeout is None:
            while not predicate():
                self.wait()
            return True
        kernel = self._kernel
        deadline = kernel.now() + timeout
        result = predicate()
        while not result:
            remaining = deadline - kernel.now()
            if remaining <= 0:
                return bool(predicate())
            self.wait(remaining)
            result = predicate()
        return bool(result)

    def register_waiter(self, waiter: Waiter) -> None:
        """Register an externally created waiter for ``notify`` delivery.

        This is the model-task half of :meth:`wait`: a model task cannot
        block here (that would wedge the kernel's loop thread), so it
        registers a waiter — *without* holding the condition's user lock
        across the block — and then yields ``vwait(waiter, timeout)``.
        Spurious wakeups are possible (the predicate must be re-checked),
        exactly like a timed :meth:`wait`.
        """
        with self._kernel._lock:
            self._waiters.append(waiter)
            waiter.on_consume = self._unlink

    def notify(self, n: int = 1) -> None:
        kernel = self._kernel
        with kernel._lock:
            woken = 0
            # _consume_waiter unlinks via on_consume, so iterate a snapshot.
            for waiter in list(self._waiters):
                if woken >= n:
                    break
                if kernel._consume_waiter(waiter):
                    woken += 1

    def notify_all(self) -> None:
        self.notify(n=len(self._waiters) + 1_000_000)

    def _unlink(self, waiter: Waiter) -> None:
        # Called under the kernel lock when a waiter is consumed (either by
        # notify or by its timeout timer firing).
        try:
            self._waiters.remove(waiter)
        except ValueError:  # pragma: no cover - already unlinked
            pass


class VEvent:
    """A one-way flag; ``wait`` blocks in virtual time until ``set``."""

    def __init__(self, kernel: Kernel) -> None:
        self._cond = VCondition(kernel)
        self._flag = False

    def is_set(self) -> bool:
        with self._cond:
            return self._flag

    def set(self) -> None:
        with self._cond:
            self._flag = True
            self._cond.notify_all()

    def clear(self) -> None:
        with self._cond:
            self._flag = False

    def wait(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self._flag, timeout)

    def wait_steps(self, timeout: Optional[float] = None):
        """Steps twin of :meth:`wait` for model tasks (``yield from``)."""
        kernel = self._cond._kernel
        deadline = None if timeout is None else kernel.now() + timeout
        while True:
            with self._cond:
                if self._flag:
                    return True
                remaining = None if deadline is None else deadline - kernel.now()
                if remaining is not None and remaining <= 0:
                    return False
                waiter = Waiter(current_task())
                self._cond.register_waiter(waiter)
            yield vwait(waiter, remaining)
            if waiter.timed_out:
                return self.is_set()


class VSemaphore:
    """A counting semaphore blocking in virtual time."""

    def __init__(self, kernel: Kernel, value: int = 1) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self._cond = VCondition(kernel)
        self._value = value

    @property
    def value(self) -> int:
        with self._cond:
            return self._value

    def acquire(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            ok = self._cond.wait_for(lambda: self._value > 0, timeout)
            if not ok:
                return False
            self._value -= 1
            return True

    def release(self, n: int = 1) -> None:
        with self._cond:
            self._value += n
            self._cond.notify(n)

    def __enter__(self) -> "VSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class VQueue:
    """An unbounded-or-bounded FIFO queue blocking in virtual time."""

    def __init__(self, kernel: Kernel, maxsize: int = 0) -> None:
        self._cond = VCondition(kernel)
        self._items: collections.deque[Any] = collections.deque()
        self._maxsize = maxsize

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def snapshot(self) -> list[Any]:
        """A copy of the queued items, oldest first, without consuming."""
        with self._cond:
            return list(self._items)

    def put(self, item: Any, timeout: Optional[float] = None) -> bool:
        with self._cond:
            if self._maxsize > 0:
                ok = self._cond.wait_for(
                    lambda: len(self._items) < self._maxsize, timeout
                )
                if not ok:
                    return False
            self._items.append(item)
            self._cond.notify_all()
            return True

    def get(self, timeout: Optional[float] = None) -> Any:
        with self._cond:
            ok = self._cond.wait_for(lambda: len(self._items) > 0, timeout)
            if not ok:
                raise QueueEmpty("VQueue.get timed out")
            item = self._items.popleft()
            self._cond.notify_all()
            return item


def gather(tasks: Iterable[Any]) -> list[Any]:
    """Join every task and return their results in order.

    Accepts thread tasks and model tasks (anything with ``join()`` and the
    kernel outcome attributes).  Raises the first task exception encountered
    (after joining all, so no task is left running unobserved).  Not callable
    from inside a model task — yield ``vjoin`` per task instead.
    """
    tasks = list(tasks)
    for task in tasks:
        task.join()
    first_exc: Optional[BaseException] = None
    results: list[Any] = []
    for task in tasks:
        if task._exception is not None and first_exc is None:
            first_exc = task._exception
        results.append(task._result)
    if first_exc is not None:
        raise first_exc
    return results
