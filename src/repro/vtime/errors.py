"""Exceptions raised by the virtual-time kernel."""

from __future__ import annotations


class VTimeError(Exception):
    """Base class for all virtual-time kernel errors."""


class NotInKernelError(VTimeError):
    """A virtual-time primitive was used from a thread that is not a kernel task.

    Blocking primitives (``sleep``, ``VCondition.wait`` ...) must run inside a
    task spawned via :meth:`repro.vtime.Kernel.spawn` or
    :meth:`repro.vtime.Kernel.run`; otherwise the kernel cannot know the
    caller is blocked and virtual time would never advance.
    """


class DeadlockError(VTimeError):
    """Every task is blocked and no timer is pending.

    Virtual time can only advance through timers, so this state can never
    resolve.  The kernel delivers this error to all blocked tasks so the
    failure surfaces where the wait happened instead of hanging the suite.
    """


class KernelShutdownError(VTimeError):
    """The kernel was shut down while a task was still blocked."""
