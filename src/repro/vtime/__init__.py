"""Virtual-time execution substrate.

``repro.vtime`` lets the whole emulated cloud (client, invokers, containers,
object storage) run on real threads while time is simulated, so the paper's
minute-scale experiments finish in milliseconds.  See
:mod:`repro.vtime.kernel` for the mechanism.

Ambient helpers :func:`sleep` and :func:`now` operate on the kernel owning
the calling thread, falling back to wall-clock time outside a kernel so user
functions are runnable in both worlds.
"""

from __future__ import annotations

import time as _time

from repro.vtime.errors import (
    DeadlockError,
    KernelShutdownError,
    NotInKernelError,
    VTimeError,
)
from repro.vtime.kernel import (
    JoinOp,
    Kernel,
    ModelTask,
    SleepOp,
    Task,
    Waiter,
    WaitOp,
    current_kernel,
    current_task,
    live_kernels,
    vjoin,
    vsleep,
    vwait,
)
from repro.vtime.sync import (
    QueueEmpty,
    VCondition,
    VEvent,
    VQueue,
    VSemaphore,
    gather,
)

__all__ = [
    "Kernel",
    "Task",
    "ModelTask",
    "Waiter",
    "SleepOp",
    "WaitOp",
    "JoinOp",
    "vsleep",
    "vwait",
    "vjoin",
    "live_kernels",
    "VCondition",
    "VEvent",
    "VQueue",
    "VSemaphore",
    "QueueEmpty",
    "gather",
    "current_kernel",
    "current_task",
    "sleep",
    "now",
    "VTimeError",
    "DeadlockError",
    "KernelShutdownError",
    "NotInKernelError",
]


def sleep(seconds: float) -> None:
    """Sleep in virtual time inside a kernel, or in real time outside one.

    This is the hook benchmark functions use to model compute: a cloud
    function that "computes for 50 seconds" simply calls
    ``repro.vtime.sleep(50)``.
    """
    kernel = current_kernel()
    if kernel is None:
        _time.sleep(seconds)
    else:
        kernel.sleep(seconds)


def now() -> float:
    """Current time: virtual inside a kernel, wall clock outside."""
    kernel = current_kernel()
    if kernel is None:
        return _time.monotonic()
    return kernel.now()
