"""``repro.chaos`` — deterministic, seed-driven fault injection.

The paper's headline experiments only work because IBM-PyWren tolerates
platform pushback: throttling, cold-start variance, transient COS errors
and outright lost invocations over the WAN.  This module lets the
reproduction *cause* those failures on demand, repeatably:

* container **crashes** and **hangs** mid-execution (consumed by the
  controller in :mod:`repro.faas.controller`);
* **invoker-node blackouts** — scheduled windows during which a node
  accepts no placements (:mod:`repro.faas.invoker_node`);
* COS transient **503/SlowDown** errors and **slow reads**
  (:mod:`repro.cos.client` / :mod:`repro.cos.object_store`);
* **link degradation** — inflated RTTs and extra transient drops
  (:mod:`repro.net.link`);
* synthetic **429 throttles** from the controller;
* **client crashes** — the *driver* dies at a seeded virtual time while
  cloud-side work keeps running (consumed by the executor's submit/wait
  paths and the DAG watcher; recover with the event journal's
  ``reattach``, see :mod:`repro.events`);
* **exchange store-VM crashes** — a provisioned ephemeral-store node of
  the VM exchange backend dies at a seeded time, losing its memory
  (:mod:`repro.exchange.vm`; readers fall back to COS transparently).

Determinism contract: every decision is drawn from a private RNG keyed by
``(profile seed, fault site, stable per-event key)`` — an activation id, a
link's seed plus its request index, a node id.  Decisions therefore do not
depend on thread interleavings or on each other, so a given
``(profile, seed)`` pair reproduces the exact same fault timeline on the
virtual-time kernel, and an inert profile leaves every existing RNG stream
untouched (``profile="none"`` is byte-identical to running without chaos).

Usage::

    profile = ChaosProfile("storm", seed=7)
    env = CloudEnvironment.create(chaos=profile)
    ...
    env.chaos.timeline          # the reproducible fault record
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ChaosProfile", "ChaosPlane", "FaultEvent", "PROFILE_PRESETS"]

#: horizon (virtual seconds) over which node blackout windows are scheduled
BLACKOUT_HORIZON_S = 4 * 3600.0

#: knob presets for the named profiles
PROFILE_PRESETS: dict[str, dict[str, float]] = {
    "none": {},
    "flaky-cos": {
        "cos_error_prob": 0.08,
        "cos_slow_read_prob": 0.05,
        "cos_slow_read_factor": 4.0,
    },
    "crashy-workers": {
        "crash_prob": 0.08,
        "hang_prob": 0.02,
        "hang_s": 45.0,
    },
    "storm": {
        "crash_prob": 0.05,
        "hang_prob": 0.01,
        "hang_s": 45.0,
        "cos_error_prob": 0.05,
        "cos_slow_read_prob": 0.03,
        "cos_slow_read_factor": 3.0,
        "throttle_prob": 0.05,
        "link_latency_factor": 1.5,
        "link_failure_boost": 0.01,
        "blackout_rate_per_hour": 2.0,
        "blackout_duration_s": 60.0,
    },
    "client-crash": {
        "client_crash_window_s": 60.0,
    },
    "vm-node-crash": {
        "vm_crash_prob": 1.0,
        "vm_crash_window_s": 60.0,
    },
    # A multi-tenant region having a bad day: heavy synthetic throttling
    # plus background container churn, the regime the tenant-storm bench
    # and the slow fairness suite run the fair dispatcher under.
    "tenant-storm": {
        "throttle_prob": 0.10,
        "crash_prob": 0.02,
        "hang_prob": 0.005,
        "hang_s": 30.0,
        "link_latency_factor": 1.25,
    },
}


def _stream_seed(*key: Any) -> int:
    """Stable 64-bit seed for a fault-site RNG (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded on the timeline."""

    #: virtual time the fault was injected (window start for blackouts)
    t: float
    #: fault site: "container" | "cos" | "link" | "throttle" | "blackout"
    #: | "client" | "vm"
    site: str
    #: fault kind: "crash" | "hang" | "503" | "slowdown" | "slow-read" |
    #: "drop" | "429" | "window"
    kind: str
    #: what was hit (activation id, link seed, node id, ...)
    target: str
    #: owning tenant namespace, when the injecting layer knows it
    #: (multi-tenant regions stamp throttles and container faults)
    tenant: Optional[str] = None

    def key(self) -> tuple[str, str, str]:
        """Time-free identity, for comparing timelines across runs."""
        return (self.site, self.kind, self.target)


class ChaosProfile:
    """A named bundle of fault-injection knobs plus the master seed.

    ``ChaosProfile("storm", seed=7)`` looks up the preset; keyword
    overrides tweak individual knobs (``ChaosProfile("crashy-workers",
    seed=1, crash_prob=1.0)``).  All probabilities are per-event.
    """

    #: knob names and their inert defaults
    KNOBS = {
        "crash_prob": 0.0,          # container dies mid-execution
        "hang_prob": 0.0,           # container wedges, reaped after hang_s
        "hang_s": 45.0,             # how long a hung container lingers
        "cos_error_prob": 0.0,      # COS request answered 503/SlowDown
        "cos_slow_read_prob": 0.0,  # COS transfer runs slow
        "cos_slow_read_factor": 3.0,  # slowdown multiple on transfer time
        "throttle_prob": 0.0,       # synthetic 429 on invoke
        "link_latency_factor": 1.0,  # RTT multiplier on every request
        "link_failure_boost": 0.0,  # extra transient-drop probability
        "blackout_rate_per_hour": 0.0,  # node blackout windows per hour
        "blackout_duration_s": 60.0,    # blackout window length
        "client_crash_at_s": 0.0,       # kill the driver at this vtime (0 = off)
        "client_crash_window_s": 0.0,   # ... or at a seeded time in (0, window]
        "vm_crash_prob": 0.0,           # an exchange store VM dies (per node)
        "vm_crash_window_s": 120.0,     # ... at a seeded time in (0, window]
    }

    def __init__(self, name: str = "none", seed: int = 0, **overrides: float) -> None:
        if name not in PROFILE_PRESETS:
            raise ValueError(
                f"unknown chaos profile {name!r} "
                f"(known: {sorted(PROFILE_PRESETS)})"
            )
        unknown = set(overrides) - set(self.KNOBS)
        if unknown:
            raise ValueError(
                f"unknown chaos knobs: {sorted(unknown)} "
                f"(known: {sorted(self.KNOBS)})"
            )
        self.name = name
        self.seed = seed
        knobs = {**self.KNOBS, **PROFILE_PRESETS[name], **overrides}
        for knob, value in knobs.items():
            setattr(self, knob, float(value))
        self._validate()

    def _validate(self) -> None:
        for knob in (
            "crash_prob",
            "hang_prob",
            "cos_error_prob",
            "cos_slow_read_prob",
            "throttle_prob",
            "link_failure_boost",
        ):
            p = getattr(self, knob)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{knob} must be in [0, 1], got {p}")
        if self.crash_prob + self.hang_prob > 1.0:
            raise ValueError("crash_prob + hang_prob must not exceed 1")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")
        if self.cos_slow_read_factor < 1.0:
            raise ValueError("cos_slow_read_factor must be >= 1")
        if self.link_latency_factor < 1.0:
            raise ValueError("link_latency_factor must be >= 1")
        if self.blackout_rate_per_hour < 0:
            raise ValueError("blackout_rate_per_hour must be non-negative")
        if self.blackout_duration_s <= 0:
            raise ValueError("blackout_duration_s must be positive")
        if self.client_crash_at_s < 0:
            raise ValueError("client_crash_at_s must be non-negative")
        if self.client_crash_window_s < 0:
            raise ValueError("client_crash_window_s must be non-negative")
        if not (0.0 <= self.vm_crash_prob <= 1.0):
            raise ValueError(
                f"vm_crash_prob must be in [0, 1], got {self.vm_crash_prob}"
            )
        if self.vm_crash_window_s <= 0:
            raise ValueError("vm_crash_window_s must be positive")

    @property
    def enabled(self) -> bool:
        """Whether this profile injects any fault at all."""
        return (
            self.crash_prob > 0
            or self.hang_prob > 0
            or self.cos_error_prob > 0
            or self.cos_slow_read_prob > 0
            or self.throttle_prob > 0
            or self.link_latency_factor > 1.0
            or self.link_failure_boost > 0
            or self.blackout_rate_per_hour > 0
            or self.client_crash_at_s > 0
            or self.client_crash_window_s > 0
            or self.vm_crash_prob > 0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChaosProfile {self.name!r} seed={self.seed}>"


class ChaosPlane:
    """The live fault injector one :class:`ChaosProfile` drives.

    One plane per environment; every layer consults it through narrow
    hooks.  All hooks are cheap no-ops when the profile is inert.  Faults
    actually injected are appended to :attr:`timeline`.
    """

    def __init__(self, profile: ChaosProfile) -> None:
        self.profile = profile
        self.timeline: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._blackouts: dict[int, list[tuple[float, float]]] = {}
        #: optional :class:`repro.trace.Tracer`; injected faults are mirrored
        #: onto the trace spine as ``chaos.<site>`` points
        self.tracer = None
        #: driver generation: 0 is the original client process; each
        #: ``begin_new_client()`` (a reattach) starts a new one.  The
        #: client-crash fault only ever kills generation 0.
        self.client_epoch = 0
        self._client_crash_recorded = False

    # -- bookkeeping -------------------------------------------------------
    def record(
        self,
        t: float,
        site: str,
        kind: str,
        target: str,
        tenant: Optional[str] = None,
    ) -> None:
        with self._lock:
            self.timeline.append(FaultEvent(t, site, kind, target, tenant))
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            attrs = {"kind": kind, "target": target}
            if tenant is not None:
                attrs["tenant"] = tenant
            tracer.point(f"chaos.{site}", "chaos", t=t, **attrs)

    def timeline_key(self) -> list[tuple[str, str, str]]:
        """Order-insensitive timeline identity (sorted event keys)."""
        with self._lock:
            return sorted(event.key() for event in self.timeline)

    def fault_counts(self) -> dict[str, int]:
        """Injected faults by ``site:kind`` (e.g. ``{"cos:503": 4}``)."""
        counts: dict[str, int] = {}
        with self._lock:
            for event in self.timeline:
                label = f"{event.site}:{event.kind}"
                counts[label] = counts.get(label, 0) + 1
        return counts

    def fault_counts_by_tenant(self) -> dict[str, dict[str, int]]:
        """Per-tenant fault counts by ``site:kind``.

        Only events stamped with a tenant appear (multi-tenant regions
        stamp throttles and container faults); others aggregate under
        ``""``.
        """
        counts: dict[str, dict[str, int]] = {}
        with self._lock:
            for event in self.timeline:
                label = f"{event.site}:{event.kind}"
                bucket = counts.setdefault(event.tenant or "", {})
                bucket[label] = bucket.get(label, 0) + 1
        return counts

    def _rng(self, site: str, *key: Any) -> random.Random:
        return random.Random(_stream_seed(self.profile.seed, site, *key))

    # -- container faults (controller) ------------------------------------
    def container_fate(self, activation_id: str) -> tuple[str, float]:
        """Decide this activation's fate: ``("run", 0)``, ``("crash", t)``
        (dies ``t`` seconds in), or ``("hang", t)`` (wedges, reaped after
        ``t``).  Keyed by activation id, so the decision is independent of
        scheduling order."""
        p = self.profile
        if p.crash_prob <= 0 and p.hang_prob <= 0:
            return "run", 0.0
        rng = self._rng("container", activation_id)
        draw = rng.random()
        if draw < p.crash_prob:
            return "crash", rng.uniform(0.1, 2.0)
        if draw < p.crash_prob + p.hang_prob:
            return "hang", p.hang_s
        return "run", 0.0

    # -- COS faults (cos client/object store) ------------------------------
    def cos_fault(self, stream: int, index: int) -> Optional[tuple[str, float]]:
        """Fault for the ``index``-th request of COS-client stream
        ``stream``: ``("503"| "slowdown", 0)`` or ``("slow-read", factor)``,
        or ``None``."""
        p = self.profile
        if p.cos_error_prob <= 0 and p.cos_slow_read_prob <= 0:
            return None
        rng = self._rng("cos", stream, index)
        draw = rng.random()
        if draw < p.cos_error_prob:
            kind = "503" if rng.random() < 0.5 else "slowdown"
            return kind, 0.0
        if draw < p.cos_error_prob + p.cos_slow_read_prob:
            return "slow-read", p.cos_slow_read_factor
        return None

    # -- link degradation (net) --------------------------------------------
    def link_degradation(self, link_seed: int, index: int) -> tuple[float, bool]:
        """(RTT multiplier, extra transient drop?) for one link request."""
        p = self.profile
        if p.link_latency_factor <= 1.0 and p.link_failure_boost <= 0:
            return 1.0, False
        drop = False
        if p.link_failure_boost > 0:
            drop = self._rng("link", link_seed, index).random() < p.link_failure_boost
        return p.link_latency_factor, drop

    # -- throttling (controller) -------------------------------------------
    def should_throttle(self, invoke_index: int) -> bool:
        """Synthetic 429 for the ``invoke_index``-th accepted invoke."""
        p = self.profile
        if p.throttle_prob <= 0:
            return False
        return self._rng("throttle", invoke_index).random() < p.throttle_prob

    # -- client crash (executor / DAG watcher) ------------------------------
    def client_crash_time(self) -> Optional[float]:
        """Virtual time the original driver dies, or ``None`` (no crash).

        An explicit ``client_crash_at_s`` wins; otherwise a time is drawn
        once, uniformly from ``(0, client_crash_window_s]``, from an RNG
        keyed by the profile seed — "kill the client at a seeded virtual
        time".
        """
        p = self.profile
        if p.client_crash_at_s > 0:
            return p.client_crash_at_s
        if p.client_crash_window_s > 0:
            rng = self._rng("client-crash")
            return p.client_crash_window_s * (1.0 - rng.random())
        return None

    def client_dead(self, epoch: int, now: float) -> bool:
        """Whether the driver of generation ``epoch`` is dead at ``now``.

        Only the original generation (epoch 0) is subject to the crash;
        reattached drivers (``begin_new_client()``) run to completion.
        """
        if epoch != 0:
            return False
        t = self.client_crash_time()
        return t is not None and now >= t

    def check_client(self, epoch: int, now: float) -> None:
        """Raise :class:`~repro.core.errors.ClientCrashError` if the
        driver of generation ``epoch`` is dead at virtual time ``now``.

        The fault is recorded on the timeline once, at the first check
        that observes the crash.
        """
        if not self.client_dead(epoch, now):
            return
        from repro.core.errors import ClientCrashError

        t = self.client_crash_time()
        with self._lock:
            record = not self._client_crash_recorded
            self._client_crash_recorded = True
        if record:
            self.record(t, "client", "crash", f"driver@{t:.3f}")
        raise ClientCrashError(
            f"client-crash chaos killed the driver at t={t:.3f}s "
            f"(observed at t={now:.3f}s)"
        )

    def begin_new_client(self) -> int:
        """Register a replacement driver; returns its (crash-immune) epoch."""
        with self._lock:
            self.client_epoch += 1
            return self.client_epoch

    # -- exchange store-VM crashes (repro.exchange.vm) -----------------------
    def vm_node_crash_time(self, node_id: int) -> Optional[float]:
        """Virtual time exchange store-VM ``node_id`` dies, or ``None``.

        Drawn once per node from an RNG keyed by ``("vm", node_id)``:
        with probability ``vm_crash_prob`` the node crashes at a seeded
        time in ``(0, vm_crash_window_s]``.  The VM exchange backend
        applies it — memory contents vanish, readers fall back to COS,
        and the node rejoins empty after its startup delay.
        """
        p = self.profile
        if p.vm_crash_prob <= 0:
            return None
        rng = self._rng("vm", node_id)
        if rng.random() >= p.vm_crash_prob:
            return None
        return p.vm_crash_window_s * (1.0 - rng.random())

    # -- invoker-node blackouts (invoker_node/controller) -------------------
    def blackout_windows(self, node_id: int) -> list[tuple[float, float]]:
        """Scheduled ``(start, end)`` blackout windows for one node.

        Poisson arrivals at ``blackout_rate_per_hour`` over
        ``BLACKOUT_HORIZON_S``, generated once per node and recorded on the
        timeline at generation time."""
        with self._lock:
            cached = self._blackouts.get(node_id)
        if cached is not None:
            return cached
        p = self.profile
        windows: list[tuple[float, float]] = []
        if p.blackout_rate_per_hour > 0:
            rng = self._rng("blackout", node_id)
            t = 0.0
            mean_gap = 3600.0 / p.blackout_rate_per_hour
            while True:
                t += rng.expovariate(1.0 / mean_gap)
                if t >= BLACKOUT_HORIZON_S:
                    break
                windows.append((t, t + p.blackout_duration_s))
        with self._lock:
            if node_id not in self._blackouts:
                self._blackouts[node_id] = windows
                recorded = windows
                for start, _end in windows:
                    self.timeline.append(
                        FaultEvent(
                            start, "blackout", "window", f"node-{node_id}@{start:.3f}"
                        )
                    )
            else:
                recorded = []
            result = self._blackouts[node_id]
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            for start, _end in recorded:
                tracer.point(
                    "chaos.blackout", "chaos", t=start,
                    kind="window", target=f"node-{node_id}@{start:.3f}",
                )
        return result


def build_plane(chaos) -> Optional[ChaosPlane]:
    """Normalize a ``chaos=`` argument into an active plane or ``None``.

    Accepts ``None``, a profile name (``"storm"``), a
    :class:`ChaosProfile`, or a ready :class:`ChaosPlane`.  Inert profiles
    yield ``None`` so the simulation stays byte-identical to a chaos-free
    run.
    """
    if chaos is None:
        return None
    if isinstance(chaos, ChaosPlane):
        return chaos if chaos.profile.enabled else None
    if isinstance(chaos, str):
        chaos = ChaosProfile(chaos)
    if not isinstance(chaos, ChaosProfile):
        raise TypeError(
            "chaos must be None, a profile name, a ChaosProfile or a ChaosPlane"
        )
    return ChaosPlane(chaos) if chaos.enabled else None
