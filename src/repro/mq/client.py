"""Latency-charging MQ client (one per endpoint, like COSClient)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mq.broker import MessageBroker, QueueNotFound
from repro.net.link import NetworkLink
from repro.vtime import QueueEmpty

#: approximate wire size of a status message
STATUS_MESSAGE_BYTES = 512


@dataclass(frozen=True)
class _Envelope:
    """Broker-side wrapper carrying the publish timestamp.

    Deliveries are pipelined: a message published at ``sent_at`` reaches a
    subscriber at ``sent_at + rtt/2`` regardless of how many other messages
    are in flight, like frames on an open AMQP channel.
    """

    sent_at: float
    payload: Any


class MQClient:
    """Publish/consume with the endpoint's network cost applied.

    Consumption models an open AMQP channel: the subscriber pays one RTT to
    set up (`subscribe`), then deliveries arrive with half-RTT transport
    delay, not a full request-response per message — this is precisely the
    latency advantage push monitoring has over COS polling.
    """

    def __init__(self, broker: MessageBroker, link: NetworkLink) -> None:
        self.broker = broker
        self.link = link
        self._subscribed: set[str] = set()

    def declare_queue(self, name: str) -> None:
        self.link.request_with_retries(0)
        self.broker.declare_queue(name)

    def publish(self, queue: str, message: Any) -> None:
        self.link.request_with_retries(STATUS_MESSAGE_BYTES)
        self.broker.publish(
            queue, _Envelope(self.link.kernel.now(), message)
        )

    def publish_steps(self, queue: str, message: Any):
        """Steps twin of :meth:`publish` (model tasks ``yield from``)."""
        yield from self.link.request_with_retries_steps(STATUS_MESSAGE_BYTES)
        self.broker.publish(
            queue, _Envelope(self.link.kernel.now(), message)
        )

    def browse(self, queue: str) -> list[Any]:
        """Read every queued message without consuming (one round trip).

        Used by the event journal's MQ backend to replay the log: the
        stream must survive the read so later resumes (or auditors) can
        replay it again.
        """
        self.link.request_with_retries(0)
        out = []
        for message in self.broker.browse(queue):
            if isinstance(message, _Envelope):
                out.append(message.payload)
            else:
                out.append(message)
        return out

    def subscribe(self, queue: str) -> None:
        """Open the channel (one round trip, then deliveries are pushed)."""
        if queue not in self._subscribed:
            self.link.request_with_retries(0)
            self._subscribed.add(queue)

    def consume(self, queue: str, timeout: Optional[float] = None) -> Any:
        """Receive one message; blocks in virtual time until delivery.

        Pays the *remaining* delivery delay of the message (publish time +
        half an RTT), so back-to-back deliveries do not serialize.
        """
        self.subscribe(queue)
        message = self.broker.consume(queue, timeout=timeout)
        kernel = self.link.kernel
        if isinstance(message, _Envelope):
            arrival = message.sent_at + self.link.latency.rtt / 2.0
            delay = arrival - kernel.now()
            if delay > 0:
                kernel.sleep(delay)
            return message.payload
        # a raw broker-level message: charge a fresh half-RTT delivery
        kernel.sleep(self.link.latency.rtt / 2.0)
        return message
