"""In-cloud message queue service (RabbitMQ stand-in).

The COS-polling completion transport of §4.2 costs up to one poll interval
of latency per status discovery.  The IBM-PyWren lineage later added a
RabbitMQ transport where each function *pushes* its status to a queue the
client consumes.  This package provides the broker substrate; the executor
integrates it behind ``PyWrenConfig.monitoring = "mq_push"``.
"""

from repro.mq.broker import MessageBroker, QueueNotFound
from repro.mq.client import MQClient

__all__ = ["MessageBroker", "MQClient", "QueueNotFound"]
