"""The broker: named FIFO queues with virtual-time blocking consumption."""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.vtime import Kernel, QueueEmpty, VQueue


class QueueNotFound(Exception):
    """Publish/consume on a queue that was never declared."""


class MessageBroker:
    """A process-wide message broker (data plane, no latency).

    Latency accounting lives in :class:`repro.mq.client.MQClient`, mirroring
    the COS split: one broker, many endpoints with different network paths.
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._queues: dict[str, VQueue] = {}
        self._lock = threading.Lock()
        self._published = 0
        self._consumed = 0

    def declare_queue(self, name: str) -> None:
        """Create a queue; idempotent, like AMQP queue.declare."""
        if not name:
            raise ValueError("queue name must be non-empty")
        with self._lock:
            if name not in self._queues:
                self._queues[name] = VQueue(self.kernel)

    def delete_queue(self, name: str) -> None:
        with self._lock:
            self._queues.pop(name, None)

    def queue_exists(self, name: str) -> bool:
        with self._lock:
            return name in self._queues

    def _queue(self, name: str) -> VQueue:
        with self._lock:
            try:
                return self._queues[name]
            except KeyError:
                raise QueueNotFound(name) from None

    def publish(self, queue: str, message: Any) -> None:
        self._queue(queue).put(message)
        with self._lock:
            self._published += 1

    def consume(self, queue: str, timeout: Optional[float] = None) -> Any:
        """Blocking (virtual-time) consume; raises QueueEmpty on timeout."""
        message = self._queue(queue).get(timeout=timeout)
        with self._lock:
            self._consumed += 1
        return message

    def browse(self, queue: str) -> list[Any]:
        """Peek every queued message, oldest first, without consuming.

        The journal's MQ backend replays from this: resume must read the
        whole event stream while leaving it intact for later readers
        (AMQP basic.get with requeue, approximately).
        """
        return self._queue(queue).snapshot()

    def depth(self, queue: str) -> int:
        return len(self._queue(queue))

    @property
    def published(self) -> int:
        with self._lock:
            return self._published

    @property
    def consumed(self) -> int:
        with self._lock:
            return self._consumed
