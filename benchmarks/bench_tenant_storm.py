"""Tenant-storm benchmark: weighted-fair dispatch vs first-come under overload.

Hundreds of tenants submit Fig. 3-shaped jobs (60-second tasks) into a
cluster an order of magnitude too small to run them all at once, under
three modes from the same seed:

* **fifo** — the unfair baseline: admitted invocations dispatch in global
  arrival order, so early-arriving tenants monopolise the cluster and the
  late ones queue behind every earlier job;
* **drr** — the multi-tenant control plane's deficit-round-robin
  dispatcher (equal weights): each backlogged tenant earns one
  default-action's credit per round;
* **drr-storm** — DRR again, with the ``tenant-storm`` chaos profile on
  top (synthetic 429 storms, container crashes/hangs, inflated WAN
  latency): fairness must survive a region having a bad day.

Per mode, the report gives the per-tenant makespan spread (min / p50 /
p95 / max), **Jain's fairness index** over per-tenant service during the
saturated window (``x_i`` = tasks dispatched for tenant *i* while every
tenant is backlogged — the classic DRR fairness measurement of Shreedhar
& Varghese), and aggregate task throughput, plus per-tenant billing and
fault accounting.  A weighted-fair dispatcher serves every backlogged
tenant its share inside any such window, so the ``x_i`` are near-equal;
first-come works through arrival order, serving only a contiguous band
of tenants per window and starving the rest to zero — exactly the
inequality Jain's index flags.  (Makespan-shaped metrics cannot see
this: at 7x overload *every* schedule finishes near the horizon, and the
spread is dominated by whoever lands in the initially idle cluster.)

Acceptance: DRR's Jain index >= 0.9 with the first-come baseline clearly
below it, equal aggregate throughput (both dispatchers are
work-conserving), and all tasks completing in every mode.

Run via ``make bench-tenant-storm``; writes ``BENCH_tenant_storm.json``.
"""

from __future__ import annotations

import json
import math
import os

from repro.chaos import ChaosProfile
from repro.config import TenantConfig
from repro.core.cost import tenant_billing_rollup
from repro.core.environment import CloudEnvironment
from repro.faas import CloudFunctionsClient, SystemLimits
from repro.faas.tenants import TenantRegistry
from repro.net import LatencyModel, NetworkLink
from repro.vtime.kernel import vsleep

SEED = 2024
CHAOS_SEED = 9
N_TENANTS = 200
TASKS_PER_TENANT = 8
TASK_S = 60.0
#: the mixed-workload region: tenants run one of three BI/analytics job
#: shapes (PR 10's workload suite) — short scan partitions, mid-sized
#: streaming window maps, long batch stages.  DRR equalizes *dispatches*,
#: not busy-seconds, so fairness is asserted within each class.
MIXED_CLASSES = (("scan", 20.0), ("stream", 45.0), ("batch", 90.0))
#: tenants arrive over a 10 s window — enough spread that first-come
#: order is a staircase, far less than any tenant's fair makespan
ARRIVAL_STAGGER_S = 0.05
#: 8 invokers x 4 GB = 128 resident 256 MB actions: 1600 tasks queue
LIMITS = dict(invoker_count=8, invoker_memory_mb=4096)
ACTION = "fig3"
OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_tenant_storm.json"
)


def fig3_handler(params, ctx):
    """One Fig. 3-shaped task: a fixed slab of modelled compute."""
    yield from ctx.compute_steps(params["task_s"])
    return params["i"]


def _submitter(env, index, namespace, n_tasks, task_s, clients):
    """Model task: one tenant's client submitting its whole job."""
    client = CloudFunctionsClient(
        env.platform,
        NetworkLink(env.kernel, LatencyModel.lan(), seed=10_000 + index),
    )
    clients[namespace] = client
    yield vsleep(index * ARRIVAL_STAGGER_S)
    for i in range(n_tasks):
        yield from client.invoke_steps(
            namespace, ACTION, {"i": i, "task_s": task_s}
        )


def run_mode(
    policy: str,
    chaos=None,
    n_tenants: int = N_TENANTS,
    tasks_per_tenant: int = TASKS_PER_TENANT,
    task_s: float = TASK_S,
    seed: int = SEED,
    classes=None,
):
    """One full storm from ``seed``; returns the per-mode report dict.

    With ``classes`` (a tuple of ``(name, task_s)``), tenant *i* runs the
    ``i % len(classes)``-th job shape and the report adds a per-class
    Jain fairness breakdown — the mixed scan/stream/batch region.
    """
    limits = SystemLimits(**LIMITS)
    env = CloudEnvironment.create(
        seed=seed,
        limits=limits,
        chaos=chaos,
        tenants=TenantRegistry(
            default=TenantConfig("template"), policy=policy
        ),
    )
    namespaces = [f"tenant-{i:03d}" for i in range(n_tenants)]
    if classes is not None:
        class_of = {
            namespace: classes[i % len(classes)][0]
            for i, namespace in enumerate(namespaces)
        }
        task_s_of = {
            namespace: classes[i % len(classes)][1]
            for i, namespace in enumerate(namespaces)
        }
    else:
        class_of = {namespace: "uniform" for namespace in namespaces}
        task_s_of = {namespace: task_s for namespace in namespaces}
    for namespace in namespaces:
        env.platform.create_action(namespace, ACTION, fig3_handler)
    clients: dict[str, CloudFunctionsClient] = {}

    def main():
        for index, namespace in enumerate(namespaces):
            env.kernel.spawn_model(
                _submitter,
                env,
                index,
                namespace,
                tasks_per_tenant,
                task_s_of[namespace],
                clients,
                name=f"client-{namespace}",
            )
        # non-daemon submitters and activations drain before run() returns

    env.run(main)

    records: dict[str, list] = {namespace: [] for namespace in namespaces}
    for record in env.platform.activations():
        records[record.namespace].append(record)
    capacity = limits.cluster_capacity
    total_tasks = n_tenants * tasks_per_tenant
    makespans = []
    for namespace in namespaces:
        recs = records[namespace]
        assert len(recs) == tasks_per_tenant, (
            f"{namespace}: {len(recs)}/{tasks_per_tenant} tasks ran"
        )
        assert all(r.end_time is not None for r in recs)
        makespans.append(
            max(r.end_time for r in recs) - min(r.submit_time for r in recs)
        )
    horizon = env.now()
    # Jain's index over service inside the saturated window: from the
    # first slot recycle after the last arrival until shortly before the
    # backlog drains.  Only tenants still backlogged at the window open
    # are in scope (a tenant fully served during the initial idle-cluster
    # fill was never contended for); a fair dispatcher gives each scoped
    # tenant a near-equal number of dispatches.
    window_start = n_tenants * ARRIVAL_STAGGER_S + max(task_s_of.values())
    # the window closes when the dispatch queue drains: the moment the
    # last `capacity` tasks start, nothing is left to be fair about
    dispatch_times = sorted(
        r.dispatch_time for recs in records.values() for r in recs
    )
    window_end = dispatch_times[max(0, total_tasks - capacity)]
    if window_end <= window_start:  # tiny smoke runs: no saturated window
        window_start, window_end = 0.0, horizon
    scoped = [
        namespace
        for namespace in namespaces
        if any(r.dispatch_time >= window_start for r in records[namespace])
    ]
    def _jain(xs):
        squares = sum(x * x for x in xs)
        return (sum(xs) ** 2) / (len(xs) * squares) if squares else 1.0

    service_of = {
        namespace: sum(
            1
            for r in records[namespace]
            if window_start <= r.dispatch_time < window_end
        )
        for namespace in scoped
    }
    service = list(service_of.values())
    jain = _jain(service)
    jain_by_class = {
        name: round(
            _jain([
                service_of[namespace]
                for namespace in scoped
                if class_of[namespace] == name
            ]),
            4,
        )
        for name, _ in (classes or ())
    }
    ordered = sorted(makespans)

    def pct(p):
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

    rollup = tenant_billing_rollup(env.platform.billing)
    throttle_retries = sum(c.throttle_retries for c in clients.values())
    reasons: dict[str, int] = {}
    for client in clients.values():
        for reason, count in client.throttle_reasons().items():
            reasons[reason] = reasons.get(reason, 0) + count
    report = {
        "policy": policy,
        "chaos": getattr(chaos, "name", "none"),
        "tenants": n_tenants,
        "tasks_per_tenant": tasks_per_tenant,
        "task_s": (
            {name: duration for name, duration in classes}
            if classes is not None
            else task_s
        ),
        "cluster_slots": capacity,
        "jain_fairness_index": round(jain, 4),
        "fairness_window_s": [round(window_start, 1), round(window_end, 1)],
        "window_dispatches": {
            "tenants_in_scope": len(scoped),
            "min": min(service),
            "max": max(service),
            "starved_tenants": sum(1 for x in service if x == 0),
        },
        "makespan_s": {
            "min": round(ordered[0], 1),
            "p50": round(pct(0.50), 1),
            "p95": round(pct(0.95), 1),
            "max": round(ordered[-1], 1),
        },
        "horizon_s": round(horizon, 1),
        "throughput_tasks_per_s": round(total_tasks / horizon, 3),
        "throttle_retries": throttle_retries,
        "throttle_reasons": reasons,
        "billing": {
            "region_gb_seconds": round(
                rollup["__region__"]["gb_seconds"], 1
            ),
            "region_cost": round(rollup["__region__"]["cost"], 6),
            "tenants_billed": len(rollup) - 1,
        },
    }
    if classes is not None:
        report["jain_by_class"] = jain_by_class
    if chaos is not None:
        by_tenant = env.chaos.fault_counts_by_tenant()
        tenant_hits = {t: c for t, c in by_tenant.items() if t}
        report["faults"] = {
            "total": sum(
                n for counts in by_tenant.values() for n in counts.values()
            ),
            "tenants_hit": len(tenant_hits),
        }
    return report


def main() -> int:
    fifo = run_mode("fifo")
    drr = run_mode("drr")
    storm = run_mode("drr", chaos=ChaosProfile("tenant-storm", seed=CHAOS_SEED))
    mixed = run_mode("drr", classes=MIXED_CLASSES)

    report = {
        "seed": SEED,
        "shape": (
            f"{N_TENANTS} tenants x {TASKS_PER_TENANT} tasks of {TASK_S:.0f}s "
            f"into {SystemLimits(**LIMITS).cluster_capacity} slots, "
            f"arrivals staggered {ARRIVAL_STAGGER_S}s"
        ),
        "fifo_baseline": fifo,
        "drr": drr,
        "drr_tenant_storm": storm,
        "drr_mixed_workloads": mixed,
        "criteria": {
            "drr_jain_at_least_0_9": bool(
                drr["jain_fairness_index"] >= 0.9
            ),
            "fifo_clearly_below_drr": bool(
                fifo["jain_fairness_index"]
                <= drr["jain_fairness_index"] - 0.05
            ),
            "work_conserving_throughput": bool(
                abs(
                    fifo["throughput_tasks_per_s"]
                    - drr["throughput_tasks_per_s"]
                )
                <= 0.1 * drr["throughput_tasks_per_s"]
            ),
            "storm_still_fair": bool(
                storm["jain_fairness_index"] >= 0.9
            ),
            "storm_absorbed_throttles": bool(
                storm["throttle_retries"] > 0
            ),
            "mixed_fair_within_every_class": bool(
                all(
                    jain >= 0.9
                    for jain in mixed["jain_by_class"].values()
                )
            ),
        },
    }
    report["criteria_met"] = all(report["criteria"].values())
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
