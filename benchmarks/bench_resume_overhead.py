"""Event-journal overhead and time-to-recover benchmark.

Acceptance criterion for the events plane: with the journal *enabled*
the executor adds <5% wall-clock overhead versus the default (journal
off) on a Fig. 3-shaped map workload — many uniform sleep-bound
functions, submit/execute/collect end to end.  We run a scaled-down
Fig. 3 stage (the real experiment is 500-2000 x 60 s functions; the
shape is what matters for journal pressure, not the absolute size),
best-of-N per mode to suppress host scheduler noise.

We also measure time-to-recover: kill the driver mid-wait with
client-crash chaos, then time a fresh executor's ``reattach`` — journal
replay, COS reconcile, re-armed trigger rules — through to results.

Run via ``make bench-resume``; writes ``BENCH_resume_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time

N_CALLS = 60          # Fig. 3 shape, scaled: uniform sleep-bound maps
TASK_SECONDS = 6.0    # virtual seconds per function (Fig. 3 uses 60)
REPEATS = 5
CRASH_AT_S = 4.0      # mid-wait: after submission is durable
OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_resume_overhead.json"
)


def _task(x):
    import repro

    repro.sleep(TASK_SECONDS)
    return x * x


def _workload(events: bool) -> tuple[float, int]:
    """One full map job; returns (wall seconds, journal records written)."""
    from repro.core.environment import CloudEnvironment

    env = CloudEnvironment.create(events=events)

    def job():
        import repro

        executor = repro.ibm_cf_executor()
        executor.map(_task, list(range(N_CALLS)))
        result = executor.get_result()
        records = len(executor.journal.replay()) if executor.journal else 0
        return result, records

    t0 = time.perf_counter()
    result, records = env.run(job)
    elapsed = time.perf_counter() - t0
    assert result == [x * x for x in range(N_CALLS)]
    return elapsed, records


def _best(events: bool) -> tuple[float, int]:
    best = float("inf")
    records = 0
    for _ in range(REPEATS):
        elapsed, records = _workload(events)
        best = min(best, elapsed)
    return best, records


def _recover() -> tuple[float, float, int]:
    """Crash the driver mid-wait; returns (recover wall s, recover
    virtual s, events replayed) for the adopter's reattach-to-results."""
    import repro
    from repro.chaos import ChaosProfile
    from repro.core.environment import CloudEnvironment

    env = CloudEnvironment.create(
        events=True,
        chaos=ChaosProfile("client-crash", seed=7, client_crash_at_s=CRASH_AT_S),
    )

    def job():
        executor = repro.ibm_cf_executor()
        job_id = executor.executor_id
        try:
            executor.map(_task, list(range(N_CALLS)))
            executor.get_result()
            raise AssertionError("driver survived the crash window")
        except repro.ClientCrashError:
            pass
        adopter = env.executor()
        t0 = time.perf_counter()
        v0 = env.kernel.now()
        job = adopter.reattach(job_id)
        result = job.get_result()
        wall = time.perf_counter() - t0
        virtual = env.kernel.now() - v0
        assert result == [x * x for x in range(N_CALLS)]
        return wall, virtual, job.stats["events_replayed"]

    return env.run(job)


def main() -> int:
    # warm-up: imports, bytecode caches, kernel thread machinery
    _workload(False)

    off_s, _ = _best(False)
    on_s, on_records = _best(True)
    overhead_pct = (on_s - off_s) / off_s * 100.0

    recover_wall_s, recover_virtual_s, replayed = _recover()

    report = {
        "workload": (
            f"map(sleep {TASK_SECONDS}s, range({N_CALLS})) end to end "
            "(Fig. 3 shape, scaled down)"
        ),
        "repeats": REPEATS,
        "journal_off_s": round(off_s, 4),
        "journal_on_s": round(on_s, 4),
        "journal_records_written": on_records,
        "overhead_enabled_pct": round(overhead_pct, 2),
        "crash_at_virtual_s": CRASH_AT_S,
        "recover_wall_s": round(recover_wall_s, 4),
        "recover_virtual_s": round(recover_virtual_s, 4),
        "events_replayed": replayed,
        "criterion": "journal enabled adds <5% executor wall-clock overhead",
        "criterion_met": bool(overhead_pct < 5.0),
    }
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
