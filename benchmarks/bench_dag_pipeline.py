"""DAG pipeline benchmark: barriered executor vs barrier-free DagScheduler.

Two Fig. 4-shaped workloads, each run twice from the same seed with chaos
off:

* **mergesort** — a binary merge tree over 8 uneven-duration sorted
  chunks.  The *barriered* baseline is the classic client-driven flow:
  ``map`` the sorts, ``get_result`` (barrier), download the parts, then
  re-upload and ``map`` each merge level.  The *DAG* flow declares the
  same tree to :class:`~repro.dag.DagScheduler`, which invokes every
  merge the moment its two inputs commit and reads dependency results
  in-cloud (no client download/re-upload per level).
* **shuffle wordcount** — map tasks hash-partition (word, 1) pairs into
  COS buckets; R reducers fetch their bucket from every map.  Barriered:
  the client waits out the map stage, then spawns the reducers itself.
  DAG: ``map_reduce_shuffle`` pre-uploads the reducers at submit time and
  the watcher fires them on the last map-status commit.

Acceptance: the DAG mergesort beats the barriered mergesort on virtual
wall-clock, both flows agree with the sequential answer, and two
same-seed traced DAG runs export byte-identical trace JSONL (after
normalizing the process-global executor id).

Run via ``make bench-dag``; writes ``BENCH_dag_pipeline.json``.
"""

from __future__ import annotations

import json
import os

import repro as pw
from repro.core.environment import CloudEnvironment
from repro.core.shuffle import (
    make_shuffle_map,
    make_shuffle_reduce_fetch,
    merge_shuffle_results,
)
from repro.dag import DagBuilder, DagScheduler

SEED = 123
N_LEAVES = 8
CHUNK = 512
N_DOCS = 12
N_REDUCERS = 4
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_dag_pipeline.json")


# ---------------------------------------------------------------- mergesort
def chunk_sort(spec):
    """Sort one chunk; per-leaf skew models uneven input splits (Fig. 4)."""
    pw.sleep(5 + spec["skew"] * 15)
    return sorted(spec["chunk"])


def merge_pair(parts):
    left, right = parts
    pw.sleep(10)
    merged, i, j = [], 0, 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    return merged + left[i:] + right[j:]


def _array():
    import random

    rng = random.Random(7)
    return [rng.randrange(1_000_000) for _ in range(N_LEAVES * CHUNK)]


def _leaf_specs(array):
    return [
        {"chunk": array[i * CHUNK:(i + 1) * CHUNK], "skew": i % 4}
        for i in range(N_LEAVES)
    ]


def run_barriered_mergesort():
    """Level-synchronous client flow: one map + get_result per level."""
    env = CloudEnvironment.create(seed=SEED)
    array = _array()

    def main():
        executor = pw.ibm_cf_executor()
        parts = executor.get_result(
            executor.map(chunk_sort, _leaf_specs(array))
        )
        while len(parts) > 1:
            pairs = [
                [parts[i], parts[i + 1]] for i in range(0, len(parts), 2)
            ]
            parts = executor.get_result(executor.map(merge_pair, pairs))
        return parts[0], len(env.platform.activations())

    (result, activations) = env.run(main)
    assert result == sorted(array), "barriered mergesort mismatch"
    return {"makespan_s": round(env.now(), 1), "activations": activations}


def build_merge_tree(builder, array):
    """The Fig. 4 shape: uneven sort leaves feeding a binary merge tree.

    Shared with ``bench_dag_swarm.py`` so both benches sweep the exact
    same graph.  Returns the root node.
    """
    level = [
        builder.call(chunk_sort, spec, name=f"sort[{i}]", stage="sort")
        for i, spec in enumerate(_leaf_specs(array))
    ]
    height = 1
    while len(level) > 1:
        level = [
            builder.reduce(
                merge_pair,
                [level[i], level[i + 1]],
                name=f"merge{height}[{i // 2}]",
                stage=f"merge{height}",
            )
            for i in range(0, len(level), 2)
        ]
        height += 1
    return level[0]


# ---------------------------------------------------------- deep/wide shapes
def chain_step(x):
    """One 2 s pipeline stage; deliberately cheap so per-level scheduling
    overhead (client WAN round-trips + poll staleness) dominates."""
    pw.sleep(2)
    return x + 1


def build_chain(builder, depth=100):
    """A ``depth``-level linear chain of *non-fusable* stages.

    ``fusable=False`` models stages pinned to distinct activations
    (different resource needs); with fusion on, the whole chain would
    collapse into one node and there would be nothing to schedule.  This
    is the shape where worker-driven scheduling wins most: the critical
    path crosses ``depth`` scheduling decisions.
    """
    node = builder.call(
        chain_step, 0, name="step[0]", stage="chain", fusable=False
    )
    for index in range(1, depth):
        node = node.then(
            chain_step, name=f"step[{index}]", stage="chain", fusable=False
        )
    return node


def extract_features(spec):
    """Wide phase: skewed per-shard feature extraction."""
    pw.sleep(4 + (spec["shard"] % 3) * 3)
    return spec["shard"] + 1


def aggregate_features(counts):
    pw.sleep(3)
    return sum(counts)


def train_epoch(value):
    pw.sleep(2)
    return value + 1


def build_wide_deep(builder, width=12, depth=12):
    """Wide-then-deep ML-style graph (feature sweep -> iterative train).

    ``width`` parallel feature-extraction shards reduce into one
    aggregate, which feeds a ``depth``-long non-fusable training chain —
    the fan-out exercises counter decrements under contention, the chain
    exercises the per-level handoff latency.
    """
    shards = [
        builder.call(
            extract_features, {"shard": index},
            name=f"extract[{index}]", stage="extract",
        )
        for index in range(width)
    ]
    node = builder.reduce(
        aggregate_features, shards, name="aggregate", stage="aggregate",
        fusable=False,
    )
    for index in range(depth):
        node = node.then(
            train_epoch, name=f"epoch[{index}]", stage="train", fusable=False
        )
    return node


def run_dag_mergesort(trace=False):
    env = CloudEnvironment.create(seed=SEED, trace=trace)
    array = _array()

    def main():
        executor = pw.ibm_cf_executor()
        builder = DagBuilder()
        root = build_merge_tree(builder, array)
        run = DagScheduler(executor).submit(builder.build())
        result = run.expose(root).result()
        jsonl = executor.trace_jsonl() if trace else ""
        return result, len(env.platform.activations()), executor.executor_id, jsonl

    result, activations, executor_id, jsonl = env.run(main)
    assert result == sorted(array), "DAG mergesort mismatch"
    report = {"makespan_s": round(env.now(), 1), "activations": activations}
    return report, jsonl.replace(executor_id, "EXEC")


# ---------------------------------------------------------------- wordcount
def word_pairs(text):
    return [(word, 1) for word in text.split()]


def count_values(key, values):
    del key
    return sum(values)


def _docs():
    words = ["cloud", "serverless", "data", "shuffle", "cos", "pywren"]
    return [
        " ".join(words[(i + j) % len(words)] for j in range(20 + i))
        for i in range(N_DOCS)
    ]


def _expected_counts(docs):
    counts: dict[str, int] = {}
    for doc in docs:
        for word in doc.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def run_barriered_wordcount():
    """Map stage, client barrier, then client-spawned reducers."""
    env = CloudEnvironment.create(seed=SEED)
    docs = _docs()

    def main():
        executor = pw.ibm_cf_executor()
        map_futures = executor.map(
            make_shuffle_map(word_pairs, N_REDUCERS), docs
        )
        executor.get_result(map_futures)  # the barrier under test
        reducers = [
            executor.call_async(
                make_shuffle_reduce_fetch(count_values, index), map_futures
            )
            for index in range(N_REDUCERS)
        ]
        return merge_shuffle_results(executor.get_result(reducers))

    merged = env.run(main)
    assert merged == _expected_counts(docs), "barriered wordcount mismatch"
    return {"makespan_s": round(env.now(), 1)}


def run_dag_wordcount():
    env = CloudEnvironment.create(seed=SEED)
    docs = _docs()

    def main():
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            word_pairs, docs, count_values, n_reducers=N_REDUCERS
        )
        return merge_shuffle_results(executor.get_result(reducers))

    merged = env.run(main)
    assert merged == _expected_counts(docs), "DAG wordcount mismatch"
    return {"makespan_s": round(env.now(), 1)}


def main() -> int:
    barriered_sort = run_barriered_mergesort()
    dag_sort, trace_a = run_dag_mergesort(trace=True)
    _again, trace_b = run_dag_mergesort(trace=True)
    barriered_wc = run_barriered_wordcount()
    dag_wc = run_dag_wordcount()

    report = {
        "seed": SEED,
        "chaos": "none",
        "mergesort": {
            "shape": f"{N_LEAVES} uneven sort leaves -> binary merge tree",
            "barriered": barriered_sort,
            "dag": dag_sort,
            "speedup": round(
                barriered_sort["makespan_s"] / max(dag_sort["makespan_s"], 1e-9),
                2,
            ),
        },
        "shuffle_wordcount": {
            "shape": f"{N_DOCS} docs, {N_REDUCERS} reducers over COS shuffle",
            "barriered": barriered_wc,
            "dag": dag_wc,
            "speedup": round(
                barriered_wc["makespan_s"] / max(dag_wc["makespan_s"], 1e-9), 2
            ),
        },
        "criteria": {
            "dag_beats_barriered_mergesort": bool(
                dag_sort["makespan_s"] < barriered_sort["makespan_s"]
            ),
            "dag_not_slower_on_wordcount": bool(
                dag_wc["makespan_s"] <= barriered_wc["makespan_s"]
            ),
            "same_activation_count_mergesort": bool(
                dag_sort["activations"] == barriered_sort["activations"]
            ),
            "dag_trace_byte_identical": bool(
                trace_a == trace_b and trace_a != ""
            ),
        },
    }
    report["criteria_met"] = all(report["criteria"].values())
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
