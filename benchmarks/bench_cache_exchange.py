"""Cache exchange benchmark: COS-only vs memory-tier cached intermediates.

The two Fig. 4-shaped workloads of ``bench_dag_pipeline`` — the DAG
mergesort and the shuffle wordcount — run twice each from the same seed:

* **cos-only** — the baseline exchange path.  The cache plane is attached
  but neutered (zero byte budget, no peer fetch, no populate-on-miss), so
  every intermediate read goes to COS *through the instrumented path*:
  timings are identical to a cache-less run, and the plane's counters
  measure exactly how much virtual time the workload spends reading
  intermediates from object storage.
* **cached** — the full tier (default 64 MiB/node LRU, peer fetch over
  the consistent-hash directory, populate-on-miss).  Producers write
  through their node's memory cache; consumers resolve local → peer → COS.

The metric under test is **intermediate-read time** (virtual seconds spent
in shuffle-partition and result-blob reads by in-cloud readers), which is
what the cache tier exists to cut; makespans ride along for context.

Acceptance: cached beats cos-only on intermediate-read time for both
workloads, and same-seed runs are reproducible in *both* modes — two
traced cached runs export byte-identical JSONL, and so do two traced
cos-only runs (after normalizing the process-global executor id).

Run via ``make bench-cache``; writes ``BENCH_cache_exchange.json``.
"""

from __future__ import annotations

import json
import os

import repro as pw
from repro.core.environment import CloudEnvironment
from repro.core.shuffle import merge_shuffle_results
from repro.dag import DagBuilder, DagScheduler

SEED = 123
N_LEAVES = 8
CHUNK = 512
N_DOCS = 12
N_REDUCERS = 4
OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_cache_exchange.json"
)


def cache_config(mode: str) -> pw.CacheConfig:
    """The plane configuration for one benchmark mode.

    ``cos-only`` keeps the plane attached but inert: budget 0 means
    nothing is ever resident (every local probe misses for free), peer
    fetch off means no directory round trips, populate off means no
    admissions — the timing is byte-for-byte the COS-only exchange, with
    the read counters running.
    """
    if mode == "cached":
        return pw.CacheConfig(enabled=True)
    return pw.CacheConfig(
        enabled=True,
        node_budget_bytes=0,
        peer_fetch=False,
        populate_on_miss=False,
    )


def _exchange_stats(env: CloudEnvironment) -> dict:
    stats = env.cache.stats()
    return {
        "intermediate_read_s": round(stats["read_seconds_total"], 4),
        "intermediate_reads": stats["intermediate_reads"],
        "local_hits": stats["local_hits"],
        "peer_hits": stats["peer_hits"],
        "cos_misses": stats["cos_misses"],
        "bytes_from_memory": stats["bytes_from_memory"],
        "bytes_from_peers": stats["bytes_from_peers"],
        "bytes_from_cos": stats["bytes_from_cos"],
    }


# ---------------------------------------------------------------- mergesort
def chunk_sort(spec):
    """Sort one chunk; per-leaf skew models uneven input splits (Fig. 4)."""
    pw.sleep(5 + spec["skew"] * 15)
    return sorted(spec["chunk"])


def merge_pair(parts):
    left, right = parts
    pw.sleep(10)
    merged, i, j = [], 0, 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    return merged + left[i:] + right[j:]


def _array():
    import random

    rng = random.Random(7)
    return [rng.randrange(1_000_000) for _ in range(N_LEAVES * CHUNK)]


def _leaf_specs(array):
    return [
        {"chunk": array[i * CHUNK:(i + 1) * CHUNK], "skew": i % 4}
        for i in range(N_LEAVES)
    ]


def _build_merge_tree(builder, array):
    level = [
        builder.call(chunk_sort, spec, name=f"sort[{i}]", stage="sort")
        for i, spec in enumerate(_leaf_specs(array))
    ]
    height = 1
    while len(level) > 1:
        level = [
            builder.reduce(
                merge_pair,
                [level[i], level[i + 1]],
                name=f"merge{height}[{i // 2}]",
                stage=f"merge{height}",
            )
            for i in range(0, len(level), 2)
        ]
        height += 1
    return level[0]


def run_mergesort(mode: str, trace: bool = False):
    env = CloudEnvironment.create(
        seed=SEED, trace=trace, cache=cache_config(mode)
    )
    array = _array()

    def main():
        executor = pw.ibm_cf_executor()
        builder = DagBuilder()
        root = _build_merge_tree(builder, array)
        run = DagScheduler(executor).submit(builder.build())
        result = run.expose(root).result()
        jsonl = executor.trace_jsonl() if trace else ""
        return result, executor.executor_id, jsonl

    result, executor_id, jsonl = env.run(main)
    assert result == sorted(array), f"mergesort ({mode}) mismatch"
    report = {"makespan_s": round(env.now(), 1), **_exchange_stats(env)}
    return report, jsonl.replace(executor_id, "EXEC")


# ---------------------------------------------------------------- wordcount
def word_pairs(text):
    return [(word, 1) for word in text.split()]


def count_values(key, values):
    del key
    return sum(values)


def _docs():
    words = ["cloud", "serverless", "data", "shuffle", "cos", "pywren"]
    return [
        " ".join(words[(i + j) % len(words)] for j in range(20 + i))
        for i in range(N_DOCS)
    ]


def _expected_counts(docs):
    counts: dict[str, int] = {}
    for doc in docs:
        for word in doc.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def run_wordcount(mode: str):
    env = CloudEnvironment.create(seed=SEED, cache=cache_config(mode))
    docs = _docs()

    def main():
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            word_pairs, docs, count_values, n_reducers=N_REDUCERS
        )
        return merge_shuffle_results(executor.get_result(reducers))

    merged = env.run(main)
    assert merged == _expected_counts(docs), f"wordcount ({mode}) mismatch"
    return {"makespan_s": round(env.now(), 1), **_exchange_stats(env)}


def main() -> int:
    sort_cos, sort_cos_trace_a = run_mergesort("cos-only", trace=True)
    _same, sort_cos_trace_b = run_mergesort("cos-only", trace=True)
    sort_cached, sort_cached_trace_a = run_mergesort("cached", trace=True)
    _same, sort_cached_trace_b = run_mergesort("cached", trace=True)
    wc_cos = run_wordcount("cos-only")
    wc_cached = run_wordcount("cached")

    def _speedup(cos, cached):
        return round(
            cos["intermediate_read_s"]
            / max(cached["intermediate_read_s"], 1e-9),
            2,
        )

    report = {
        "seed": SEED,
        "chaos": "none",
        "mergesort": {
            "shape": f"{N_LEAVES} uneven sort leaves -> binary merge tree (DAG)",
            "cos_only": sort_cos,
            "cached": sort_cached,
            "intermediate_read_speedup": _speedup(sort_cos, sort_cached),
        },
        "shuffle_wordcount": {
            "shape": f"{N_DOCS} docs, {N_REDUCERS} reducers over shuffle",
            "cos_only": wc_cos,
            "cached": wc_cached,
            "intermediate_read_speedup": _speedup(wc_cos, wc_cached),
        },
        "criteria": {
            "cached_beats_cos_mergesort_reads": bool(
                sort_cached["intermediate_read_s"]
                < sort_cos["intermediate_read_s"]
            ),
            "cached_beats_cos_wordcount_reads": bool(
                wc_cached["intermediate_read_s"]
                < wc_cos["intermediate_read_s"]
            ),
            "cached_run_has_memory_hits": bool(
                sort_cached["local_hits"] + sort_cached["peer_hits"] > 0
                and wc_cached["local_hits"] + wc_cached["peer_hits"] > 0
            ),
            "cos_only_trace_byte_identical": bool(
                sort_cos_trace_a == sort_cos_trace_b and sort_cos_trace_a != ""
            ),
            "cached_trace_byte_identical": bool(
                sort_cached_trace_a == sort_cached_trace_b
                and sort_cached_trace_a != ""
            ),
        },
    }
    report["criteria_met"] = all(report["criteria"].values())
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
