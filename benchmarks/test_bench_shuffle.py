"""Bench: COS shuffle — reducer-count sweep for keyed MapReduce.

Extension bench (the paper's §2 names shuffling as serverless MapReduce's
open challenge): a keyed aggregation whose reduce work parallelizes across
R reducers through per-reducer COS buckets.  More reducers shorten the
reduce phase until per-reducer overheads dominate.
"""

from __future__ import annotations

import repro
from repro.bench.reporting import Table
from repro.core.environment import CloudEnvironment
from repro.core.shuffle import merge_shuffle_results
from repro.net.latency import LatencyModel

N_KEYS = 64
N_MAPS = 40
#: modelled per-key reduce compute (seconds)
REDUCE_SECONDS_PER_KEY = 1.0


def _emit(seed):
    """Map task: one (key, value) pair per key — even key distribution."""
    return [(f"key-{k:03d}", seed * k) for k in range(N_KEYS)]


def _reduce(key, values):
    import repro as _repro

    _repro.sleep(REDUCE_SECONDS_PER_KEY)
    return sum(values)


def _run(n_reducers: int, seed: int = 23) -> tuple[float, dict]:
    env = CloudEnvironment.create(client_latency=LatencyModel.wan(), seed=seed)

    def main():
        executor = repro.ibm_cf_executor(invoker_mode="massive")
        t0 = env.now()
        reducers = executor.map_reduce_shuffle(
            _emit, list(range(1, N_MAPS + 1)), _reduce, n_reducers=n_reducers
        )
        merged = merge_shuffle_results(executor.get_result(reducers))
        return env.now() - t0, merged

    return env.run(main)


def test_shuffle_reducer_sweep(benchmark, emit):
    reducer_counts = [1, 2, 4, 8, 16]

    def run_all():
        return {r: _run(r) for r in reducer_counts}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        f"Shuffle ablation — {N_MAPS} maps x {N_KEYS} keys, "
        f"{REDUCE_SECONDS_PER_KEY:.0f} s reduce/key",
        ["reducers", "exec time (s)", "speedup vs 1 reducer"],
    )
    base_time = results[1][0]
    for r in reducer_counts:
        elapsed, _merged = results[r]
        table.add_row(r, round(elapsed, 1), f"{base_time / elapsed:.2f}x")
    emit(table)

    # correctness is identical at every reducer count
    expected = {
        f"key-{k:03d}": sum(seed * k for seed in range(1, N_MAPS + 1))
        for k in range(N_KEYS)
    }
    for r in reducer_counts:
        assert results[r][1] == expected

    # the reduce phase parallelizes: 16 reducers beat 1 by a wide margin
    times = {r: results[r][0] for r in reducer_counts}
    assert times[16] < times[4] < times[1]
    assert times[1] / times[16] > 3.0
    # ... but gains flatten: hash partitioning of 64 keys over 16 reducers
    # leaves the straggler reducer with several keys (key skew)
    gain_4_to_8 = times[4] - times[8]
    gain_8_to_16 = times[8] - times[16]
    assert gain_8_to_16 < gain_4_to_8
