"""Bench: Fig. 5 — the New York tone map artifact."""

from __future__ import annotations

import pathlib

from repro.analytics.geoplot import TONE_COLORS
from repro.analytics.tone import NEGATIVE, NEUTRAL, POSITIVE
from repro.bench import fig5_tone_map as fig5


def test_fig5_new_york_tone_map(benchmark, emit, tmp_path):
    result = benchmark.pedantic(fig5.run_fig5, rounds=1, iterations=1)
    emit(fig5.describe(result))

    artifact = tmp_path / "fig5_new_york.svg"
    artifact.write_text(result.svg)
    emit(f"(SVG artifact written to {artifact})")

    # the figure is a real SVG scatter map of NYC reviews
    assert result.svg.startswith("<svg")
    assert result.city in result.svg
    assert result.points > 100
    # all three tone colors appear (green/blue/red points, like Fig. 5)
    for tone in (POSITIVE, NEUTRAL, NEGATIVE):
        assert TONE_COLORS[tone] in result.svg

    # New York is the largest city object: ~10 chunks at 16 MB
    assert 8 <= result.map_executors <= 14
    # extrapolated comment volume matches the city's ~9% share of 3.7 M
    assert 250_000 <= result.comments_estimated <= 600_000
    # every comment classified into exactly the three tones
    assert set(result.tone_counts) == {POSITIVE, NEUTRAL, NEGATIVE}
