"""Bench: serverless vs provisioned cluster for bursty parallel jobs.

Quantifies the paper's motivation (§1/§5): "it is now easy to handle bursty
workloads that require thousands of concurrent function executors without
waiting for machines to spin up."  For a one-off (cold) job, the cluster
pays ~2 minutes of provisioning before computing; IBM-PyWren with massive
spawning starts a thousand functions in seconds.
"""

from __future__ import annotations

from repro.baselines import VMCluster
from repro.bench.fig2_spawning import run_spawning
from repro.bench.reporting import Table
from repro.config import InvokerMode
from repro.vtime import Kernel


def _cluster_time(n_tasks: int, task_seconds: float, n_vms: int) -> float:
    kernel = Kernel()

    def main() -> float:
        cluster = VMCluster(kernel, n_vms=n_vms, slots_per_vm=4, seed=9)
        return cluster.run_map_job(n_tasks, task_seconds).total_s

    return kernel.run(main)


def test_serverless_vs_cluster_cold_job(benchmark, emit):
    """1,000 x 50 s tasks, cold start: functions vs a fresh 64-VM cluster."""

    def run_all():
        serverless = run_spawning(
            InvokerMode.MASSIVE, n_functions=1000, task_seconds=50.0, seed=17
        )
        # a 64-VM x 4-slot cluster: 256 slots for 1,000 tasks
        cluster_total = _cluster_time(1000, 50.0, n_vms=64)
        # a cluster sized for full concurrency (250 VMs), still cold
        big_cluster_total = _cluster_time(1000, 50.0, n_vms=250)
        return serverless.total_s, cluster_total, big_cluster_total

    serverless, cluster, big_cluster = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    table = Table(
        "Serverless vs provisioned cluster — 1,000 x 50 s tasks (cold)",
        ["platform", "total time (s)"],
    )
    table.add_row("IBM-PyWren (massive spawning)", round(serverless, 1))
    table.add_row("64-VM cluster (256 slots)", round(cluster, 1))
    table.add_row("250-VM cluster (1,000 slots)", round(big_cluster, 1))
    emit(table)

    # serverless wins the cold bursty job even against a right-sized cluster
    assert serverless < big_cluster
    assert serverless < cluster
    # the right-sized cluster's deficit is almost entirely provisioning
    assert big_cluster - serverless > 30.0


def test_cluster_amortizes_for_long_jobs(benchmark, emit):
    """The flip side: once booted, a warm cluster matches function compute —
    the trade is elasticity + zero management, not raw steady-state speed."""

    def run_all():
        kernel = Kernel()

        def main():
            cluster = VMCluster(kernel, n_vms=250, slots_per_vm=4, seed=11)
            cold = cluster.run_map_job(1000, 50.0)
            warm = cluster.run_map_job(1000, 50.0)
            return cold.total_s, warm.total_s

        return kernel.run(main)

    cold, warm = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Warm-cluster amortization — repeat job on the same cluster",
        ["job", "total time (s)"],
    )
    table.add_row("first (cold cluster)", round(cold, 1))
    table.add_row("second (warm cluster)", round(warm, 1))
    emit(table)

    assert warm < cold
    assert warm == 50.0  # pure compute once provisioned
