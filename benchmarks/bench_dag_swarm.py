"""Swarm vs centralized DAG scheduling benchmark.

Three graph shapes, each run under both schedulers from the same seed
with chaos off (shape builders shared with ``bench_dag_pipeline.py``):

* **merge tree** — the Fig. 4 mergesort: 8 uneven sort leaves feeding a
  binary merge tree.  Exercises the fan-in path (done-marker decrements
  racing on each merge node's fire token).
* **100-level chain** — the adversarial shape for a centralized
  scheduler: every level costs the client a poll round plus two WAN
  round-trips, so scheduling overhead compounds 100 times along the
  critical path.  Swarm turns each hop into one in-cloud conditional
  PUT plus a ~4 ms trusted-gateway invoke.
* **wide-then-deep** — an ML-style graph: 12 skewed feature-extraction
  shards reduce into one aggregate, then a 12-epoch training chain.

For every shape the client-side gateway's invocation counter is
recorded separately from total activations: under swarm the difference
is the number of activations launched *by workers*.  A depth sweep over
the chain (10/25/50/100) feeds the PERFORMANCE.md table.

Acceptance: swarm beats centralized on the 100-chain virtual wall
clock, the swarm chain needs exactly one client invocation (the root —
per-level client round-trips drop to zero), neither tree shape gets
slower, and two same-seed traced swarm runs export byte-identical
JSONL.  Run via ``make bench-dag-swarm``; writes
``BENCH_dag_swarm.json``.
"""

from __future__ import annotations

import json
import os
import sys

import repro as pw
from repro.core.environment import CloudEnvironment
from repro.dag import DagBuilder

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_dag_pipeline as shapes  # noqa: E402  (sibling bench module)

SEED = 123
CHAIN_DEPTHS = (10, 25, 50, 100)
WIDE, DEEP = 12, 12
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_dag_swarm.json")


def run_shape(build, check, scheduler, trace=False):
    """One seeded run of ``build``'s graph under ``scheduler``.

    Returns (report, normalized trace JSONL).  ``client_invocations``
    counts invocations issued through the executor's WAN gateway; worker
    handoffs go through the in-cloud trusted gateway and show up only in
    the activation total.
    """
    env = CloudEnvironment.create(seed=SEED, trace=trace)

    def main():
        executor = pw.ibm_cf_executor()
        builder = DagBuilder()
        root = build(builder)
        run = builder.submit(executor, scheduler=scheduler)
        value = run.expose(root).result()
        jsonl = executor.trace_jsonl() if trace else ""
        return (
            value,
            len(env.platform.activations()),
            executor._functions.invocations,
            executor.executor_id,
            jsonl,
        )

    value, activations, client_invocations, executor_id, jsonl = env.run(main)
    check(value)
    report = {
        "makespan_s": round(env.now(), 1),
        "activations": activations,
        "client_invocations": client_invocations,
        "worker_invocations": activations - client_invocations,
    }
    return report, jsonl.replace(executor_id, "EXEC")


def run_merge_tree(scheduler, trace=False):
    array = shapes._array()

    def check(value):
        assert value == sorted(array), f"{scheduler} mergesort mismatch"

    return run_shape(
        lambda b: shapes.build_merge_tree(b, array), check, scheduler, trace
    )


def run_chain(scheduler, depth):
    def check(value):
        assert value == depth, f"{scheduler} chain[{depth}] mismatch"

    report, _ = run_shape(
        lambda b: shapes.build_chain(b, depth=depth), check, scheduler
    )
    return report


def run_wide_deep(scheduler):
    expected = sum(range(1, WIDE + 1)) + DEEP

    def check(value):
        assert value == expected, f"{scheduler} wide-deep mismatch"

    report, _ = run_shape(
        lambda b: shapes.build_wide_deep(b, width=WIDE, depth=DEEP),
        check,
        scheduler,
    )
    return report


def main() -> int:
    tree_central, _ = run_merge_tree("centralized")
    tree_swarm, trace_a = run_merge_tree("swarm", trace=True)
    _again, trace_b = run_merge_tree("swarm", trace=True)

    sweep = []
    for depth in CHAIN_DEPTHS:
        central = run_chain("centralized", depth)
        swarm = run_chain("swarm", depth)
        sweep.append(
            {
                "depth": depth,
                "centralized_s": central["makespan_s"],
                "swarm_s": swarm["makespan_s"],
                "speedup": round(
                    central["makespan_s"] / max(swarm["makespan_s"], 1e-9), 2
                ),
                "centralized_client_invocations": central["client_invocations"],
                "swarm_client_invocations": swarm["client_invocations"],
            }
        )
    chain_central = next(s for s in sweep if s["depth"] == 100)

    wd_central = run_wide_deep("centralized")
    wd_swarm = run_wide_deep("swarm")

    report = {
        "seed": SEED,
        "chaos": "none",
        "merge_tree": {
            "shape": "8 uneven sort leaves -> binary merge tree (Fig. 4)",
            "centralized": tree_central,
            "swarm": tree_swarm,
            "speedup": round(
                tree_central["makespan_s"] / max(tree_swarm["makespan_s"], 1e-9),
                2,
            ),
        },
        "chain": {
            "shape": "linear chain of non-fusable 2 s stages",
            "sweep": sweep,
        },
        "wide_deep": {
            "shape": f"{WIDE} extract shards -> aggregate -> {DEEP} epochs",
            "centralized": wd_central,
            "swarm": wd_swarm,
            "speedup": round(
                wd_central["makespan_s"] / max(wd_swarm["makespan_s"], 1e-9), 2
            ),
        },
        "criteria": {
            "swarm_beats_centralized_chain_100": bool(
                chain_central["swarm_s"] < chain_central["centralized_s"]
            ),
            "chain_client_invocations_roots_only": bool(
                chain_central["swarm_client_invocations"] == 1
            ),
            "merge_tree_swarm_not_slower": bool(
                tree_swarm["makespan_s"] <= tree_central["makespan_s"]
            ),
            "merge_tree_no_duplicate_activations": bool(
                tree_swarm["activations"] == tree_central["activations"]
            ),
            "wide_deep_swarm_not_slower": bool(
                wd_swarm["makespan_s"] <= wd_central["makespan_s"]
            ),
            "swarm_trace_byte_identical": bool(
                trace_a == trace_b and trace_a != ""
            ),
        },
    }
    report["criteria_met"] = all(report["criteria"].values())
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
