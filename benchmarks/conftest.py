"""Shared helpers for the benchmark suite.

Benchmarks simulate the paper's experiments in virtual time, so the
pytest-benchmark wall-clock numbers measure *simulator* cost; the numbers
that reproduce the paper (virtual seconds, speedups, concurrency) are
printed as tables/figures straight to the terminal, bypassing capture.
"""

from __future__ import annotations

import sys

import pytest


@pytest.fixture()
def emit(capfd):
    """Print a Table/Figure (or text) to the real terminal despite capture.

    pytest's default fd-level capture would swallow the reproduced tables
    on passing tests; ``capfd.disabled()`` restores the real stdout for the
    write, so ``pytest benchmarks/ --benchmark-only`` always shows them.
    """

    def _emit(renderable) -> None:
        text = renderable.render() if hasattr(renderable, "render") else str(renderable)
        with capfd.disabled():
            sys.stdout.write("\n" + text + "\n")
            sys.stdout.flush()

    return _emit
