"""Bench: Fig. 2 + §6.1 — massive function spawning vs local invocation."""

from __future__ import annotations

from repro.bench import fig2_spawning as fig2
from repro.config import InvokerMode


def test_fig2_local_vs_massive(benchmark, emit):
    """1,000 x 50 s functions: local WAN client vs massive spawning."""
    results = benchmark.pedantic(fig2.run_fig2, rounds=1, iterations=1)
    emit(fig2.report(results))
    emit(fig2.concurrency_figure(results))

    local, massive = results
    assert local.mode == InvokerMode.LOCAL
    assert massive.mode == InvokerMode.MASSIVE

    # Paper: 38 s vs 8 s invocation phase (~5x); 88 s vs 58 s total.
    assert 25.0 <= local.invocation_phase_s <= 55.0
    assert 5.0 <= massive.invocation_phase_s <= 14.0
    assert local.invocation_phase_s / massive.invocation_phase_s >= 3.0
    assert local.total_s >= local.invocation_phase_s + 49.0
    assert massive.total_s <= 70.0
    # full concurrency was reached in both configurations
    assert max(level for _t, level in massive.concurrency) == 1000


def test_invoker_mode_sweep(benchmark, emit):
    """§5.1's narrative: lan ~8 s, wan ~40 s, remote ~20 s, massive ~8 s."""
    results = benchmark.pedantic(
        fig2.run_invoker_sweep, kwargs={"n_functions": 1000}, rounds=1, iterations=1
    )
    emit(fig2.report(results))
    by_label = {r.label: r for r in results}

    lan = by_label["local (lan client)"]
    wan = by_label["local (wan client)"]
    remote = by_label["remote (wan client)"]
    massive = by_label["massive (wan client)"]

    assert 5.0 <= lan.invocation_phase_s <= 12.0
    assert 25.0 <= wan.invocation_phase_s <= 55.0
    # the single remote invoker lands between local-WAN and massive
    assert massive.invocation_phase_s < remote.invocation_phase_s < wan.invocation_phase_s
    assert 14.0 <= remote.invocation_phase_s <= 28.0
    # massive spawning restores low-latency-client performance (§5.1)
    assert abs(massive.invocation_phase_s - lan.invocation_phase_s) <= 4.0
