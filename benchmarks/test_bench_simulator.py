"""Meta-bench: wall-clock cost of the simulator itself.

Unlike the experiment benches (whose interesting numbers are virtual-time
seconds), these measure *real* time with pytest-benchmark's statistics:
how fast the substrate executes activations and advances virtual time.
Useful for catching performance regressions in the kernel or platform.
"""

from __future__ import annotations

import repro
from repro.core.environment import CloudEnvironment
from repro.net.latency import LatencyModel
from repro.vtime import Kernel, gather, sleep


def test_kernel_task_throughput(benchmark):
    """500 tasks x 3 sleeps each, pure kernel."""

    def run():
        kernel = Kernel()

        def worker(i):
            sleep(i % 7)
            sleep(1)
            sleep(0.5)

        def main():
            gather([kernel.spawn(worker, i) for i in range(500)])
            return kernel.now()

        return kernel.run(main)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0


def test_platform_activation_throughput(benchmark):
    """200 end-to-end PyWren calls (serialize, COS, invoke, execute, poll)."""

    def run():
        env = CloudEnvironment.create(
            client_latency=LatencyModel.lan(), seed=3
        )

        def main():
            executor = repro.ibm_cf_executor(invoker_mode="massive")
            return executor.get_result(
                executor.map(lambda x: x + 1, list(range(200)))
            )

        return env.run(main)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results == [x + 1 for x in range(200)]
