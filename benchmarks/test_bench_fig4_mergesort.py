"""Bench: Fig. 4 — dynamic composition (serverless mergesort, §6.3)."""

from __future__ import annotations

from repro.bench import fig4_mergesort as fig4


def test_fig4_mergesort(benchmark, emit):
    """Execution time vs N for function-tree depths d=0..4."""
    points = benchmark.pedantic(fig4.run_fig4, rounds=1, iterations=1)
    emit(fig4.report(points))
    emit(fig4.figure(points))

    by = {(p.n, p.depth): p.seconds for p in points}
    ns = sorted({p.n for p in points})
    depths = sorted({p.depth for p in points})

    # sort time increases (essentially linearly) with N for every depth
    for d in depths:
        times = [by[(n, d)] for n in ns]
        assert times == sorted(times)
        # linear-ish: 25M (50x the elements of 500K) costs < 80x the time
        assert times[-1] / times[0] < 80.0

    # greater depth wins at the largest workload ...
    assert by[(25_000_000, 3)] < by[(25_000_000, 1)] < by[(25_000_000, 0)]
    # ... by a large factor (parallelism is real)
    assert by[(25_000_000, 0)] / by[(25_000_000, 3)] >= 4.0
    # "the major improvements came from depths up to d=3. Beyond that,
    # the degree of improvement was lower"
    gain_2_to_3 = by[(25_000_000, 2)] - by[(25_000_000, 3)]
    gain_3_to_4 = by[(25_000_000, 3)] - by[(25_000_000, 4)]
    assert gain_3_to_4 < gain_2_to_3
    # at the smallest workload, deep trees are not worth it: d=4 gains
    # little (or loses) versus d=3
    assert by[(500_000, 4)] >= by[(500_000, 3)] - 2.0
