"""BI/analytics workload benchmark: pushdown scans + windowed streaming.

Two sweeps from the same seed:

* **scan** — the predicate-pushdown scan operator against the "full scan
  + client filter" baseline, across *selectivity* (a date predicate
  keeping ~1% / ~10% / ~50% of rows) x *partition count* (groups per
  partition) x *exchange backend* (``cos`` / ``cached-cos`` / ``vm``).
  Pushdown prunes row groups with zone maps, evaluates
  selection/projection in the worker and pre-aggregates per partition;
  the baseline ships every projected row back to the client and filters
  there.  Metrics per cell: virtual wall, bytes read from COS by the
  workers, rows scanned, groups pruned.
* **streaming** — ``windowed_map_reduce`` over a synthetic source:
  tumbling windows vs overlapping windows with partial reuse on and off,
  on the ``cached-cos`` exchange.  Overlapping windows adopt previously
  computed map partials as external DAG nodes; the memory tier serves the
  repeated small reads.  Metrics: makespan, map activations, reused
  partials, cache hits, late refires.

Acceptance (the ISSUE's bar): pushdown beats the baseline on **both**
wall time and bytes moved at <= 10% selectivity in every partition
configuration; overlapping windows reuse cached partials (reuse cuts map
activations, memory tier takes hits); and same-seed traced runs of one
scan and one streaming workload are byte-identical.

Run via ``make bench-workloads``; writes ``BENCH_workloads.json``.
``--smoke`` runs a reduced matrix (one selectivity, one backend) for CI.
"""

from __future__ import annotations

import json
import os
import sys

import repro as pw

SEED = 77

#: scan sweep shape — big enough that the baseline's full-table reads and
#: activation fan-out dominate, which is where pushdown earns its keep
TABLE_ROWS = 160_000
TABLE_CITIES = 4
ROWS_PER_GROUP = 64
#: date predicates: ``day`` is uniform over 0..364 within every object
SELECTIVITY_PREDICATES = {
    "1pct": ("day < 4", lambda: pw.Col("day") < 4),
    "10pct": ("day < 37", lambda: pw.Col("day") < 37),
    "50pct": ("day < 183", lambda: pw.Col("day") < 183),
}
GROUPS_PER_PARTITION = (8, 16)
BACKENDS = ("cos", "cached-cos", "vm")

#: streaming sweep shape
STREAM_OBJECTS = 18
STREAM_PERIOD_S = 10.0
STREAM_CONFIGS = {
    "tumbling": dict(window_s=30.0, slide_s=30.0, reuse=True),
    "overlap_reuse": dict(window_s=60.0, slide_s=20.0, reuse=True),
    "overlap_noreuse": dict(window_s=60.0, slide_s=20.0, reuse=False),
}

OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_workloads.json")


# ------------------------------------------------------------------- scan
def _scan_spec(selectivity: str) -> pw.ScanSpec:
    return pw.ScanSpec(
        columns=("city",),
        predicate=SELECTIVITY_PREDICATES[selectivity][1](),
        aggregate="count",
    )


def run_scan_cell(
    selectivity: str,
    groups_per_partition: int,
    backend: str,
    pushdown: bool,
    table_rows: int = TABLE_ROWS,
) -> dict:
    """One scan in a fresh environment; wall time is ``env.now()``."""
    env = pw.CloudEnvironment.create(seed=SEED, exchange=backend)
    info = pw.load_table(
        env.storage,
        total_rows=table_rows,
        n_cities=TABLE_CITIES,
        rows_per_group=ROWS_PER_GROUP,
    )

    def main():
        executor = pw.ibm_cf_executor()
        return pw.scan(
            executor,
            info,
            _scan_spec(selectivity),
            pushdown=pushdown,
            groups_per_partition=groups_per_partition,
        )

    result = env.run(main)
    return {
        "value": result.value,
        "wall_s": round(env.now(), 2),
        "bytes_read": result.bytes_read,
        "rows_scanned": result.rows_scanned,
        "rows_matched": result.rows_matched,
        "selectivity": round(result.selectivity, 4),
        "partitions": result.partitions,
        "groups_pruned": result.groups_pruned,
        "groups_total": result.groups_total,
    }


def scan_sweep(backends, selectivities) -> dict:
    """Pushdown across the full matrix; the client-filter baseline on the
    direct-COS backend per (selectivity, partitioning) cell."""
    cells = {}
    for selectivity in selectivities:
        for gpp in GROUPS_PER_PARTITION:
            baseline = run_scan_cell(selectivity, gpp, "cos", pushdown=False)
            for backend in backends:
                push = run_scan_cell(selectivity, gpp, backend, pushdown=True)
                assert push["value"] == baseline["value"], (
                    f"pushdown diverged from baseline at "
                    f"{selectivity}/gpp{gpp}/{backend}"
                )
                cells[f"{selectivity}/gpp{gpp}/{backend}"] = {
                    "predicate": SELECTIVITY_PREDICATES[selectivity][0],
                    "pushdown": push,
                    "full_scan_client_filter": baseline,
                    "wall_speedup": round(
                        baseline["wall_s"] / max(push["wall_s"], 1e-9), 2
                    ),
                    "bytes_saved_x": round(
                        baseline["bytes_read"] / max(push["bytes_read"], 1), 1
                    ),
                }
    return cells


# -------------------------------------------------------------- streaming
def window_sum(payload):
    return sum(payload)


def sum_partials(parts):
    return sum(parts)


def run_stream_config(name: str, config: dict) -> dict:
    env = pw.CloudEnvironment.create(seed=SEED, exchange="cached-cos")
    source = pw.StreamSource.synthetic(
        STREAM_OBJECTS,
        STREAM_PERIOD_S,
        seed=SEED,
        jitter_s=2.0,
        late_every=7,
        late_by_s=35.0,
    )

    def main():
        executor = pw.ibm_cf_executor()
        windows = pw.windowed_map_reduce(
            executor,
            source,
            window_sum,
            sum_partials,
            window_s=config["window_s"],
            slide_s=config["slide_s"],
            late_policy="refire",
            reuse_partials=config["reuse"],
        )
        return windows

    windows = env.run(main)
    stats = env.cache.stats()
    return {
        "window_s": config["window_s"],
        "slide_s": config["slide_s"],
        "reuse_partials": config["reuse"],
        "windows_fired": len(windows),
        "makespan_s": round(env.now(), 1),
        "map_activations": sum(len(w.keys) - w.reused_partials for w in windows),
        "reused_partials": sum(w.reused_partials for w in windows),
        "late_refires": sum(1 for w in windows if w.revision > 0),
        "cache_local_hits": stats["local_hits"],
        "cache_peer_hits": stats["peer_hits"],
        "cos_misses": stats["cos_misses"],
        "window_values": [w.value for w in windows],
    }


# ---------------------------------------------------------- trace identity
def traced_scan_jsonl() -> str:
    env = pw.CloudEnvironment.create(seed=SEED, trace=True)
    info = pw.load_table(
        env.storage, total_rows=3_200, n_cities=2,
        rows_per_group=ROWS_PER_GROUP,
    )

    def main():
        executor = pw.ibm_cf_executor()
        pw.scan(executor, info, _scan_spec("10pct"))
        return executor.executor_id, executor.trace_jsonl()

    executor_id, jsonl = env.run(main)
    return jsonl.replace(executor_id, "EXEC")


def traced_stream_jsonl() -> str:
    env = pw.CloudEnvironment.create(seed=SEED, trace=True)
    source = pw.StreamSource.synthetic(6, STREAM_PERIOD_S, seed=SEED)

    def main():
        executor = pw.ibm_cf_executor()
        pw.windowed_map_reduce(
            executor, source, window_sum, sum_partials,
            window_s=40.0, slide_s=20.0,
        )
        return executor.executor_id, executor.trace_jsonl()

    executor_id, jsonl = env.run(main)
    return jsonl.replace(executor_id, "EXEC")


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    backends = ("cos",) if smoke else BACKENDS
    selectivities = ("10pct",) if smoke else tuple(SELECTIVITY_PREDICATES)

    scan_cells = scan_sweep(backends, selectivities)
    streaming = {
        name: run_stream_config(name, config)
        for name, config in STREAM_CONFIGS.items()
    }
    scan_trace_identical = traced_scan_jsonl() == traced_scan_jsonl()
    stream_trace_identical = traced_stream_jsonl() == traced_stream_jsonl()

    low_selectivity_cells = {
        key: cell for key, cell in scan_cells.items()
        if not key.startswith("50pct/")
    }
    # the wall criterion is scoped to the COS-shaped exchange paths: the
    # vm plane pays a per-intermediate round trip that swamps pushdown's
    # tiny merge partials — the small-volume side of the cost crossover
    # bench_exchange_matrix documents — and is flagged separately below
    wall_cells = [
        cell for key, cell in low_selectivity_cells.items()
        if not key.endswith("/vm")
    ]
    vm_cos_pairs = [
        (cell, scan_cells[key.rsplit("/", 1)[0] + "/cos"])
        for key, cell in low_selectivity_cells.items()
        if key.endswith("/vm")
    ]
    reuse = streaming["overlap_reuse"]
    noreuse = streaming["overlap_noreuse"]
    criteria = {
        "pushdown_beats_full_scan_wall_at_low_selectivity": bool(
            wall_cells
            and all(
                c["pushdown"]["wall_s"] < c["full_scan_client_filter"]["wall_s"]
                for c in wall_cells
            )
        ),
        "pushdown_beats_full_scan_bytes_at_low_selectivity": bool(
            low_selectivity_cells
            and all(
                c["pushdown"]["bytes_read"]
                < c["full_scan_client_filter"]["bytes_read"]
                for c in low_selectivity_cells.values()
            )
        ),
        "vm_small_intermediate_overhead_visible": bool(
            all(
                vm["pushdown"]["wall_s"] >= cos["pushdown"]["wall_s"]
                for vm, cos in vm_cos_pairs
            )
        ),
        "overlapping_windows_reuse_cached_partials": bool(
            reuse["reused_partials"] > 0
            and reuse["cache_local_hits"] + reuse["cache_peer_hits"] > 0
        ),
        "reuse_cuts_map_activations": bool(
            reuse["map_activations"] < noreuse["map_activations"]
        ),
        "reuse_preserves_window_values": bool(
            reuse["window_values"] == noreuse["window_values"]
        ),
        "scan_trace_byte_identical": scan_trace_identical,
        "stream_trace_byte_identical": stream_trace_identical,
    }

    report = {
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "scan": {
            "shape": (
                f"{TABLE_ROWS} rows x {TABLE_CITIES} cities, "
                f"{ROWS_PER_GROUP} rows/group, count aggregate; "
                f"baseline ships projected rows to the client"
            ),
            "cells": scan_cells,
        },
        "streaming": {
            "shape": (
                f"{STREAM_OBJECTS} objects every {STREAM_PERIOD_S:.0f}s, "
                f"jittered arrivals, refire on late; cached-cos exchange"
            ),
            "configs": streaming,
        },
        "criteria": criteria,
        "criteria_met": all(criteria.values()),
    }
    path = os.path.abspath(OUTPUT)
    if not smoke:  # the smoke matrix must not clobber the committed report
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    print(json.dumps(report, indent=2))
    if not smoke:
        print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
