"""Bench: Fig. 3 — elasticity and concurrency (§6.2)."""

from __future__ import annotations

from repro.bench import fig3_elasticity as fig3
from repro.core import cost


def test_fig3_elasticity(benchmark, emit):
    """500/1000/1500/2000 x 60 s functions reach full concurrency."""
    results = benchmark.pedantic(fig3.run_fig3, rounds=1, iterations=1)
    emit(fig3.report(results))
    emit(fig3.concurrency_figure(results))

    assert [r.n_functions for r in results] == list(fig3.WORKLOADS)
    for result in results:
        # the paper's headline: "the black line met the target workload
        # size in all the experiments"
        assert result.reached_full_concurrency, (
            f"workload {result.n_functions}: peak {result.peak_concurrency}"
        )
        # every function really computed for ~60 s
        assert result.mean_duration_s >= cost.FIG3_TASK_SECONDS
        assert result.mean_duration_s <= cost.FIG3_TASK_SECONDS + 5.0
        # spawning stayed in the massive-spawning regime, not minutes
        assert result.total_s <= cost.FIG3_TASK_SECONDS + 40.0

    # elasticity: each +500 step did not blow up the total time
    totals = [r.total_s for r in results]
    assert max(totals) - min(totals) <= 30.0
