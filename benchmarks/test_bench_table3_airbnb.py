"""Bench: Table 3 — the real MapReduce job (Airbnb tone analysis, §6.4)."""

from __future__ import annotations

from repro.bench import table3_airbnb as t3
from repro.datasets import airbnb


def test_table3_airbnb(benchmark, emit):
    """Chunk-size sweep 64 MB -> 2 MB over the 1.9 GB 33-city dataset."""
    rows = benchmark.pedantic(t3.run_table3, rounds=1, iterations=1)
    emit(t3.report(rows))

    sequential, *parallel = rows
    assert sequential.chunk_size is None
    # paper: 5,160 s sequential baseline
    assert abs(sequential.exec_time_s - t3.PAPER_SEQUENTIAL_S) / t3.PAPER_SEQUENTIAL_S < 0.05

    # concurrency column: within a few executors of the paper's counts
    # (it is a pure function of the city-size distribution)
    for row in parallel:
        chunk_mb = row.chunk_size // (1024 * 1024)
        paper_conc, paper_time, paper_speedup = t3.PAPER_ROWS[chunk_mb]
        assert abs(row.concurrency - paper_conc) / paper_conc < 0.06, chunk_mb
        # time/speedup shape: within ~1.5x of the paper's measurements
        assert paper_time / 1.6 <= row.exec_time_s <= paper_time * 1.6, chunk_mb
        assert paper_speedup / 1.6 <= row.speedup <= paper_speedup * 1.6, chunk_mb

    # smaller chunks -> more executors -> faster (monotone columns)
    concurrencies = [row.concurrency for row in parallel]
    times = [row.exec_time_s for row in parallel]
    speedups = [row.speedup for row in parallel]
    assert concurrencies == sorted(concurrencies)
    assert times == sorted(times, reverse=True)
    assert speedups == sorted(speedups)

    # headline claim: "speedups > 100X"
    assert speedups[-1] > 100.0
    # and the extrapolated comment totals stay near the dataset's 3,695,107
    for row in parallel:
        assert abs(row.comments - airbnb.TOTAL_COMMENTS) / airbnb.TOTAL_COMMENTS < 0.25
