"""Exchange matrix benchmark: which data plane wins at which shuffle scale.

The Milestone follow-up to the paper asks when routing intermediates
through a provisioned ephemeral-store cluster beats the pure COS
exchange.  This benchmark sweeps a synthetic keyed shuffle over

    shuffle volume x fan-out x exchange backend

with one cell per combination, all from the same seed:

* **Workload.**  Each of ``M`` map tasks emits one keyed, padded payload
  per reducer (keys pre-picked so key ``r`` hash-partitions to reducer
  ``r``), so every cell moves exactly ``volume`` bytes through the
  exchange in ``M x R`` partitions of ``volume / (M x R)`` bytes.
  Reducers sum payload lengths; the answer is checked in every cell.
* **Backends.**  ``cos`` (direct, the paper's path), ``cached-cos``
  (PR 5 write-through memory tier) and ``vm`` (ephemeral-store cluster,
  ``vm_startup_s=1.0`` so provisioning overlaps job spin-up — the
  pre-provisioned-cluster scenario; the bill still pays for every
  VM-second from t=0).
* **Metrics.**  Per cell: virtual makespan, COS request tallies priced by
  :func:`repro.core.cost.cos_request_cost` (class A writes vs class B
  reads), VM-seconds priced by :func:`repro.core.cost.vm_seconds_cost`,
  and the backend's hit/miss counters.

The physics behind the expected crossover: a COS read moves the
partition at ~100 MiB/s single-stream; a VM hit moves it at ~1 GiB/s
for the price of an extra write hop at put time.  Small partitions are
dominated by per-request overhead (COS wins or ties), big partitions by
bandwidth (VM wins) — the per-partition breakeven is around half a
megabyte, so the matrix brackets it from both sides.

Acceptance: the VM exchange beats direct COS on makespan in at least one
large-volume cell, direct COS wins at least one small-volume cell (a
real crossover, not uniform dominance), every cell's answer is correct,
billing surfaces both currencies, and same-seed traced runs are
byte-identical per backend.

Run via ``make bench-exchange``; writes ``BENCH_exchange_matrix.json``.
"""

from __future__ import annotations

import json
import os

import repro as pw
from repro.core import cost
from repro.core.environment import CloudEnvironment
from repro.core.shuffle import merge_shuffle_results, stable_key_hash

SEED = 123
OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_exchange_matrix.json"
)

#: total bytes moved through the exchange per cell
VOLUMES = {"2MiB": 2 * 1024**2, "128MiB": 128 * 1024**2}
#: (n_maps, n_reducers)
FANOUTS = [(4, 4), (8, 4)]
BACKENDS = ["cos", "cached-cos", "vm"]
LARGE = "128MiB"
SMALL = "2MiB"

#: the VM cells model a pre-provisioned cluster: 1 s startup overlaps the
#: job's own invocation ramp, while the VM-seconds meter runs from t=0
VM_STARTUP_S = 1.0

#: the default 1 s result poll would quantize makespans and swallow
#: sub-second transfer differences; every cell polls at the same 50 ms
POLL_INTERVAL_S = 0.05


def exchange_for(backend: str):
    """The ``CloudEnvironment.create(exchange=...)`` value for one cell."""
    if backend == "vm":
        return pw.ExchangeConfig(backend="vm", vm_startup_s=VM_STARTUP_S)
    return pw.ExchangeConfig(backend=backend)


def reducer_keys(n_reducers: int) -> list[str]:
    """One key per reducer index, so every partition is addressable."""
    keys: dict[int, str] = {}
    serial = 0
    while len(keys) < n_reducers:
        candidate = f"k{serial:04d}"
        keys.setdefault(stable_key_hash(candidate) % n_reducers, candidate)
        serial += 1
    return [keys[r] for r in range(n_reducers)]


def make_map_function(keys: list[str], payload_len: int):
    """Emit one padded payload per reducer key (runs inside the cloud)."""

    def synthetic_pairs(_item):
        return [(key, "x" * payload_len) for key in keys]

    return synthetic_pairs


def sum_lengths(key, values):
    del key
    return sum(len(value) for value in values)


def run_cell(
    backend: str,
    volume: int,
    n_maps: int,
    n_reducers: int,
    trace: bool = False,
):
    payload_len = max(volume // (n_maps * n_reducers), 1)
    keys = reducer_keys(n_reducers)
    env = CloudEnvironment.create(
        seed=SEED,
        trace=trace,
        config=pw.PyWrenConfig(poll_interval=POLL_INTERVAL_S),
        exchange=exchange_for(backend),
    )

    def main():
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            make_map_function(keys, payload_len),
            list(range(n_maps)),
            sum_lengths,
            n_reducers=n_reducers,
        )
        merged = merge_shuffle_results(executor.get_result(reducers))
        jsonl = executor.trace_jsonl() if trace else ""
        return merged, executor.executor_id, jsonl

    merged, executor_id, jsonl = env.run(main)
    expected = {key: n_maps * payload_len for key in keys}
    assert merged == expected, (
        f"{backend} @ {volume}B x ({n_maps},{n_reducers}): wrong answer"
    )

    counts = env.storage.request_counts()
    cos_usd = cost.cos_request_cost(counts)
    billing = env.exchange.billing(env.now())
    vm_usd = billing.get("vm_cost_usd", 0.0)
    stats = env.exchange.stats()
    cell = {
        "makespan_s": round(env.now(), 4),
        "partition_bytes": payload_len,
        "cos_requests": dict(sorted(counts.items())),
        "cos_cost_usd": round(cos_usd, 8),
        "vm_seconds": billing.get("vm_seconds", 0.0),
        "vm_cost_usd": round(vm_usd, 8),
        "total_cost_usd": round(cos_usd + vm_usd, 8),
        "tier_hits": stats.get("hits", 0),
        "tier_misses": stats.get("misses", 0),
    }
    return cell, jsonl.replace(executor_id, "EXEC")


def crossover_analysis(matrix: dict) -> dict:
    """Where does each backend win on wall time, and why."""
    vm_wins, cos_wins = [], []
    for cell_name, by_backend in matrix.items():
        vm = by_backend["vm"]["makespan_s"]
        cos_t = by_backend["cos"]["makespan_s"]
        (vm_wins if vm < cos_t else cos_wins).append(cell_name)
    saving_per_mib = 1.0 / (100 * 1024**2) - 1.0 / (1 * 1024**3)
    return {
        "vm_wins_wall_time": sorted(vm_wins),
        "cos_wins_wall_time": sorted(cos_wins),
        "read_saving_s_per_mib": round(saving_per_mib * 1024**2, 6),
        "note": (
            "VM reads move partitions at ~1 GiB/s vs ~100 MiB/s "
            "single-stream COS, for the price of an extra write hop and "
            "a provisioned-VM bill; small partitions are overhead-bound "
            "(COS wins), large ones bandwidth-bound (VM wins)."
        ),
    }


def main() -> int:
    matrix: dict[str, dict[str, dict]] = {}
    for volume_name, volume in VOLUMES.items():
        for n_maps, n_reducers in FANOUTS:
            cell_name = f"{volume_name}/m{n_maps}r{n_reducers}"
            matrix[cell_name] = {}
            for backend in BACKENDS:
                cell, _ = run_cell(backend, volume, n_maps, n_reducers)
                matrix[cell_name][backend] = cell
                print(
                    f"{cell_name:<16} {backend:<11} "
                    f"wall {cell['makespan_s']:>8.3f}s  "
                    f"cost ${cell['total_cost_usd']:.6f}"
                )

    # same-seed determinism, one representative (small) cell per backend
    determinism = {}
    for backend in BACKENDS:
        _, trace_a = run_cell(backend, VOLUMES[SMALL], 4, 4, trace=True)
        _, trace_b = run_cell(backend, VOLUMES[SMALL], 4, 4, trace=True)
        determinism[backend] = bool(trace_a == trace_b and trace_a != "")

    analysis = crossover_analysis(matrix)
    large_cells = [c for c in matrix if c.startswith(LARGE + "/")]
    small_cells = [c for c in matrix if c.startswith(SMALL + "/")]
    report = {
        "seed": SEED,
        "chaos": "none",
        "vm_startup_s": VM_STARTUP_S,
        "poll_interval_s": POLL_INTERVAL_S,
        "volumes": {name: size for name, size in VOLUMES.items()},
        "fanouts": [list(f) for f in FANOUTS],
        "backends": BACKENDS,
        "matrix": matrix,
        "crossover": analysis,
        "criteria": {
            "vm_beats_cos_on_a_large_cell": bool(
                set(analysis["vm_wins_wall_time"]) & set(large_cells)
            ),
            # Pareto dominance at small volume: direct COS is no slower
            # and strictly cheaper, so the VM cluster never pays off there
            "cos_pareto_dominates_a_small_cell": any(
                matrix[c]["cos"]["makespan_s"] <= matrix[c]["vm"]["makespan_s"]
                and matrix[c]["cos"]["total_cost_usd"]
                < matrix[c]["vm"]["total_cost_usd"]
                for c in small_cells
            ),
            "every_cell_bills_cos_requests": all(
                cell["cos_cost_usd"] > 0
                for cells in matrix.values()
                for cell in cells.values()
            ),
            "vm_cells_bill_vm_seconds": all(
                cells["vm"]["vm_seconds"] > 0
                and cells["vm"]["vm_cost_usd"] > 0
                for cells in matrix.values()
            ),
            "vm_tier_served_reads": all(
                cells["vm"]["tier_hits"] > 0 for cells in matrix.values()
            ),
            "same_seed_traces_byte_identical": all(determinism.values()),
        },
        "determinism_by_backend": determinism,
    }
    report["criteria_met"] = all(report["criteria"].values())
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["criteria"], indent=2))
    print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
