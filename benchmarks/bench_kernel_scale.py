"""Kernel scale benchmark: Fig. 3-style runs at 2,000 / 10,000 / 50,000.

The paper's elasticity experiment (Fig. 3) tops out at 2,000 concurrent
functions; this bench anchors there and pushes the same workload shape to
10k and 50k to prove the hybrid scheduler's point: model tasks hold no OS
thread while blocked, so concurrency is bounded by memory, not by threads.
Acceptance:

* the 10,000-function run reaches full concurrency (the record-derived
  timeline peaks at >= 10,000) and the peak OS-thread count stays under
  2x the kernel's configured pool size;
* wall-clock growth is near-linear in concurrency: per-function wall cost
  at 50k stays within 1.5x of the 2k anchor.

The scheduler does O(1) work per function (the per-run ``tasks_spawned``
and step counts scale exactly with N), so wall-clock is inherently
linear-in-N plus a small super-linear residue: CPU cache pressure from the
larger live heap (50k in-flight activations hold ~0.5 GB of generator
frames, records, and per-endpoint RNG streams) and the timer heap's log N.
Per-run ``per_function_us`` is reported so that residue is inspectable —
measured ~1.3x from 2k to 50k on a single-core host.  The point of the
hybrid scheduler is the flat *thread* count: the previous thread-per-task
kernel could not run these scales at all.

Run via ``make bench-kernel-scale``; writes ``BENCH_kernel_scale.json``.
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time

SCALES = (2_000, 10_000, 50_000)
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernel_scale.json")


def _scale_task(_: object):
    """The ~60 s function, as a steps generator: threadless while it runs."""
    from repro.core import cost
    from repro.vtime.kernel import vsleep

    yield vsleep(cost.FIG3_TASK_SECONDS)
    return 1


class _ThreadWatcher:
    """Samples the process's OS-thread count from a real (non-kernel) thread."""

    def __init__(self, interval_s: float = 0.02) -> None:
        self.interval_s = interval_s
        self.peak = threading.active_count()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="thread-watcher", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.is_set():
            self.peak = max(self.peak, threading.active_count())
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "_ThreadWatcher":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()
        self.peak = max(self.peak, threading.active_count())


def run_scale(n_functions: int, seed: int = 42) -> dict:
    """One Fig. 3-shaped run at ``n_functions`` concurrency.

    The timed region is the whole run as a user experiences it: build the
    environment, create the executor (deploys the runner actions), map the
    workload, and collect every result.  The cyclic collector is paused for
    the timed region so the measurement reflects the scheduler, not
    CPython's gen-2 sweeps over 50k live records (pyperformance-style;
    noted in the report as gc_paused).
    """
    from repro.bench.reporting import concurrency_timeline
    from repro.config import InvokerMode
    from repro.core import cost
    from repro.core.environment import CloudEnvironment
    from repro.core.worker import RUNNER_ACTION_BASENAME
    from repro.faas.limits import SystemLimits
    from repro.net.latency import LatencyModel

    # Cluster sized so the whole workload fits: n x 256 MB actions.
    invoker_memory_mb = 102_400
    per_node = invoker_memory_mb // 256
    invoker_count = (n_functions + per_node - 1) // per_node + 2
    limits = SystemLimits(
        max_concurrent=n_functions + 64,
        invoker_count=invoker_count,
        invoker_memory_mb=invoker_memory_mb,
    )

    gc.disable()
    try:
        wall_t0 = time.perf_counter()
        env = CloudEnvironment.create(
            client_latency=LatencyModel.wan(), limits=limits, seed=seed
        )
        kernel = env.kernel

        def main():
            import repro

            executor = repro.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
            t0 = env.now()
            futures = executor.map(_scale_task, [0] * n_functions)
            executor.get_result(futures)
            return t0

        with _ThreadWatcher() as watcher:
            t0 = env.run(main)
        wall_s = time.perf_counter() - wall_t0
    finally:
        gc.enable()
    gc.collect()

    records = [
        r
        for r in env.platform.activations()
        if r.action_name.startswith(RUNNER_ACTION_BASENAME)
    ]
    assert len(records) == n_functions
    assert all(r.status == "success" for r in records)
    intervals = [r.interval() for r in records]
    total_virtual = max(end for _s, end in intervals) - t0

    timeline = concurrency_timeline(intervals, resolution=1.0)
    peak_concurrency = max(level for _t, level in timeline)
    stats = kernel.thread_stats()
    return {
        "n_functions": n_functions,
        "invoker_count": invoker_count,
        "virtual_total_s": round(total_virtual, 1),
        "task_seconds": cost.FIG3_TASK_SECONDS,
        "peak_concurrency": peak_concurrency,
        "reached_full_concurrency": bool(peak_concurrency >= n_functions),
        "wall_clock_s": round(wall_s, 2),
        "per_function_us": round(1e6 * wall_s / n_functions, 1),
        "kernel_pool_size": stats["pool_size"],
        "kernel_threads_created": stats["threads_created"],
        "kernel_threads_recycled": stats["threads_recycled"],
        "kernel_peak_threads": stats["peak_threads"],
        "os_peak_threads": watcher.peak,
        "tasks_spawned": kernel.spawned_total,
    }


def main() -> int:
    # Warm imports and code paths so the 2k anchor run is steady-state.
    run_scale(200)
    runs = [run_scale(n) for n in SCALES]
    by_n = {run["n_functions"]: run for run in runs}

    run_2k = by_n[2_000]
    run_10k = by_n[10_000]
    run_50k = by_n[50_000]
    pool = run_10k["kernel_pool_size"]
    thread_bound = 2 * pool
    peak_threads = max(r["os_peak_threads"] for r in runs)
    per_fn_growth = run_50k["per_function_us"] / max(
        run_2k["per_function_us"], 1e-9
    )

    report = {
        "workload": "Fig. 3-style map of ~60 s generator functions",
        "gc_paused": "cyclic collector disabled during the timed region",
        "runs": runs,
        "thread_bound": thread_bound,
        "os_peak_threads": peak_threads,
        # growth anchored at the paper's own Fig. 3 ceiling (2k functions)
        "per_function_growth_50k_over_2k": round(per_fn_growth, 2),
        "wall_ratio_50k_over_10k": round(
            run_50k["wall_clock_s"] / max(run_10k["wall_clock_s"], 1e-9), 2
        ),
        "criteria": {
            "full_concurrency_at_10k": bool(
                run_10k["reached_full_concurrency"]
            ),
            "peak_threads_under_2x_pool": bool(peak_threads < thread_bound),
            "near_linear_wall_growth": bool(per_fn_growth < 1.5),
        },
    }
    report["criteria_met"] = all(report["criteria"].values())
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0 if report["criteria_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
