"""Ablation benches for the design choices DESIGN.md §6 calls out.

Not a paper table — these quantify *why* the paper's design parameters are
what they are: the massive-spawning group size of 100, sequential (vs
pooled) in-group invocation, and warm-container reuse.
"""

from __future__ import annotations

import pytest

from repro.bench import fig2_spawning as fig2
from repro.bench.reporting import Table
from repro.config import InvokerMode
from repro.core.environment import CloudEnvironment
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel


def _run_group_size(group_size: int, n: int = 1000):
    result = None
    limits = SystemLimits(max_concurrent=n + 64)
    env = CloudEnvironment.create(
        client_latency=LatencyModel.wan(), limits=limits, seed=7
    )

    def _task(_):
        import repro

        repro.sleep(10)
        return 1

    def main():
        import repro

        executor = repro.ibm_cf_executor(
            invoker_mode=InvokerMode.MASSIVE, massive_group_size=group_size
        )
        t0 = env.now()
        futures = executor.map(_task, [0] * n)
        executor.get_result(futures)
        records = [
            r
            for r in env.platform.activations()
            if r.action_name.startswith("pywren_runner")
        ]
        return max(r.start_time for r in records) - t0

    return env.run(main)


def test_ablation_group_size(benchmark, emit):
    """Sweep the massive-spawning group size around the paper's 100."""
    group_sizes = [25, 50, 100, 250, 1000]

    def run_all():
        return {g: _run_group_size(g) for g in group_sizes}

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Ablation — massive spawning group size (1,000 invocations)",
        ["group size", "invoker functions", "invocation phase (s)"],
    )
    for g in group_sizes:
        table.add_row(g, -(-1000 // g), round(times[g], 1))
    emit(table)

    # one giant group degenerates to the single-remote-invoker design
    assert times[1000] > times[100] * 1.5
    # invocation time degrades monotonically as groups grow past 100
    assert times[100] < times[250] < times[1000]
    # the paper's choice of 100 stays within 2x of the best group size
    assert times[100] <= min(times.values()) * 2.0


def test_ablation_warm_start(benchmark, emit):
    """Warm containers make a second identical map dramatically cheaper."""
    env = CloudEnvironment.create(seed=11)

    def _task(x):
        return x

    def main():
        import repro

        executor = repro.ibm_cf_executor()
        t0 = env.now()
        executor.get_result(executor.map(_task, list(range(50))))
        first = env.now() - t0
        t0 = env.now()
        executor.get_result(executor.map(_task, list(range(50))))
        second = env.now() - t0
        records = env.platform.activations()
        cold = sum(1 for r in records if r.cold_start)
        warm = sum(1 for r in records if not r.cold_start)
        return first, second, cold, warm

    first, second, cold, warm = benchmark.pedantic(main_wrapper(env, main), rounds=1, iterations=1)
    table = Table(
        "Ablation — cold vs warm container starts (50-call map, twice)",
        ["round", "virtual time (s)", "cold starts", "warm starts"],
    )
    table.add_row("first (cold)", round(first, 1), cold, "-")
    table.add_row("second (warm)", round(second, 1), "-", warm)
    emit(table)

    assert warm >= 50  # the second round reused containers
    assert second < first


def main_wrapper(env, fn):
    """Adapter: run ``fn`` through the environment inside the benchmark."""

    def _run():
        return env.run(fn)

    return _run


def test_ablation_cpu_contention(benchmark, emit):
    """Duration variability from cluster packing (§6.2's fast/slow spread).

    With the contention model on, functions on loaded invoker nodes get a
    smaller compute share; packing the same job onto a smaller cluster
    stretches both the mean and the tail of function durations.
    """
    import repro
    from repro.core.stats import collect_job_stats

    def run(invoker_count, coeff, seed=19):
        limits = SystemLimits(
            invoker_count=invoker_count, invoker_memory_mb=25_600
        )
        env = CloudEnvironment.create(limits=limits, seed=seed)
        env.platform.contention_coeff = coeff

        def main():
            executor = repro.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)

            def task(_):
                repro.compute(60)

            futures = executor.map(task, [0] * 150)
            executor.get_result(futures)
            return collect_job_stats(futures)

        return env.run(main)

    def run_all():
        return {
            "off (4 nodes)": run(4, 0.0),
            "on (16 nodes)": run(16, 0.5),
            "on (4 nodes)": run(4, 0.5),
            "on (2 nodes)": run(2, 0.5),
        }

    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Ablation — CPU contention (150 x 60 s nominal functions)",
        ["configuration", "mean (s)", "p95 (s)", "max (s)"],
    )
    for label, s in stats.items():
        table.add_row(
            label,
            round(s.mean_duration, 1),
            round(s.p95_duration, 1),
            round(s.max_duration, 1),
        )
    emit(table)

    assert stats["off (4 nodes)"].mean_duration == pytest.approx(60.0, abs=0.5)
    # denser packing -> slower means
    assert (
        stats["on (16 nodes)"].mean_duration
        < stats["on (4 nodes)"].mean_duration
        < stats["on (2 nodes)"].mean_duration
    )


def test_ablation_monitoring_transport(benchmark, emit):
    """COS polling vs MQ push: time to collect a short job's results.

    Push monitoring removes the poll-interval quantization from completion
    discovery; the advantage grows with the poll interval.
    """
    from repro.config import MonitoringTransport

    def run(monitoring, poll_interval, seed):
        env = CloudEnvironment.create(
            client_latency=LatencyModel.wan(), seed=seed
        )

        def _task(_):
            import repro

            repro.sleep(2.0)
            return 1

        def main():
            import repro

            executor = repro.ibm_cf_executor(
                monitoring=monitoring, poll_interval=poll_interval
            )
            t0 = env.now()
            executor.get_result(executor.map(_task, [0] * 50))
            return env.now() - t0

        return env.run(main)

    def run_all():
        rows = []
        for poll in (1.0, 5.0, 15.0):
            polling = run(MonitoringTransport.COS_POLLING, poll, seed=3)
            push = run(MonitoringTransport.MQ_PUSH, poll, seed=3)
            rows.append((poll, polling, push))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Ablation — completion transport (50 x 2 s functions, WAN client)",
        ["poll interval (s)", "COS polling (s)", "MQ push (s)"],
    )
    for poll, polling, push in rows:
        table.add_row(poll, round(polling, 1), round(push, 1))
    emit(table)

    for poll, polling, push in rows:
        assert push <= polling + 0.5
    # push time is independent of the poll interval; polling degrades
    push_times = [push for _p, _polling, push in rows]
    assert max(push_times) - min(push_times) < 2.0
    assert rows[-1][1] > rows[0][1]
