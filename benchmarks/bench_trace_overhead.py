"""Tracing overhead benchmark: the same workload with the spine off vs on.

Acceptance criterion for the trace plane: with tracing *disabled* the
executor adds <5% wall-clock overhead versus the pre-trace code path (the
disabled spine is the default, so this is what every existing experiment
pays).  We measure the full client flow — submit, execute, collect — for a
map job, repeated several times, taking the best run of each mode to
suppress scheduler noise, and also report the enabled-mode cost for
context.

Run via ``make bench-trace``; writes ``BENCH_trace_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time

N_CALLS = 40
REPEATS = 5
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_trace_overhead.json")


def _workload(trace: bool) -> tuple[float, int]:
    """One full map job; returns (wall seconds, trace events recorded)."""
    from repro.core.environment import CloudEnvironment

    env = CloudEnvironment.create(trace=trace)

    def job():
        import repro

        executor = repro.ibm_cf_executor()
        futures = executor.map(lambda x: x * x, list(range(N_CALLS)))
        return executor.get_result(futures)

    t0 = time.perf_counter()
    result = env.run(job)
    elapsed = time.perf_counter() - t0
    assert result == [x * x for x in range(N_CALLS)]
    return elapsed, len(env.tracer)


def _best(trace: bool) -> tuple[float, int]:
    best = float("inf")
    events = 0
    for _ in range(REPEATS):
        elapsed, events = _workload(trace)
        best = min(best, elapsed)
    return best, events


def _guard_cost_s(iterations: int = 1_000_000) -> float:
    """Measured cost of one disabled emission-site guard, in seconds.

    Every instrumentation site pays exactly this when tracing is off:
    an attribute load plus an ``is not None and .enabled`` check.
    """
    from repro.trace import Tracer
    from repro.vtime import Kernel

    tracer = Tracer(Kernel(), enabled=False)
    hits = 0
    t0 = time.perf_counter()
    for _ in range(iterations):
        if tracer is not None and tracer.enabled:
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits == 0
    return elapsed / iterations


def main() -> int:
    # warm-up: imports, bytecode caches, kernel thread machinery
    _workload(False)

    off_s, _ = _best(False)
    on_s, on_events = _best(True)

    # Disabled overhead = guard cost x guarded sites actually reached.  The
    # enabled run records one event per reached site, so its event count
    # bounds how many guards the disabled run evaluates.
    guard_s = _guard_cost_s()
    overhead_disabled_pct = guard_s * on_events / off_s * 100.0
    overhead_enabled_pct = (on_s - off_s) / off_s * 100.0

    report = {
        "workload": f"map(x*x, range({N_CALLS})) end to end",
        "repeats": REPEATS,
        "tracing_off_s": round(off_s, 4),
        "tracing_on_s": round(on_s, 4),
        "trace_events_recorded": on_events,
        "guard_cost_ns": round(guard_s * 1e9, 2),
        "overhead_disabled_pct": round(overhead_disabled_pct, 4),
        "overhead_enabled_vs_disabled_pct": round(overhead_enabled_pct, 2),
        "criterion": "tracing disabled adds <5% executor wall-clock overhead",
        "criterion_met": bool(overhead_disabled_pct < 5.0),
    }
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
