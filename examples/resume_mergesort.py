"""repro.events: kill the driver mid-DAG, reattach, finish the job.

Runs the Fig. 4-shaped DAG mergesort with the event journal enabled and a
``client-crash`` chaos profile that kills the client at a fixed virtual
time — after the leaf sorts are submitted, before the merge tree is done.
A fresh executor then ``reattach``es the job: it replays the journal from
COS, reconciles against committed call statuses (nothing committed is
ever re-invoked), re-arms the DAG trigger rules, and fires the pending
merges to completion.  The resumed result is identical to what the dead
driver would have produced.

Run:  python examples/resume_mergesort.py
"""

import random

import repro as pw
from repro.chaos import ChaosProfile
from repro.dag import DagBuilder, DagScheduler

CRASH_AT_S = 8.0  # mid-wait: sorts in flight, merges still pending


def chunk_sort(spec):
    pw.sleep(5 + spec["skew"] * 10)
    return sorted(spec["chunk"])


def merge_pair(parts):
    left, right = parts
    merged, i, j = [], 0, 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    return merged + left[i:] + right[j:]


def build_dag(array, n_leaves=4):
    size = len(array) // n_leaves
    builder = DagBuilder()
    level = [
        builder.call(
            chunk_sort,
            {"chunk": array[i * size:(i + 1) * size], "skew": i % 3},
            name=f"sort[{i}]",
            stage="sort",
        )
        for i in range(n_leaves)
    ]
    height = 1
    while len(level) > 1:
        level = [
            builder.reduce(
                merge_pair,
                [level[i], level[i + 1]],
                name=f"merge{height}[{i // 2}]",
                stage=f"merge{height}",
            )
            for i in range(0, len(level), 2)
        ]
        height += 1
    return builder, level[0]


def main(env):
    rng = random.Random(11)
    array = [rng.randrange(1_000_000) for _ in range(256)]
    builder, root = build_dag(array)

    executor = pw.ibm_cf_executor()
    job_id = executor.executor_id
    try:
        run = DagScheduler(executor).submit(builder.build())
        run.expose(root)
        executor.get_result()
        raise AssertionError("driver was supposed to die mid-DAG")
    except pw.ClientCrashError:
        print(f"driver killed at t={CRASH_AT_S:.1f}s virtual, mid-merge-tree")

    # a brand-new executor adopts the dead driver's job from its journal
    adopter = env.executor()
    job = adopter.reattach(job_id)
    result = job.get_result()
    assert result == sorted(array), "resumed mergesort mismatch!"

    stats = job.stats
    print(
        f"reattached {job_id}: {stats['events_replayed']} events replayed, "
        f"{stats['refired']} merges refired, "
        f"{stats['reinvoked']} calls re-invoked"
    )
    assert stats["reinvoked"] == 0, "a committed call was re-executed"
    print(
        f"resumed after the crash: {len(array)} integers sorted "
        f"in {pw.now():.1f}s virtual, zero lost work"
    )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create(
        events=True,
        chaos=ChaosProfile("client-crash", seed=7, client_crash_at_s=CRASH_AT_S),
    )
    env.run(lambda: main(env))
