"""Quickstart: the paper's Fig. 1 / §4.2 example, end to end.

A map over ``[3, 6, 9]`` with ``my_map_function(x) = x + 7``: the client
serializes code + data into (emulated) IBM COS, invokes the functions
through (emulated) IBM Cloud Functions, and pulls the results back.

Run:  python examples/quickstart.py
"""

import repro as pw


def my_map_function(x):
    return x + 7


def main():
    executor = pw.ibm_cf_executor()
    executor.map(my_map_function, [3, 6, 9])
    result = executor.get_result()
    print(f"map result: {result}")

    # call_async: one asynchronous function, result held in COS
    executor = pw.ibm_cf_executor()
    future = executor.call_async(my_map_function, 35)
    print(f"call_async result: {future.result()}")

    # map_reduce: map phase + a single reducer
    executor = pw.ibm_cf_executor()
    reducer = executor.map_reduce(
        my_map_function, [1, 2, 3, 4], lambda results: sum(results)
    )
    print(f"map_reduce result: {executor.get_result(reducer)}")

    print(f"virtual time elapsed: {pw.now():.1f}s")


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main)
