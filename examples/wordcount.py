"""Wordcount over COS with automatic data discovery and partitioning.

The classic MapReduce job: documents live in a COS bucket, ``map_reduce``
discovers them (§4.3), one map executor counts words per partition, and a
single reducer merges the dictionaries.

Run:  python examples/wordcount.py
"""

from collections import Counter

import repro as pw
from repro.datasets import words


def count_words(partition):
    counts = Counter()
    for token in partition.read().decode("ascii", errors="replace").split():
        counts[token] += 1
    return counts


def merge_counts(results):
    total = Counter()
    for counts in results:
        total.update(counts)
    return total


def main(env):
    keys = words.load_corpus(env.storage, n_docs=40, words_per_doc=500)
    print(f"loaded {len(keys)} documents into cos://corpus")

    executor = pw.ibm_cf_executor()
    reducer = executor.map_reduce(count_words, "cos://corpus", merge_counts)
    counts = executor.get_result(reducer)

    total_words = sum(counts.values())
    print(f"counted {total_words} words across {len(counts)} distinct tokens")
    for word, n in counts.most_common(10):
        print(f"  {word:<12} {n}")


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
