"""Keyed MapReduce with a COS shuffle — beyond the paper's single reducer.

The paper's related work calls data shuffling "one of the biggest
challenges in running MapReduce jobs over serverless architectures".  This
example runs a wordcount whose intermediate (word, 1) pairs are
hash-partitioned into per-reducer COS objects: R reducers each own a
disjoint key range, like Spark's reduceByKey with R partitions.

Run:  python examples/shuffle_wordcount.py
"""

import repro as pw
from repro.core.shuffle import merge_shuffle_results
from repro.datasets import words


def emit_words(partition):
    """Map: one (word, 1) pair per token in this chunk of the corpus."""
    text = partition.read_lines().decode("ascii", errors="replace")
    return [(word, 1) for word in text.split()]


def count(key, values):
    """Reduce: total occurrences of one word."""
    return sum(values)


def main(env):
    words.load_corpus(env.storage, n_docs=30, words_per_doc=400)

    executor = pw.ibm_cf_executor(invoker_mode="massive")
    t0 = pw.now()
    reducers = executor.map_reduce_shuffle(
        emit_words,
        "cos://corpus",
        count,
        n_reducers=6,
        chunk_size=2048,
    )
    per_reducer = executor.get_result(reducers)
    counts = merge_shuffle_results(per_reducer)
    elapsed = pw.now() - t0

    maps = sum(1 for f in executor.futures if f.callset_id.startswith("M"))
    total = sum(counts.values())
    print(
        f"shuffled {total} words across {maps} map tasks and "
        f"{len(reducers)} reducers in {elapsed:.1f}s virtual"
    )
    print("keys per reducer:", [len(d) for d in per_reducer])
    for word, n in sorted(counts.items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {word:<12} {n}")


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
