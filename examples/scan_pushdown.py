"""Predicate-pushdown scans over a zone-mapped table.

Loads a "listings" table (fixed-width-row virtual objects + a zone-map
manifest), then answers the same BI question two ways:

* **pushdown** — the planner prunes row groups whose min/max statistics
  rule the predicate out, each activation reads only surviving byte
  ranges and returns a pre-aggregated partial, and one DAG reduce node
  merges them;
* **full scan** — no pruning, workers ship projected rows, the client
  filters and aggregates (what naive map-over-objects code does).

Both return the same answer; pushdown reads and moves a fraction of the
bytes.  ``make bench-workloads`` sweeps this over selectivity ×
partitioning × exchange backend.

Run:  python examples/scan_pushdown.py
"""

import repro as pw

TOTAL_ROWS = 40_000
N_CITIES = 8


def main(env):
    table = pw.load_table(
        env.storage, total_rows=TOTAL_ROWS, n_cities=N_CITIES
    )
    executor = pw.ibm_cf_executor()

    # "how many cheap early-season stays?" — day is date-ordered within
    # each object, so zone maps prune most groups; price is random, so
    # the residual filter runs in the workers
    spec = pw.ScanSpec(
        columns=("city", "price"),
        predicate=(pw.Col("day") < 30) & (pw.Col("price") < 120),
        aggregate="count",
    )
    t0 = pw.now()
    push = pw.scan(executor, table, spec, pushdown=True)
    t_push = pw.now() - t0
    t0 = pw.now()
    full = pw.scan(executor, table, spec, pushdown=False)
    t_full = pw.now() - t0

    assert push.value == full.value, "pushdown changed the answer"
    print(
        f"count = {push.value} "
        f"(selectivity {100 * full.selectivity:.1f}% of {full.rows_scanned} rows)"
    )
    print(
        f"pushdown:  pruned {push.groups_pruned}/{push.groups_total} row groups, "
        f"read {push.bytes_read:,} bytes in {t_push:.1f}s virtual"
    )
    print(
        f"full scan: read {full.bytes_read:,} bytes in {t_full:.1f}s virtual "
        f"({full.bytes_read / max(1, push.bytes_read):.1f}x the bytes)"
    )

    # group_by rides the same partials: average nightly price per city
    avg = pw.scan(
        executor,
        table,
        pw.ScanSpec(
            columns=("city", "price"),
            predicate=pw.Col("stars") >= 4,
            aggregate="avg",
            agg_column="price",
            group_by="city",
        ),
    )
    for city, value in list(avg.value.items())[:4]:
        print(f"  avg 4-star price in {city:<12} {value:7.2f}")


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
