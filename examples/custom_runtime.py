"""Custom Docker runtimes (§3.1): build, share, and feel the cold pull.

A user bakes ``matplotlib`` into a custom image, publishes it to the
(emulated) Docker hub registry, and a colleague uses it by name:
``pw.ibm_cf_executor(runtime='team/matplotlib:1')``.  The first invocation
on each invoker node pays the image pull; later invocations hit the node's
image cache, and warm containers skip start-up entirely.

Run:  python examples/custom_runtime.py
"""

import repro as pw


def render_plot(data):
    # Pretend-plotting: the interesting part is *where* this runs — inside
    # a container whose image carries the extra package.
    return f"rendered {len(data)} points"


def main(env):
    image = env.registry.build_custom_runtime(
        name="team/matplotlib:1",
        owner="alice",
        extra_packages=["matplotlib"],
    )
    print(
        f"published runtime {image.name} ({image.size_mb} MB, "
        f"{len(image.packages)} packages) to the shared registry"
    )

    # A colleague uses the shared runtime by name (§4.1's runtime= knob).
    executor = pw.ibm_cf_executor(runtime="team/matplotlib:1")
    t0 = pw.now()
    future = executor.call_async(render_plot, list(range(100)))
    future.result()
    cold = pw.now() - t0
    pulled = future.status()["cold_start"]
    print(f"first call : {cold:6.2f}s (cold start, image pulled: {pulled})")

    t0 = pw.now()
    executor.call_async(render_plot, list(range(100))).result()
    warm = pw.now() - t0
    print(f"second call: {warm:6.2f}s (warm container, cached image)")
    assert warm < cold


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
