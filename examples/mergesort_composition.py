"""Dynamic composition: serverless mergesort (§4.4/§6.3), with real data.

Sorts a shuffled array with function trees of depth 0..3 — each non-leaf
function spawns two child functions through a *nested executor*, the
paper's nested-parallelism pattern — verifying correctness and reporting
the virtual-time cost of each depth.

Run:  python examples/mergesort_composition.py
"""

import random

import repro as pw
from repro.sort import serverless_mergesort


def main():
    rng = random.Random(7)
    array = [rng.randrange(1_000_000) for _ in range(4000)]
    expected = sorted(array)

    print(f"sorting {len(array)} integers with function trees of depth 0..3")
    for depth in range(4):
        t0 = pw.now()
        future = serverless_mergesort(array, depth=depth)
        result = future.result()
        elapsed = pw.now() - t0
        assert result == expected, "serverless mergesort mismatch!"
        functions = 2 ** (depth + 1) - 1
        print(
            f"  depth d={depth}: {functions:2d} functions, "
            f"{elapsed:6.1f}s virtual — sorted correctly"
        )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main)
