"""Micro-batch streaming: windowed map_reduce over arriving objects.

A virtual-time source appends one object of readings every 10 s (with
arrival jitter and a deliberately late straggler); the driver fires one
DAG per 40 s window, sliding every 20 s.  Because windows overlap, each
object's map partial is computed once and *reused* by the next window as
an external DAG node — the cached-cos exchange tier then serves the
re-read from memory.  The straggler arrives after its windows fired and
is handled by the late policy (here: refire, producing revised results).

Run:  python examples/streaming_windows.py
"""

import repro as pw

N_OBJECTS = 14
PERIOD_S = 10.0
WINDOW_S = 40.0
SLIDE_S = 20.0


def main(env):
    executor = pw.ibm_cf_executor()
    source = pw.StreamSource.synthetic(
        N_OBJECTS,
        PERIOD_S,
        values_per_object=16,
        jitter_s=3.0,
        late_every=6,
        late_by_s=50.0,
    )
    t0 = pw.now()
    windows = pw.windowed_map_reduce(
        executor,
        source,
        sum,                      # map: total of one object's readings
        lambda parts: sum(parts),  # reduce: total of the window
        window_s=WINDOW_S,
        slide_s=SLIDE_S,
        late_policy="refire",
    )
    elapsed = pw.now() - t0

    reused = sum(w.reused_partials for w in windows)
    revised = sum(1 for w in windows if w.revision > 0)
    for w in windows:
        tag = f" (revision {w.revision}, late straggler folded in)" if w.revision else ""
        print(
            f"window [{w.start_s:5.0f}, {w.end_s:5.0f})  "
            f"objects={len(w.keys)}  reused={w.reused_partials}  "
            f"total={w.value}{tag}"
        )
    print(
        f"{len(windows)} windows in {elapsed:.1f}s virtual: "
        f"{reused} map partials reused across overlaps, "
        f"{revised} windows refired for late arrivals"
    )
    stats = env.cache.stats()
    print(
        f"exchange cache: {stats['local_hits'] + stats['peer_hits']} hits, "
        f"{stats['cos_misses']} COS misses on intermediate reads"
    )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create(exchange="cached-cos")
    env.run(main, env)
