"""Embarrassingly parallel Monte-Carlo π estimation via ``map``.

The §1 pitch: run plain single-machine code on many cloud functions with a
futures interface and zero cluster management.  Each map call samples
points in the unit square; the reducer aggregates the hit counts.

Run:  python examples/montecarlo_pi.py
"""

import random

import repro as pw

SAMPLES_PER_TASK = 20_000
TASKS = 50


def sample_hits(seed):
    rng = random.Random(seed)
    hits = 0
    for _ in range(SAMPLES_PER_TASK):
        x, y = rng.random(), rng.random()
        if x * x + y * y <= 1.0:
            hits += 1
    return hits


def main():
    executor = pw.ibm_cf_executor()
    reducer = executor.map_reduce(
        sample_hits, list(range(TASKS)), lambda hits: sum(hits)
    )
    total_hits = executor.get_result(reducer)
    estimate = 4.0 * total_hits / (SAMPLES_PER_TASK * TASKS)
    print(
        f"pi ~= {estimate:.5f} from {TASKS} functions x "
        f"{SAMPLES_PER_TASK} samples ({pw.now():.1f}s virtual)"
    )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main)
