"""Review analytics: scan -> tone -> per-city roll-ups as one DAG.

The reviewlens-style pipeline over the §6.4 Airbnb dataset: partition
scan nodes chain into tone-analysis nodes (the DAG builder fuses each
linear pair into a single activation — no intermediate COS round trip),
per-city reduce nodes roll partials into scorecards, and a summary node
ranks cities by positivity.  The same graph runs under the centralized
scheduler and the worker-driven swarm scheduler and produces identical
results.

Run:  python examples/review_analytics.py
"""

import repro as pw
from repro.datasets import airbnb

TOTAL_SIZE = 6_000_000
CHUNK_SIZE = 256 * 1024


def main(env):
    airbnb.load_dataset(env.storage, total_size=TOTAL_SIZE)

    executor = pw.ibm_cf_executor()
    t0 = pw.now()
    summary = pw.review_analytics(executor, chunk_size=CHUNK_SIZE)
    elapsed = pw.now() - t0

    swarm_executor = pw.ibm_cf_executor()
    t0 = pw.now()
    swarm_summary = pw.review_analytics(
        swarm_executor, chunk_size=CHUNK_SIZE, scheduler="swarm"
    )
    swarm_elapsed = pw.now() - t0
    assert summary == swarm_summary, "schedulers disagree"

    print(
        f"rolled up {summary['total_comments']} comments across "
        f"{len(summary['cities'])} cities "
        f"(centralized {elapsed:.1f}s, swarm {swarm_elapsed:.1f}s virtual)"
    )
    print("happiest:", ", ".join(summary["happiest"]))
    print("grumpiest:", ", ".join(summary["grumpiest"]))
    for city in summary["happiest"][:3]:
        card = summary["cities"][city]
        print(
            f"  {city:<12} {card['comments']:>6} comments, "
            f"{100 * card['positivity']:.0f}% positive, "
            f"dominant tone {card['dominant']}"
        )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
