"""repro.dag: mergesort as an explicit DAG with barrier-free stage handoff.

Builds the Fig. 4-shaped merge tree declaratively with ``DagBuilder`` —
leaf ``sort`` nodes over array chunks, then a binary tree of ``merge``
reducers — and runs it on the ``DagScheduler``, which submits every node
the moment its inputs resolve.  Because the leaves take uneven time, the
first merges start while slow leaves are still sorting: no client-side
barrier between stages.  Also writes ``dag_mergesort.svg`` (the graph) so
you can see what was scheduled.

Run:  python examples/dag_mergesort.py
"""

import random

import repro as pw
from repro.dag import DagBuilder, DagScheduler, render


def chunk_sort(spec):
    """Sort one chunk; uneven duration makes the barrier-free overlap visible."""
    pw.sleep(5 + spec["skew"] * 15)
    return sorted(spec["chunk"])


def merge_pair(parts):
    left, right = parts
    merged, i, j = [], 0, 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    return merged + left[i:] + right[j:]


def main():
    rng = random.Random(11)
    array = [rng.randrange(1_000_000) for _ in range(4096)]
    n_leaves = 8
    size = len(array) // n_leaves

    builder = DagBuilder()
    level = [
        builder.call(
            chunk_sort,
            {"chunk": array[i * size:(i + 1) * size], "skew": i % 3},
            name=f"sort[{i}]",
            stage="sort",
        )
        for i in range(n_leaves)
    ]
    height = 1
    while len(level) > 1:
        level = [
            builder.reduce(
                merge_pair,
                [level[i], level[i + 1]],
                name=f"merge{height}[{i // 2}]",
                stage=f"merge{height}",
            )
            for i in range(0, len(level), 2)
        ]
        height += 1
    (root,) = level
    dag = builder.build()

    with open("dag_mergesort.svg", "w", encoding="utf-8") as fh:
        fh.write(render.to_svg(dag))
    print(f"built a {len(dag.nodes)}-node, {len(dag.levels())}-level merge tree")
    print(render.describe(dag))

    executor = pw.ibm_cf_executor()
    run = DagScheduler(executor).submit(dag)
    result = run.expose(root).result()
    assert result == sorted(array), "DAG mergesort mismatch!"

    sorts = [run.future(n).status() for n in dag.nodes if n.stage == "sort"]
    merges = [run.future(n).status() for n in dag.nodes if n.stage == "merge1"]
    first_merge = min(s["start_time"] for s in merges)
    last_sort = max(s["end_time"] for s in sorts)
    assert first_merge < last_sort, "expected barrier-free stage overlap"
    print(
        f"first merge started at t={first_merge:.1f}s, "
        f"{last_sort - first_merge:.1f}s before the slowest sort finished"
    )
    print(f"sorted {len(array)} integers correctly in {pw.now():.1f}s virtual")


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main)
