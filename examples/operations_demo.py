"""Operating the platform: the wsk-style shell, logs, and billing.

After running a small job, this demo inspects the emulated IBM Cloud
Functions deployment the way an operator would with the OpenWhisk CLI:
actions, activations, per-activation logs, runtimes, and the GB-seconds
bill.

Run:  python examples/operations_demo.py
"""

import repro as pw
from repro.faas.shell import WskShell


def analyze(x):
    """A chatty task: logs its progress through the activation record."""
    from repro.core.context import require_context

    # reach this activation's context to log (ordinarily framework-side)
    info = require_context().call_info
    pw.sleep(5)
    return {"input": x, "call": info["call_id"]}


def main(env):
    executor = pw.ibm_cf_executor()
    executor.get_result(executor.map(analyze, [10, 20, 30]))

    shell = WskShell(env)
    for command in [
        "action list",
        "activation list --limit 5",
        "runtime list",
        "billing summary",
        "property get",
    ]:
        print(f"$ wsk {command}")
        print(shell.run(command))
        print()

    first = env.platform.activations()[0].activation_id
    print(f"$ wsk activation get {first}")
    print(shell.run(f"activation get {first}"))


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
