"""The §6.4 real use case, at example scale: Airbnb review tone maps.

Loads a scaled-down copy of the 33-city review dataset into COS, then runs
``map_reduce`` with automatic data discovery, chunk-size partitioning, and
``reducer_one_per_object=True`` — one reducer per city renders that city's
tone map (green = good comments, blue = neutral, red = bad; Fig. 5).

Writes the SVG maps to ``airbnb_maps/`` next to this script.

Run:  python examples/airbnb_tone_map.py
"""

import pathlib

import repro as pw
from repro.analytics.geoplot import render_city_map
from repro.analytics.tone import ToneStats, analyze_csv_reviews
from repro.datasets import airbnb

#: scaled-down dataset: ~19 MB instead of the paper's 1.9 GB
TOTAL_SIZE = 19_000_000
CHUNK_SIZE = 256 * 1024

OUT_DIR = pathlib.Path.cwd() / "airbnb_maps"


def tone_map(partition):
    """Map: tone-analyze one partition of one city's reviews."""
    stats, points = analyze_csv_reviews(partition.read())
    return {"key": partition.key, "stats": stats, "points": points[:400]}


def tone_reduce(results):
    """Reduce (one per city): merge partials and render the city map."""
    merged = ToneStats()
    points = []
    for partial in results:
        merged.merge(partial["stats"])
        points.extend(partial["points"])
    city = results[0]["key"].split("/")[-1].removesuffix(".csv")
    svg = render_city_map(city, points)
    return {
        "city": city,
        "comments": merged.comments,
        "counts": dict(merged.counts),
        "dominant": merged.dominant(),
        "svg": svg,
    }


def main(env):
    airbnb.load_dataset(env.storage, total_size=TOTAL_SIZE)

    executor = pw.ibm_cf_executor(invoker_mode="massive")
    t0 = pw.now()
    reducers = executor.map_reduce(
        tone_map,
        f"cos://{airbnb.DEFAULT_BUCKET}",
        tone_reduce,
        chunk_size=CHUNK_SIZE,
        reducer_one_per_object=True,
    )
    summaries = executor.get_result(reducers)
    elapsed = pw.now() - t0

    maps = sum(1 for f in executor.futures if f.callset_id.startswith("M"))
    print(
        f"analyzed 33 cities with {maps} map executors + "
        f"{len(reducers)} reducers in {elapsed:.1f}s virtual"
    )
    OUT_DIR.mkdir(exist_ok=True)
    for summary in sorted(summaries, key=lambda s: -s["comments"])[:33]:
        path = OUT_DIR / f"{summary['city']}.svg"
        path.write_text(summary.pop("svg"))
        print(
            f"  {summary['city']:<15} {summary['comments']:>7} comments, "
            f"dominant tone: {summary['dominant']:<8} -> {path.name}"
        )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
