"""Completion transports: COS polling vs message-queue push.

§4.2's design discovers finished functions by polling status objects in
COS — cheap, but results are up to one poll interval stale.  The
IBM-PyWren lineage later added a RabbitMQ transport where every function
pushes its status to a queue the client consumes.  This example runs the
same job under both transports and prints the time-to-results.

Run:  python examples/push_monitoring.py
"""

import repro as pw
from repro.config import MonitoringTransport


def short_task(x):
    pw.sleep(2.0)
    return x * x


def run_with(monitoring, poll_interval, env):
    executor = pw.ibm_cf_executor(
        monitoring=monitoring, poll_interval=poll_interval
    )
    t0 = pw.now()
    results = executor.get_result(executor.map(short_task, list(range(40))))
    elapsed = pw.now() - t0
    assert results == [x * x for x in range(40)]
    return elapsed


def main(env):
    print("40 functions x 2s compute, WAN client; time to all results:")
    for poll in (1.0, 5.0, 15.0):
        polling = run_with(MonitoringTransport.COS_POLLING, poll, env)
        push = run_with(MonitoringTransport.MQ_PUSH, poll, env)
        print(
            f"  poll_interval={poll:4.1f}s   COS polling: {polling:5.1f}s   "
            f"MQ push: {push:5.1f}s"
        )
    meter = env.platform.billing
    print(
        f"\nbilling: {meter.activations} activations, "
        f"{meter.total_gb_seconds():.1f} GB-s, "
        f"${meter.total_cost():.6f} at list price"
    )


if __name__ == "__main__":
    env = pw.CloudEnvironment.create()
    env.run(main, env)
