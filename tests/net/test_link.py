"""Unit tests for network links (virtual-time accounting)."""

from __future__ import annotations

import pytest

from repro.net import LatencyModel, NetworkLink, TransientNetworkError
from repro.net.link import DEFAULT_BANDWIDTH_BPS


def make_link(kernel, rtt=0.1, jitter=0.0, failure=0.0, bandwidth=DEFAULT_BANDWIDTH_BPS):
    return NetworkLink(
        kernel,
        LatencyModel(rtt=rtt, jitter=jitter, failure_prob=failure),
        bandwidth_bps=bandwidth,
        seed=5,
    )


class TestRequest:
    def test_request_costs_one_rtt(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.5)
            link.request(0)
            return kernel.now()

        assert kernel.run(main) == pytest.approx(0.5)

    def test_payload_costs_bandwidth(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.0, bandwidth=1000)
            link.request(5000)
            return kernel.now()

        assert kernel.run(main) == pytest.approx(5.0)

    def test_failure_raises_after_rtt(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.2, failure=1.0)
            with pytest.raises(TransientNetworkError):
                link.request(100)
            return kernel.now()

        assert kernel.run(main) == pytest.approx(0.2)

    def test_stats_counted(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.01)
            for _ in range(3):
                link.request(100)
            return link.requests, link.failures, link.bytes_moved

        assert kernel.run(main) == (3, 0, 300)

    def test_zero_bandwidth_rejected(self, kernel):
        with pytest.raises(ValueError):
            make_link(kernel, bandwidth=0)


class TestRetries:
    def test_retry_succeeds_eventually(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.1, failure=0.5)
            attempts = link.request_with_retries(0, retries=50, backoff=1.0)
            return attempts

        attempts = kernel.run(main)
        assert attempts >= 1

    def test_retries_exhausted_raises(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.1, failure=1.0)
            with pytest.raises(TransientNetworkError):
                link.request_with_retries(0, retries=2, backoff=0.5)
            return link.failures

        assert kernel.run(main) == 3  # initial + 2 retries

    def test_backoff_charged(self, kernel):
        def main():
            link = make_link(kernel, rtt=0.0, failure=1.0)
            with pytest.raises(TransientNetworkError):
                link.request_with_retries(0, retries=2, backoff=2.0)
            return kernel.now()

        assert kernel.run(main) == pytest.approx(4.0)  # two backoffs


class TestHelpers:
    def test_transfer_time(self, kernel):
        link = make_link(kernel, bandwidth=1024)
        assert link.transfer_time(2048) == pytest.approx(2.0)

    def test_fork_independent_rng(self, kernel):
        def main():
            base = NetworkLink(kernel, LatencyModel.wan(), seed=1)
            fork = base.fork(2)
            assert fork.latency == base.latency
            assert fork is not base
            return True

        assert kernel.run(main)
