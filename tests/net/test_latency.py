"""Unit tests for latency models."""

from __future__ import annotations

import random

import pytest

from repro.net import LatencyModel


class TestSampling:
    def test_no_jitter_returns_rtt(self):
        model = LatencyModel(rtt=0.1, jitter=0.0)
        rng = random.Random(0)
        assert all(model.sample_rtt(rng) == 0.1 for _ in range(10))

    def test_jitter_stays_in_bounds(self):
        model = LatencyModel(rtt=0.2, jitter=0.5)
        rng = random.Random(1)
        for _ in range(500):
            sample = model.sample_rtt(rng)
            assert 0.1 <= sample <= 0.3

    def test_samples_never_negative(self):
        model = LatencyModel(rtt=0.001, jitter=10.0)
        rng = random.Random(2)
        assert all(model.sample_rtt(rng) >= 0.0 for _ in range(500))

    def test_failure_probability_zero(self):
        model = LatencyModel(rtt=0.1, failure_prob=0.0)
        rng = random.Random(3)
        assert not any(model.sample_failure(rng) for _ in range(200))

    def test_failure_probability_statistics(self):
        model = LatencyModel(rtt=0.1, failure_prob=0.1)
        rng = random.Random(4)
        failures = sum(model.sample_failure(rng) for _ in range(5000))
        assert 350 <= failures <= 650  # ~10% +/- noise

    def test_deterministic_given_seeded_rng(self):
        model = LatencyModel.wan()
        a = [model.sample_rtt(random.Random(42)) for _ in range(5)]
        b = [model.sample_rtt(random.Random(42)) for _ in range(5)]
        assert a == b


class TestProfiles:
    def test_wan_much_slower_than_lan(self):
        assert LatencyModel.wan().rtt > 20 * LatencyModel.lan().rtt

    def test_wan_has_failures_lan_does_not(self):
        assert LatencyModel.wan().failure_prob > 0
        assert LatencyModel.lan().failure_prob == 0

    def test_in_cloud_matches_lan_scale(self):
        assert LatencyModel.in_cloud().rtt <= LatencyModel.lan().rtt * 2

    def test_profiles_named(self):
        assert LatencyModel.wan().name == "wan"
        assert LatencyModel.lan().name == "lan"
        assert LatencyModel.in_cloud().name == "in-cloud"
