"""Unit tests for the message broker and MQ client."""

from __future__ import annotations

import pytest

from repro.mq import MessageBroker, MQClient, QueueNotFound
from repro.net import LatencyModel, NetworkLink
from repro.vtime import QueueEmpty, gather


@pytest.fixture()
def broker(kernel) -> MessageBroker:
    return MessageBroker(kernel)


class TestBroker:
    def test_publish_consume_fifo(self, kernel, broker):
        def main():
            broker.declare_queue("q")
            broker.publish("q", {"n": 1})
            broker.publish("q", {"n": 2})
            return broker.consume("q"), broker.consume("q")

        assert kernel.run(main) == ({"n": 1}, {"n": 2})

    def test_declare_idempotent(self, broker):
        broker.declare_queue("q")
        broker.declare_queue("q")
        assert broker.queue_exists("q")

    def test_unknown_queue_raises(self, kernel, broker):
        def main():
            with pytest.raises(QueueNotFound):
                broker.publish("ghost", "x")
            with pytest.raises(QueueNotFound):
                broker.consume("ghost")
            return True

        assert kernel.run(main)

    def test_invalid_name(self, broker):
        with pytest.raises(ValueError):
            broker.declare_queue("")

    def test_consume_blocks_until_publish(self, kernel, broker):
        def main():
            broker.declare_queue("q")

            def producer():
                kernel.sleep(7)
                broker.publish("q", "late")

            kernel.spawn(producer)
            message = broker.consume("q")
            return message, kernel.now()

        assert kernel.run(main) == ("late", 7.0)

    def test_consume_timeout(self, kernel, broker):
        def main():
            broker.declare_queue("q")
            with pytest.raises(QueueEmpty):
                broker.consume("q", timeout=3)
            return kernel.now()

        assert kernel.run(main) == 3.0

    def test_depth_and_counters(self, kernel, broker):
        def main():
            broker.declare_queue("q")
            for i in range(5):
                broker.publish("q", i)
            broker.consume("q")
            return broker.depth("q"), broker.published, broker.consumed

        assert kernel.run(main) == (4, 5, 1)

    def test_delete_queue(self, kernel, broker):
        broker.declare_queue("q")
        broker.delete_queue("q")
        assert not broker.queue_exists("q")

    def test_many_producers_one_consumer(self, kernel, broker):
        def main():
            broker.declare_queue("q")

            def producer(i):
                kernel.sleep(i)
                broker.publish("q", i)

            tasks = [kernel.spawn(producer, i) for i in range(10)]
            received = sorted(broker.consume("q") for _ in range(10))
            gather(tasks)
            return received

        assert kernel.run(main) == list(range(10))


class TestMQClient:
    def test_publish_charges_link(self, kernel, broker):
        def main():
            link = NetworkLink(
                kernel, LatencyModel(rtt=0.5, jitter=0.0), seed=1
            )
            client = MQClient(broker, link)
            client.declare_queue("q")
            t0 = kernel.now()
            client.publish("q", "msg")
            return kernel.now() - t0

        assert kernel.run(main) >= 0.5

    def test_consume_delivery_latency_is_half_rtt(self, kernel, broker):
        def main():
            link = NetworkLink(kernel, LatencyModel(rtt=1.0, jitter=0.0), seed=2)
            client = MQClient(broker, link)
            client.declare_queue("q")
            broker.publish("q", "hello")
            client.subscribe("q")  # channel setup paid up front
            t0 = kernel.now()
            message = client.consume("q")
            return message, kernel.now() - t0

        message, elapsed = kernel.run(main)
        assert message == "hello"
        assert elapsed == pytest.approx(0.5)

    def test_subscribe_only_once(self, kernel, broker):
        def main():
            link = NetworkLink(kernel, LatencyModel(rtt=1.0, jitter=0.0), seed=3)
            client = MQClient(broker, link)
            client.declare_queue("q")
            client.subscribe("q")
            before = link.requests
            client.subscribe("q")
            return link.requests - before

        assert kernel.run(main) == 0
