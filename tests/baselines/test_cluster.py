"""Tests for the provisioned-cluster baseline."""

from __future__ import annotations

import pytest

from repro.baselines import VMCluster


class TestProvisioning:
    def test_boot_takes_boot_time(self, kernel):
        def main():
            cluster = VMCluster(kernel, n_vms=4, boot_seconds=100, boot_jitter=0.0)
            return cluster.provision()

        assert kernel.run(main) == pytest.approx(100.0)

    def test_vms_boot_in_parallel(self, kernel):
        def main():
            cluster = VMCluster(
                kernel, n_vms=50, boot_seconds=100, boot_jitter=0.0
            )
            cluster.provision()
            return kernel.now()

        assert kernel.run(main) == pytest.approx(100.0)

    def test_second_job_reuses_cluster(self, kernel):
        def main():
            cluster = VMCluster(kernel, n_vms=2, boot_seconds=100, boot_jitter=0.0)
            first = cluster.run_map_job(4, task_seconds=10)
            second = cluster.run_map_job(4, task_seconds=10)
            return first.provisioning_s, second.provisioning_s

        first_prov, second_prov = kernel.run(main)
        assert first_prov == pytest.approx(100.0)
        assert second_prov == 0.0

    def test_terminate_forces_reboot(self, kernel):
        def main():
            cluster = VMCluster(kernel, n_vms=1, boot_seconds=50, boot_jitter=0.0)
            cluster.provision()
            cluster.terminate()
            return cluster.provision()

        assert kernel.run(main) == pytest.approx(50.0)

    def test_jitter_bounds(self, kernel):
        def main():
            cluster = VMCluster(
                kernel, n_vms=20, boot_seconds=100, boot_jitter=0.2, seed=5
            )
            return cluster.provision()

        boot = kernel.run(main)
        assert 100.0 <= boot <= 120.0  # max over jittered VMs

    def test_invalid_sizes(self, kernel):
        with pytest.raises(ValueError):
            VMCluster(kernel, n_vms=0)
        with pytest.raises(ValueError):
            VMCluster(kernel, n_vms=1, slots_per_vm=0)


class TestJobs:
    def test_slot_limited_compute(self, kernel):
        def main():
            cluster = VMCluster(
                kernel, n_vms=2, slots_per_vm=2, boot_seconds=0.0, boot_jitter=0.0
            )
            result = cluster.run_map_job(8, task_seconds=10)
            return result.compute_s

        # 8 tasks over 4 slots = 2 waves of 10 s
        assert kernel.run(main) == pytest.approx(20.0)

    def test_total_includes_provisioning(self, kernel):
        def main():
            cluster = VMCluster(
                kernel, n_vms=4, slots_per_vm=1, boot_seconds=120, boot_jitter=0.0
            )
            return cluster.run_map_job(4, task_seconds=50).total_s

        assert kernel.run(main) == pytest.approx(170.0)

    def test_zero_tasks(self, kernel):
        def main():
            cluster = VMCluster(kernel, n_vms=1, boot_seconds=10, boot_jitter=0.0)
            result = cluster.run_map_job(0, task_seconds=10)
            return result.compute_s

        assert kernel.run(main) == pytest.approx(0.0)

    def test_negative_tasks_rejected(self, kernel):
        def main():
            cluster = VMCluster(kernel, n_vms=1)
            with pytest.raises(ValueError):
                cluster.run_map_job(-1, 1.0)
            return True

        assert kernel.run(main)
