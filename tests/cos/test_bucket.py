"""Direct unit tests for Bucket (mostly covered indirectly elsewhere)."""

from __future__ import annotations

import pytest

from repro.cos.bucket import Bucket
from repro.cos.errors import NoSuchKey
from repro.cos.obj import StoredObject


@pytest.fixture()
def bucket() -> Bucket:
    b = Bucket("test")
    for key, data in [("a/1", b"xx"), ("a/2", b"yyy"), ("b/3", b"z")]:
        b.put(StoredObject(key, data=data))
    return b


class TestBucket:
    def test_len(self, bucket):
        assert len(bucket) == 3

    def test_get_and_contains(self, bucket):
        assert bucket.get("a/1").read() == b"xx"
        assert bucket.contains("a/1")
        assert not bucket.contains("ghost")

    def test_get_missing(self, bucket):
        with pytest.raises(NoSuchKey, match="test/ghost"):
            bucket.get("ghost")

    def test_delete(self, bucket):
        bucket.delete("a/1")
        assert not bucket.contains("a/1")
        with pytest.raises(NoSuchKey):
            bucket.delete("a/1")

    def test_list_keys_sorted_and_filtered(self, bucket):
        assert bucket.list_keys() == ["a/1", "a/2", "b/3"]
        assert bucket.list_keys("a/") == ["a/1", "a/2"]
        assert bucket.list_keys("zzz") == []

    def test_list_objects(self, bucket):
        objs = bucket.list_objects("a/")
        assert [o.key for o in objs] == ["a/1", "a/2"]

    def test_total_size(self, bucket):
        assert bucket.total_size() == 6
        assert bucket.total_size("a/") == 5

    def test_put_overwrites(self, bucket):
        bucket.put(StoredObject("a/1", data=b"new"))
        assert bucket.get("a/1").read() == b"new"
        assert len(bucket) == 3
