"""Unit tests for the latency-charging COS client."""

from __future__ import annotations

import pytest

from repro.cos import CloudObjectStorage, COSClient, NoSuchKey
from repro.net import LatencyModel, NetworkLink


def make_client(kernel, rtt=0.1, bandwidth=1000.0):
    store = CloudObjectStorage(kernel)
    store.create_bucket("b")
    link = NetworkLink(
        kernel,
        LatencyModel(rtt=rtt, jitter=0.0, failure_prob=0.0),
        bandwidth_bps=bandwidth,
        seed=9,
    )
    return store, COSClient(store, link)


class TestLatencyAccounting:
    def test_put_charges_rtt_plus_transfer(self, kernel):
        def main():
            _store, client = make_client(kernel, rtt=0.5, bandwidth=1000)
            client.put_object("b", "k", b"x" * 2000)
            return kernel.now()

        assert kernel.run(main) == pytest.approx(0.5 + 2.0)

    def test_get_charges_object_size(self, kernel):
        def main():
            store, client = make_client(kernel, rtt=0.0, bandwidth=100)
            store.put_object("b", "k", b"y" * 500)
            t0 = kernel.now()
            data = client.get_object("b", "k")
            return data, kernel.now() - t0

        data, elapsed = kernel.run(main)
        assert data == b"y" * 500
        assert elapsed == pytest.approx(5.0)

    def test_head_costs_only_rtt(self, kernel):
        def main():
            store, client = make_client(kernel, rtt=0.25, bandwidth=10)
            store.put_object("b", "k", b"z" * 10_000)
            t0 = kernel.now()
            summary = client.head_object("b", "k")
            return summary.size, kernel.now() - t0

        size, elapsed = kernel.run(main)
        assert size == 10_000
        assert elapsed == pytest.approx(0.25)

    def test_read_range_charges_span_only(self, kernel):
        def main():
            store, client = make_client(kernel, rtt=0.0, bandwidth=100)
            store.put_object("b", "k", b"a" * 1000)
            t0 = kernel.now()
            data = client.read_range("b", "k", 100, 300)
            return len(data), kernel.now() - t0

        n, elapsed = kernel.run(main)
        assert n == 200
        assert elapsed == pytest.approx(2.0)


class TestMaterializeCap:
    def test_cap_limits_real_bytes_but_charges_full_span(self, kernel):
        def main():
            store, client = make_client(kernel, rtt=0.0, bandwidth=1000)
            store.put_virtual_object(
                "b", "big", size=100_000, content_fn=lambda s, e: b"r" * (e - s)
            )
            t0 = kernel.now()
            data = client.read_range("b", "big", 0, 10_000, materialize_cap=100)
            return len(data), kernel.now() - t0

        n, elapsed = kernel.run(main)
        assert n == 100
        assert elapsed == pytest.approx(10.0)  # full 10,000-byte span charged

    def test_no_cap_returns_full_range(self, kernel):
        def main():
            store, client = make_client(kernel)
            store.put_object("b", "k", b"0123456789")
            return client.read_range("b", "k", 2, None)

        assert kernel.run(main) == b"23456789"


class TestApi:
    def test_object_exists(self, kernel):
        def main():
            store, client = make_client(kernel)
            store.put_object("b", "k", b"v")
            return client.object_exists("b", "k"), client.object_exists("b", "nope")

        assert kernel.run(main) == (True, False)

    def test_list_objects_summaries(self, kernel):
        def main():
            store, client = make_client(kernel)
            store.put_object("b", "a/1", b"xx")
            store.put_object("b", "a/2", b"yyy")
            store.put_object("b", "z/3", b"z")
            summaries = client.list_objects("b", prefix="a/")
            return [(s.key, s.size) for s in summaries]

        assert kernel.run(main) == [("a/1", 2), ("a/2", 3)]

    def test_delete(self, kernel):
        def main():
            store, client = make_client(kernel)
            client.put_object("b", "k", b"v")
            client.delete_object("b", "k")
            with pytest.raises(NoSuchKey):
                client.get_object("b", "k")
            return True

        assert kernel.run(main)

    def test_head_bucket(self, kernel):
        def main():
            _store, client = make_client(kernel)
            return client.head_bucket("b"), client.head_bucket("ghost")

        assert kernel.run(main) == (True, False)
