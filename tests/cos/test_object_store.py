"""Unit tests for the COS data plane."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos import (
    BucketAlreadyExists,
    CloudObjectStorage,
    InvalidRange,
    NoSuchBucket,
    NoSuchKey,
)
from repro.cos.obj import StoredObject


@pytest.fixture()
def store(kernel) -> CloudObjectStorage:
    return CloudObjectStorage(kernel)


class TestBuckets:
    def test_create_and_exists(self, store):
        store.create_bucket("data")
        assert store.bucket_exists("data")
        assert not store.bucket_exists("other")

    def test_create_duplicate_raises(self, store):
        store.create_bucket("data")
        with pytest.raises(BucketAlreadyExists):
            store.create_bucket("data")

    def test_create_duplicate_exist_ok(self, store):
        store.create_bucket("data")
        store.create_bucket("data", exist_ok=True)

    def test_invalid_names_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_bucket("")
        with pytest.raises(ValueError):
            store.create_bucket("a/b")

    def test_delete_bucket(self, store):
        store.create_bucket("data")
        store.delete_bucket("data")
        assert not store.bucket_exists("data")

    def test_delete_missing_bucket(self, store):
        with pytest.raises(NoSuchBucket):
            store.delete_bucket("ghost")

    def test_list_buckets_sorted(self, store):
        for name in ["zeta", "alpha", "mid"]:
            store.create_bucket(name)
        assert store.list_buckets() == ["alpha", "mid", "zeta"]

    def test_access_missing_bucket(self, store):
        with pytest.raises(NoSuchBucket):
            store.put_object("ghost", "k", b"v")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        store.create_bucket("b")
        store.put_object("b", "key", b"hello world")
        assert store.get_object("b", "key").read() == b"hello world"

    def test_get_missing_key(self, store):
        store.create_bucket("b")
        with pytest.raises(NoSuchKey):
            store.get_object("b", "ghost")

    def test_overwrite_replaces(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"v1")
        store.put_object("b", "k", b"v2")
        assert store.get_object("b", "k").read() == b"v2"

    def test_delete_object(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"v")
        store.delete_object("b", "k")
        assert not store.object_exists("b", "k")

    def test_delete_missing_object(self, store):
        store.create_bucket("b")
        with pytest.raises(NoSuchKey):
            store.delete_object("b", "ghost")

    def test_etag_is_content_hash(self, store):
        store.create_bucket("b")
        a = store.put_object("b", "k1", b"same")
        b = store.put_object("b", "k2", b"same")
        c = store.put_object("b", "k3", b"different")
        assert a.etag == b.etag != c.etag

    def test_last_modified_uses_virtual_time(self, kernel, store):
        def main():
            store.create_bucket("b")
            kernel.sleep(42)
            return store.put_object("b", "k", b"v").last_modified

        assert kernel.run(main) == 42.0

    def test_metadata_preserved(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"v", metadata={"city": "paris"})
        assert store.get_object("b", "k").metadata == {"city": "paris"}

    def test_stats(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"v")
        store.get_object("b", "k")
        assert store.put_count == 1
        assert store.get_count == 1


class TestListing:
    def test_list_keys_prefix(self, store):
        store.create_bucket("b")
        for key in ["data/a.txt", "data/b.txt", "logs/x.log"]:
            store.put_object("b", key, b"")
        assert store.list_keys("b", "data/") == ["data/a.txt", "data/b.txt"]
        assert store.list_keys("b") == ["data/a.txt", "data/b.txt", "logs/x.log"]

    def test_list_empty_bucket(self, store):
        store.create_bucket("b")
        assert store.list_keys("b") == []


class TestRanges:
    def test_range_read(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"0123456789")
        obj = store.get_object("b", "k")
        assert obj.read(2, 5) == b"234"
        assert obj.read(5) == b"56789"

    def test_range_end_clamped(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"abc")
        assert store.get_object("b", "k").read(1, 100) == b"bc"

    def test_invalid_range_raises(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"abc")
        obj = store.get_object("b", "k")
        with pytest.raises(InvalidRange):
            obj.read(5, 6)
        with pytest.raises(InvalidRange):
            obj.read(2, 1)
        with pytest.raises(InvalidRange):
            obj.read(-1, 2)

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=200),
        start=st.integers(min_value=0, max_value=200),
        span=st.integers(min_value=0, max_value=200),
    )
    def test_range_matches_slice_property(self, data, start, span):
        obj = StoredObject("k", data=data)
        if start > len(data):
            with pytest.raises(InvalidRange):
                obj.read(start, start + span)
        else:
            assert obj.read(start, start + span) == data[start : start + span]


class TestVirtualObjects:
    def test_virtual_size_without_content(self, store):
        store.create_bucket("b")
        obj = store.put_virtual_object("b", "big", size=10**9)
        assert obj.size == 10**9
        assert obj.is_virtual

    def test_virtual_default_content_is_zeros(self, store):
        store.create_bucket("b")
        store.put_virtual_object("b", "z", size=100)
        assert store.get_object("b", "z").read(0, 5) == b"\x00" * 5

    def test_virtual_content_fn_range(self, store):
        store.create_bucket("b")
        store.put_virtual_object(
            "b", "gen", size=1000, content_fn=lambda s, e: bytes(range(s % 256, s % 256 + 1)) * (e - s)
        )
        assert len(store.get_object("b", "gen").read(10, 20)) == 10

    def test_virtual_content_fn_length_checked(self, store):
        store.create_bucket("b")
        store.put_virtual_object("b", "bad", size=100, content_fn=lambda s, e: b"x")
        with pytest.raises(ValueError):
            store.get_object("b", "bad").read(0, 10)

    def test_object_requires_size_or_data(self):
        with pytest.raises(ValueError):
            StoredObject("k")
        with pytest.raises(ValueError):
            StoredObject("k", data=b"x", size=5)
        with pytest.raises(ValueError):
            StoredObject("k", size=-1)
