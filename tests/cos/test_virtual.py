"""Unit tests for deterministic virtual content generation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos.virtual import BLOCK_SIZE, make_text_content_fn


class TestDeterminism:
    def test_same_seed_same_content(self):
        a = make_text_content_fn(7)
        b = make_text_content_fn(7)
        assert a(0, 1000) == b(0, 1000)

    def test_different_seeds_differ(self):
        assert make_text_content_fn(1)(0, 1000) != make_text_content_fn(2)(0, 1000)

    def test_empty_range(self):
        assert make_text_content_fn(0)(100, 100) == b""
        assert make_text_content_fn(0)(100, 50) == b""


class TestConsistency:
    @settings(max_examples=50, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=3 * BLOCK_SIZE),
        span=st.integers(min_value=0, max_value=2 * BLOCK_SIZE),
    )
    def test_subrange_matches_superrange(self, start, span):
        """Reading [start, start+span) equals slicing a bigger read."""
        fn = make_text_content_fn(99)
        whole = fn(0, 5 * BLOCK_SIZE)
        assert fn(start, start + span) == whole[start : start + span]

    def test_exact_length(self):
        fn = make_text_content_fn(3)
        for start, end in [(0, 1), (10, 5000), (4095, 4097), (8192, 8192 + 123)]:
            assert len(fn(start, end)) == end - start

    def test_content_is_newline_delimited_ascii(self):
        data = make_text_content_fn(5)(0, BLOCK_SIZE * 2)
        text = data.decode("ascii")
        lines = [line for line in text.split("\n") if line]
        assert len(lines) > 10
        assert all(line.replace(" ", "").isalpha() for line in lines[1:-1])
