"""Workload determinism gate: same-seed scan and streaming traces are
byte-identical to the committed goldens (ISSUE acceptance criterion)."""

from __future__ import annotations

import pathlib

from tests.workloads.golden_workloads import (
    GOLDEN_SCAN_PATH,
    GOLDEN_STREAM_PATH,
    run_scan_traced,
    run_stream_traced,
)


def assert_matches_golden(got: str, golden_path: str) -> None:
    want = pathlib.Path(golden_path).read_text(encoding="utf-8")
    assert want, f"golden fixture missing or empty: {golden_path}"
    # compare prefixes first for a readable diff on regression
    if got != want:
        for i, (a, b) in enumerate(zip(got.splitlines(), want.splitlines())):
            assert a == b, f"first divergence at trace line {i + 1}"
    assert got == want


class TestGoldenScanTrace:
    def test_scan_trace_matches_golden(self):
        assert_matches_golden(run_scan_traced(), GOLDEN_SCAN_PATH)

    def test_scan_run_is_self_deterministic(self):
        assert run_scan_traced() == run_scan_traced()


class TestGoldenStreamTrace:
    def test_stream_trace_matches_golden(self):
        assert_matches_golden(run_stream_traced(), GOLDEN_STREAM_PATH)

    def test_stream_run_is_self_deterministic(self):
        assert run_stream_traced() == run_stream_traced()
