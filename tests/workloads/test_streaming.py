"""Windowed micro-batch streaming: assignment, watermarks, late policy,
and partial reuse across overlapping windows."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as pw
from repro.workloads.streaming import StreamBatch, StreamSource, windows_for


class TestWindowAssignment:
    # quarter-multiples keep every product/sum exactly representable, so
    # the containment check is pure arithmetic, not float-rounding luck
    @settings(max_examples=200, deadline=None)
    @given(
        t=st.integers(min_value=0, max_value=40_000).map(lambda n: n / 4),
        window=st.integers(min_value=1, max_value=2_000).map(lambda n: n / 4),
        slide=st.integers(min_value=1, max_value=2_000).map(lambda n: n / 4),
    )
    def test_event_in_window_iff_index_reported(self, t, window, slide):
        """``windows_for`` is exactly the set of windows containing ``t``."""
        ks = windows_for(t, window, slide)
        assert ks == sorted(set(ks))
        for k in ks:
            assert k * slide <= t < k * slide + window
        if ks:
            # neighbours just outside the reported range do not contain t
            lo, hi = ks[0] - 1, ks[-1] + 1
            if lo >= 0:
                assert not (lo * slide <= t < lo * slide + window)
            assert not (hi * slide <= t < hi * slide + window)
        else:
            # slide > window leaves gaps; t must sit in one of them
            k0 = int(t // slide)
            for k in range(max(0, k0 - 2), k0 + 3):
                assert not (k * slide <= t < k * slide + window)

    def test_tumbling_windows_partition_time(self):
        for t in [0.0, 9.99, 10.0, 25.0, 99.9]:
            assert len(windows_for(t, 10.0, 10.0)) == 1

    def test_overlap_count(self):
        # window 40 sliding 10: interior instants belong to 4 windows
        assert windows_for(100.0, 40.0, 10.0) == [7, 8, 9, 10]
        assert windows_for(5.0, 40.0, 10.0) == [0]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            windows_for(-1.0, 10.0, 10.0)


class TestStreamSource:
    def test_synthetic_is_deterministic_and_ordered(self):
        a = StreamSource.synthetic(10, 5.0, jitter_s=2.0, seed=3)
        b = StreamSource.synthetic(10, 5.0, jitter_s=2.0, seed=3)
        assert [x.key for x in a.batches] == [x.key for x in b.batches]
        assert [x.arrival_s for x in a.batches] == [x.arrival_s for x in b.batches]
        assert [x.payload for x in a.batches] == [x.payload for x in b.batches]
        arrivals = [x.arrival_s for x in a.batches]
        assert arrivals == sorted(arrivals)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            StreamSource(
                "s",
                [
                    StreamBatch(0.0, "k", 0.0, 1),
                    StreamBatch(1.0, "k", 1.0, 2),
                ],
            )


def run_stream(source, *, window_s, slide_s=None, late_policy="drop",
               allowed_lateness_s=0.0, reuse=True, exchange=None):
    env = pw.CloudEnvironment.create(
        **({"exchange": exchange} if exchange else {})
    )

    def main():
        executor = pw.ibm_cf_executor()
        return pw.windowed_map_reduce(
            executor,
            source,
            _collect_events,
            _concat,
            window_s=window_s,
            slide_s=slide_s,
            late_policy=late_policy,
            allowed_lateness_s=allowed_lateness_s,
            reuse_partials=reuse,
        )

    return env, env.run(main)


def _collect_events(payload):
    return [payload]


def _concat(parts):
    out = []
    for p in parts:
        out.extend(p)
    return sorted(out, key=lambda e: e["i"])


def make_source(times, bucket="stream", late=()):
    """Events arrive in event-time order except the ``late`` indices,
    whose arrival is pushed far past the end of the stream's sequence."""
    batches = []
    horizon = max(times) + 1.0
    for i, t in enumerate(times):
        arrival = horizon + i if i in late else t
        batches.append(
            StreamBatch(arrival, f"events/{i:04d}", t, {"i": i, "t": t})
        )
    return StreamSource(bucket, batches)


class TestWindowedMapReduce:
    def test_no_event_counted_in_wrong_window(self):
        times = [0.0, 5.0, 12.0, 19.0, 22.0, 30.0, 41.0]
        env, windows = run_stream(
            make_source(times), window_s=20.0, slide_s=10.0
        )
        seen = set()
        for w in windows:
            for event in w.value:
                assert w.start_s <= event["t"] < w.end_s, (
                    f"event at t={event['t']} landed in window "
                    f"[{w.start_s}, {w.end_s})"
                )
                seen.add((w.index, event["i"]))
        # every event appears in *every* window covering it, exactly once
        expected = {
            (k, i)
            for i, t in enumerate(times)
            for k in windows_for(t, 20.0, 10.0)
        }
        assert seen == expected

    def test_tumbling_counts_each_event_once(self):
        times = [float(i) for i in range(17)]
        env, windows = run_stream(make_source(times), window_s=5.0)
        counted = [e["i"] for w in windows for e in w.value]
        assert sorted(counted) == list(range(17))

    def test_late_drop_records_and_excludes(self):
        times = [0.0, 5.0, 12.0, 3.0, 25.0]
        env, windows = run_stream(
            make_source(times, late={3}), window_s=10.0, late_policy="drop"
        )
        w0 = windows[0]
        assert w0.late_dropped == ("events/0003",)
        assert [e["i"] for e in w0.value] == [0, 1]
        assert w0.revision == 0

    def test_late_refire_revises_window(self):
        times = [0.0, 5.0, 12.0, 3.0, 25.0]
        env, windows = run_stream(
            make_source(times, late={3}), window_s=10.0, late_policy="refire"
        )
        w0 = windows[0]
        assert w0.late_dropped == ()
        assert sorted(e["i"] for e in w0.value) == [0, 1, 3]
        assert w0.revision == 1
        # the refired window reused both original partials
        assert w0.reused_partials == 2

    def test_allowed_lateness_holds_windows_open(self):
        # event 3 (t=3) arrives after t=12 was seen; with 10s of allowed
        # lateness the watermark is only at 2, window [0,10) has not fired,
        # so the straggler is not late at all
        batches = [
            StreamBatch(0.0, "events/0000", 0.0, {"i": 0, "t": 0.0}),
            StreamBatch(5.0, "events/0001", 5.0, {"i": 1, "t": 5.0}),
            StreamBatch(12.0, "events/0002", 12.0, {"i": 2, "t": 12.0}),
            StreamBatch(13.0, "events/0003", 3.0, {"i": 3, "t": 3.0}),
            StreamBatch(25.0, "events/0004", 25.0, {"i": 4, "t": 25.0}),
        ]
        env, windows = run_stream(
            StreamSource("stream", batches),
            window_s=10.0,
            allowed_lateness_s=10.0,
            late_policy="drop",
        )
        w0 = windows[0]
        assert w0.late_dropped == ()
        assert sorted(e["i"] for e in w0.value) == [0, 1, 3]

    def test_overlapping_windows_reuse_partials(self):
        times = [float(i * 5) for i in range(10)]
        env, windows = run_stream(
            make_source(times), window_s=20.0, slide_s=10.0,
            exchange="cached-cos",
        )
        assert sum(w.reused_partials for w in windows) > 0
        # interior windows reuse every partial the previous window mapped
        interior = [w for w in windows if 0 < w.index < windows[-1].index]
        assert all(w.reused_partials >= 2 for w in interior)
        stats = env.cache.stats()
        assert stats["local_hits"] + stats["peer_hits"] > 0

    def test_reuse_disabled_recomputes(self):
        times = [float(i * 5) for i in range(8)]
        env, windows = run_stream(
            make_source(times), window_s=20.0, slide_s=10.0, reuse=False
        )
        assert all(w.reused_partials == 0 for w in windows)
        # answers are unchanged
        for w in windows:
            for event in w.value:
                assert w.start_s <= event["t"] < w.end_s

    def test_rejects_bad_parameters(self):
        env = pw.CloudEnvironment.create()

        def main():
            executor = pw.ibm_cf_executor()
            source = make_source([0.0])
            with pytest.raises(ValueError):
                pw.windowed_map_reduce(
                    executor, source, _collect_events, _concat,
                    window_s=10.0, late_policy="ignore",
                )
            with pytest.raises(ValueError):
                pw.windowed_map_reduce(
                    executor, source, _collect_events, _concat, window_s=0.0
                )
            with pytest.raises(ValueError):
                pw.windowed_map_reduce(
                    executor, source, _collect_events, _concat,
                    window_s=10.0, slide_s=-1.0,
                )
            return True

        assert env.run(main)
