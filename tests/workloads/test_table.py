"""The zone-mapped table substrate: layout algebra and manifest truth."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos.object_store import CloudObjectStorage
from repro.workloads import table as tbl


@pytest.fixture()
def storage(kernel) -> CloudObjectStorage:
    return CloudObjectStorage(kernel)


class TestRowLayout:
    def test_row_roundtrip_is_exact(self):
        row = {"id": 7, "day": 123, "city": "san-francisco",
               "price": 499, "stars": 5, "nights": 30}
        encoded = tbl.format_row(row)
        assert len(encoded) == tbl.ROW_BYTES
        assert tbl.parse_row(encoded[:-1]) == row

    def test_every_city_name_fits(self):
        from repro.datasets.airbnb import CITIES

        for city in CITIES:
            row = {"id": 0, "day": 0, "city": city,
                   "price": 20, "stars": 1, "nights": 1}
            assert tbl.parse_row(tbl.format_row(row)[:-1])["city"] == city

    def test_parse_rows_skips_garbage(self):
        good = tbl.format_row(
            {"id": 1, "day": 2, "city": "rome", "price": 30,
             "stars": 3, "nights": 4}
        )
        assert tbl.parse_rows(b"x" * tbl.ROW_BYTES + good) == [
            tbl.parse_row(good[:-1])
        ]

    @settings(max_examples=50, deadline=None)
    @given(
        object_rows=st.integers(min_value=1, max_value=300),
        rows_per_group=st.integers(min_value=1, max_value=64),
        window=st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=10_000),
        ),
    )
    def test_content_fn_slices_consistently(
        self, object_rows, rows_per_group, window
    ):
        """Any byte range equals the same slice of the full object."""
        fn = tbl.make_table_content_fn("venice", object_rows, rows_per_group)
        size = object_rows * tbl.ROW_BYTES
        full = fn(0, size)
        assert len(full) == size
        start, end = sorted(w % (size + 1) for w in window)
        assert fn(start, end) == full[start:end]


class TestLoadTable:
    def test_manifest_matches_object_bytes(self, storage):
        info = tbl.load_table(
            storage, total_rows=500, n_cities=3, rows_per_group=32
        )
        manifest = json.loads(
            storage.get_object(info.bucket, tbl.MANIFEST_KEY).read()
        )
        assert set(manifest["objects"]) == set(info.keys)
        total_rows = 0
        for key, obj in manifest["objects"].items():
            data = storage.get_object(info.bucket, key).read()
            assert len(data) == obj["size"]
            rows = tbl.parse_rows(data)
            assert len(rows) == obj["rows"]
            total_rows += obj["rows"]
            for group in obj["groups"]:
                group_rows = tbl.parse_rows(data[group["start"]:group["end"]])
                assert len(group_rows) == group["rows"]
                for col in tbl.NUMERIC_COLUMNS + ("city",):
                    values = [r[col] for r in group_rows]
                    assert group["min"][col] == min(values)
                    assert group["max"][col] == max(values)
        assert total_rows == info.total_rows == 500

    def test_day_column_is_date_ordered(self, storage):
        info = tbl.load_table(
            storage, total_rows=300, n_cities=2, rows_per_group=16
        )
        for key in info.keys:
            rows = tbl.parse_rows(storage.get_object(info.bucket, key).read())
            days = [r["day"] for r in rows]
            assert days == sorted(days)
            assert [r["id"] for r in rows] == list(range(len(rows)))

    def test_rejects_bad_parameters(self, storage):
        with pytest.raises(ValueError):
            tbl.load_table(storage, n_cities=0)
        with pytest.raises(ValueError):
            tbl.load_table(storage, n_cities=99)
        with pytest.raises(ValueError):
            tbl.load_table(storage, rows_per_group=0)
