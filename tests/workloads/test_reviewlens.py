"""Review analytics: scheduler equivalence and a direct tone reference."""

from __future__ import annotations

import pytest

import repro as pw
from repro.analytics import tone
from repro.core.partitioner import build_partitions
from repro.datasets import airbnb

TOTAL_SIZE = 1_200_000
CHUNK_SIZE = 96 * 1024


@pytest.fixture()
def dataset_env():
    env = pw.CloudEnvironment.create()
    airbnb.load_dataset(env.storage, total_size=TOTAL_SIZE)
    return env


def reference_summary(executor) -> tuple[int, dict]:
    """Analyze every partition client-side, no DAG involved."""
    from repro.core.partitioner import StoragePartition

    partitions = build_partitions(
        executor._cos, [airbnb.DEFAULT_BUCKET], CHUNK_SIZE
    )
    by_city: dict[str, dict] = {}
    total = 0
    for partition in partitions:
        bound = StoragePartition.from_spec(
            partition.spec(), cos=executor._cos
        )
        city = partition.key.rsplit("/", 1)[-1][:-4]
        stats, _ = tone.analyze_csv_reviews(bound.read_lines())
        card = by_city.setdefault(
            city, {"comments": 0, "counts": {t: 0 for t in tone.TONES}}
        )
        card["comments"] += stats.comments
        for t in tone.TONES:
            card["counts"][t] += stats.counts[t]
        total += stats.comments
    return total, by_city


class TestReviewAnalytics:
    def test_summary_matches_direct_reference(self, dataset_env):
        env = dataset_env

        def main():
            executor = pw.ibm_cf_executor()
            reference = reference_summary(executor)
            return reference, pw.review_analytics(executor, chunk_size=CHUNK_SIZE)

        (total, by_city), summary = env.run(main)
        assert summary["total_comments"] == total
        assert set(summary["cities"]) == set(by_city)
        for city, card in summary["cities"].items():
            assert card["comments"] == by_city[city]["comments"]
            assert card["counts"] == by_city[city]["counts"]
            positive = card["counts"][tone.POSITIVE]
            negative = card["counts"][tone.NEGATIVE]
            want = positive / (positive + negative) if positive + negative else 0.0
            assert card["positivity"] == pytest.approx(want)

    def test_centralized_and_swarm_agree(self, dataset_env):
        env = dataset_env

        def main():
            executor = pw.ibm_cf_executor()
            central = pw.review_analytics(
                executor, chunk_size=CHUNK_SIZE, scheduler="centralized"
            )
            swarm = pw.review_analytics(
                executor, chunk_size=CHUNK_SIZE, scheduler="swarm"
            )
            return central, swarm

        central, swarm = env.run(main)
        assert central == swarm

    def test_rankings_are_consistent(self, dataset_env):
        env = dataset_env

        def main():
            executor = pw.ibm_cf_executor()
            return pw.review_analytics(executor, chunk_size=CHUNK_SIZE, top_k=3)

        summary = env.run(main)
        assert len(summary["happiest"]) == 3
        assert len(summary["grumpiest"]) == 3
        cities = summary["cities"]
        ranked = sorted(
            cities.values(), key=lambda c: (-c["positivity"], c["city"])
        )
        assert summary["happiest"] == [c["city"] for c in ranked[:3]]
        assert summary["grumpiest"] == [c["city"] for c in ranked[::-1][:3]]

    def test_empty_bucket_rejected(self):
        env = pw.CloudEnvironment.create()
        env.storage.create_bucket("empty")

        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(ValueError):
                pw.review_analytics(executor, bucket="empty")
            return True

        assert env.run(main)
