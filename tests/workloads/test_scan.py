"""Scan operator units: predicate algebra, aggregation core, planning,
and the distributed operator against the emulated cloud."""

from __future__ import annotations

import pytest

import repro as pw
from repro.workloads import table as tbl

# the package re-exports the scan() driver under the submodule's name, so
# reach the module itself through sys.modules
import repro.workloads.scan  # noqa: F401  (ensure the module is loaded)
import sys

sc = sys.modules["repro.workloads.scan"]


def rows_fixture() -> list[dict]:
    return [
        {"id": 0, "day": 10, "city": "rome", "price": 50, "stars": 1, "nights": 2},
        {"id": 1, "day": 20, "city": "rome", "price": 150, "stars": 3, "nights": 7},
        {"id": 2, "day": 30, "city": "oslo", "price": 90, "stars": 5, "nights": 1},
        {"id": 3, "day": 40, "city": "oslo", "price": 260, "stars": 4, "nights": 14},
    ]


class TestPredicates:
    def test_comparison_builders(self):
        rows = rows_fixture()
        assert [r["id"] for r in rows if (sc.Col("price") < 100).matches(r)] == [0, 2]
        assert [r["id"] for r in rows if (sc.Col("city") == "oslo").matches(r)] == [2, 3]
        assert [r["id"] for r in rows if (sc.Col("stars") >= 4).matches(r)] == [2, 3]
        assert [r["id"] for r in rows if (sc.Col("day") != 20).matches(r)] == [0, 2, 3]

    def test_combinators_and_negation(self):
        rows = rows_fixture()
        pred = (sc.Col("price") < 100) & (sc.Col("stars") >= 5)
        assert [r["id"] for r in rows if pred.matches(r)] == [2]
        pred = (sc.Col("day") <= 10) | (sc.Col("day") >= 40)
        assert [r["id"] for r in rows if pred.matches(r)] == [0, 3]
        inverted = ~pred
        for row in rows:
            assert inverted.matches(row) != pred.matches(row)

    def test_negated_is_exact_for_every_op(self):
        rows = rows_fixture()
        for op_pred in [
            sc.Col("price") < 100, sc.Col("price") <= 90,
            sc.Col("price") > 100, sc.Col("price") >= 150,
            sc.Col("price") == 90, sc.Col("price") != 90,
        ]:
            negated = op_pred.negated()
            for row in rows:
                assert negated.matches(row) != op_pred.matches(row)

    def test_possible_is_sound_on_zones(self):
        lo = {"price": 50, "day": 10}
        hi = {"price": 90, "day": 30}
        assert not (sc.Col("price") > 90).possible(lo, hi)
        assert not (sc.Col("price") < 50).possible(lo, hi)
        assert (sc.Col("price") >= 90).possible(lo, hi)
        assert (sc.Col("price") == 70).possible(lo, hi)
        assert not (sc.Col("price") == 40).possible(lo, hi)
        # unknown column: no statistics, never prunable
        assert (sc.Col("stars") == 99).possible(lo, hi)
        # all-equal zone pinned to the value is the only != prune
        assert not (sc.Col("day") != 5).possible({"day": 5}, {"day": 5})
        assert (sc.Col("day") != 5).possible({"day": 5}, {"day": 6})


class TestScanSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            sc.ScanSpec(columns=())
        with pytest.raises(ValueError):
            sc.ScanSpec(columns=("a",), aggregate="median")
        with pytest.raises(ValueError):
            sc.ScanSpec(columns=("a",), aggregate="sum")  # no agg_column
        with pytest.raises(ValueError):
            sc.ScanSpec(columns=("a",), agg_column="a")  # no aggregate
        with pytest.raises(ValueError):
            sc.ScanSpec(columns=("a",), group_by="a")  # no aggregate

    def test_required_columns(self):
        spec = sc.ScanSpec(
            columns=("city",),
            predicate=sc.Col("day") < 10,
            aggregate="avg",
            agg_column="price",
            group_by="stars",
        )
        assert spec.required_columns() == {"city", "day", "price", "stars"}


class TestAggregationCore:
    def test_each_aggregate_and_merge(self):
        rows = rows_fixture()
        cases = {
            ("count", None): 4,
            ("sum", "price"): 550,
            ("min", "price"): 50,
            ("max", "price"): 260,
            ("avg", "price"): 137.5,
        }
        for (agg, col), expected in cases.items():
            spec = sc.ScanSpec(columns=("id",), aggregate=agg, agg_column=col)
            whole, _, _ = sc.scan_rows(spec, rows)
            split = sc.merge_partials(
                spec,
                [sc.scan_rows(spec, rows[:2])[0], sc.scan_rows(spec, rows[2:])[0]],
            )
            assert sc.finalize(spec, whole) == expected
            assert sc.finalize(spec, split) == expected

    def test_group_by_and_projection(self):
        rows = rows_fixture()
        spec = sc.ScanSpec(
            columns=("city",), aggregate="count", group_by="city"
        )
        partial, scanned, matched = sc.scan_rows(spec, rows)
        assert (scanned, matched) == (4, 4)
        assert sc.finalize(spec, partial) == {"oslo": 2, "rome": 2}
        proj = sc.ScanSpec(columns=("city", "price"), predicate=sc.Col("stars") > 2)
        partial, _, matched = sc.scan_rows(proj, rows)
        assert matched == 3
        assert partial == [("rome", 150), ("oslo", 90), ("oslo", 260)]

    def test_min_max_over_empty_selection(self):
        spec = sc.ScanSpec(
            columns=("price",), predicate=sc.Col("price") > 999,
            aggregate="min", agg_column="price",
        )
        partial, _, matched = sc.scan_rows(spec, rows_fixture())
        assert matched == 0
        assert sc.finalize(spec, partial) is None


class TestPlanning:
    GROUPS = [
        {"start": 0, "end": 100, "rows": 10, "min": {"day": 0}, "max": {"day": 9}},
        {"start": 100, "end": 200, "rows": 10, "min": {"day": 10}, "max": {"day": 19}},
        {"start": 200, "end": 300, "rows": 10, "min": {"day": 20}, "max": {"day": 29}},
        {"start": 300, "end": 360, "rows": 6, "min": {"day": 30}, "max": {"day": 35}},
    ]

    def test_adjacent_survivors_coalesce(self):
        assert sc.plan_ranges(self.GROUPS, None) == [(0, 360)]
        assert sc.plan_ranges(self.GROUPS, sc.Col("day") < 20) == [(0, 200)]
        assert sc.plan_ranges(
            self.GROUPS, (sc.Col("day") < 10) | (sc.Col("day") >= 30)
        ) == [(0, 100), (300, 360)]
        assert sc.plan_ranges(self.GROUPS, sc.Col("day") > 99) == []

    def test_plan_scan_counts_and_partition_chop(self):
        manifest = {
            "row_bytes": 10,
            "rows_per_group": 10,
            "objects": {"rows/a.csv": {"rows": 36, "size": 360, "groups": self.GROUPS}},
        }
        plan = sc.plan_scan(manifest, "b", sc.Col("day") < 30, 2)
        assert plan.groups_total == 4
        assert plan.groups_pruned == 1
        assert plan.bytes_planned == 300
        assert [(p.range_start, p.range_end) for p in plan.partitions] == [
            (0, 200), (200, 300)
        ]
        assert all(p.bucket == "b" and p.key == "rows/a.csv" for p in plan.partitions)
        assert plan.partitions[0].partitions_of_object == 2


class TestScanInCloud:
    TOTAL_ROWS = 2_000

    def _reference_rows(self, info):
        rows = []
        for key in info.keys:
            city = key.rsplit("/", 1)[-1][:-4]
            object_rows = None
            # per-object row counts: even split with remainder on the head
            base = self.TOTAL_ROWS // len(info.keys)
            extra = self.TOTAL_ROWS % len(info.keys)
            index = list(info.keys).index(key)
            object_rows = base + (1 if index < extra else 0)
            n_groups = -(-object_rows // info.rows_per_group)
            for g in range(n_groups):
                rows += tbl.group_rows(city, g, object_rows, info.rows_per_group)
        return rows

    def test_pushdown_equals_baseline_and_reference(self):
        env = pw.CloudEnvironment.create()
        info = pw.load_table(
            env.storage, total_rows=self.TOTAL_ROWS, n_cities=3,
            rows_per_group=50,
        )
        reference = self._reference_rows(info)

        specs = [
            sc.ScanSpec(columns=("city",), predicate=sc.Col("day") < 40,
                        aggregate="count"),
            sc.ScanSpec(columns=("city", "price"),
                        predicate=(sc.Col("day") < 120) & (sc.Col("price") < 60),
                        aggregate="sum", agg_column="price"),
            sc.ScanSpec(columns=("city", "price"), aggregate="avg",
                        agg_column="price", group_by="city"),
            sc.ScanSpec(columns=("id", "city"),
                        predicate=sc.Col("day") >= 300),
        ]

        def main():
            executor = pw.ibm_cf_executor()
            out = []
            for spec in specs:
                push = pw.scan(executor, info, spec, pushdown=True)
                full = pw.scan(executor, info, spec, pushdown=False)
                out.append((push, full))
            return out

        for spec, (push, full) in zip(specs, env.run(main)):
            expected = sc.finalize(spec, sc.scan_rows(spec, reference)[0])
            if spec.aggregate is None:
                # row lists follow partition order, which need not match
                # the reference's object order — compare as multisets
                assert sorted(push.value) == sorted(expected)
                assert sorted(full.value) == sorted(expected)
            else:
                assert push.value == expected
                assert full.value == expected
            assert full.rows_scanned == self.TOTAL_ROWS
            assert push.rows_scanned <= full.rows_scanned
            assert push.bytes_read <= full.bytes_read
            assert full.groups_pruned == 0

    def test_unselective_scan_prunes_nothing_but_still_agrees(self):
        env = pw.CloudEnvironment.create()
        info = pw.load_table(
            env.storage, total_rows=400, n_cities=2, rows_per_group=32
        )
        spec = sc.ScanSpec(columns=("id",), predicate=sc.Col("day") >= 0,
                           aggregate="count")

        def main():
            executor = pw.ibm_cf_executor()
            return pw.scan(executor, info, spec)

        result = env.run(main)
        assert result.value == 400
        assert result.groups_pruned == 0

    def test_fully_pruned_scan_never_invokes(self):
        env = pw.CloudEnvironment.create()
        info = pw.load_table(
            env.storage, total_rows=300, n_cities=2, rows_per_group=32
        )
        spec = sc.ScanSpec(columns=("id",), predicate=sc.Col("day") > 999,
                           aggregate="count")

        def main():
            executor = pw.ibm_cf_executor()
            result = pw.scan(executor, info, spec)
            return result, len(executor.futures)

        result, n_futures = env.run(main)
        assert result.value == 0
        assert result.partitions == 0
        assert n_futures == 0

    def test_scan_layer_events_carry_selectivity(self):
        env = pw.CloudEnvironment.create(trace=True)
        info = pw.load_table(
            env.storage, total_rows=600, n_cities=2, rows_per_group=32
        )
        spec = sc.ScanSpec(columns=("id",), predicate=sc.Col("day") < 90,
                           aggregate="count")

        def main():
            executor = pw.ibm_cf_executor()
            return pw.scan(executor, info, spec)

        result = env.run(main)
        events = [e for e in env.tracer.events() if e.layer == "scan"]
        names = {e.name for e in events}
        assert {"scan.plan", "scan.partition", "scan.merge", "scan.result"} <= names
        partition_spans = [e for e in events if e.name == "scan.partition"]
        assert sum(e.get_attr("rows_scanned") for e in partition_spans) == result.rows_scanned
        assert all(0.0 <= e.get_attr("selectivity") <= 1.0 for e in partition_spans)
        (plan,) = [e for e in events if e.name == "scan.plan"]
        assert plan.get_attr("groups_pruned") == result.groups_pruned
