"""The scan correctness contract, property-tested.

Two invariants, over arbitrary tables, partitionings and predicates:

1. **Exactly-once equivalence** — running the pushdown pipeline's core
   (per-partition byte scan → partial merge → finalize) over *any*
   group-aligned partitioning of the table equals the unpartitioned
   in-memory reference scan;
2. **Pruning soundness** — a row group whose zone-map statistics make
   ``predicate.possible()`` false contains no matching row, so dropping
   it cannot change any answer.

The predicate strategy composes comparisons over every column (including
the string column) with ``&``/``|``/``~`` to arbitrary depth, which also
exercises the exact-negation rewrite ``Not`` pruning relies on.
"""

from __future__ import annotations

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.workloads.scan  # noqa: F401  (load the module behind the driver)
from repro.workloads import table as tbl

sc = sys.modules["repro.workloads.scan"]

CITIES = ("rome", "oslo", "lima")


def rows_strategy():
    row = st.fixed_dictionaries(
        {
            "day": st.integers(min_value=0, max_value=30),
            "city": st.sampled_from(CITIES),
            "price": st.integers(min_value=20, max_value=120),
            "stars": st.integers(min_value=1, max_value=5),
            "nights": st.integers(min_value=1, max_value=9),
        }
    )
    return st.lists(row, min_size=1, max_size=120).map(
        lambda rows: [{"id": i, **r} for i, r in enumerate(rows)]
    )


def comparison_strategy():
    numeric = st.tuples(
        st.sampled_from(("id", "day", "price", "stars", "nights")),
        st.sampled_from(("<", "<=", ">", ">=", "==", "!=")),
        st.integers(min_value=-5, max_value=130),
    ).map(lambda t: sc.Cmp(*t))
    string = st.tuples(
        st.sampled_from(("==", "!=", "<", ">=")),
        st.sampled_from(CITIES + ("zurich",)),
    ).map(lambda t: sc.Cmp("city", t[0], t[1]))
    return st.one_of(numeric, string)


def predicate_strategy():
    return st.recursive(
        comparison_strategy(),
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: t[0] & t[1]),
            st.tuples(inner, inner).map(lambda t: t[0] | t[1]),
            inner.map(lambda p: ~p),
        ),
        max_leaves=6,
    )


def spec_strategy():
    aggregate = st.sampled_from((None, "count", "sum", "min", "max", "avg"))
    return st.tuples(
        aggregate,
        st.one_of(st.none(), predicate_strategy()),
        st.booleans(),
    ).map(
        lambda t: sc.ScanSpec(
            columns=("id", "city", "price"),
            predicate=t[1],
            aggregate=t[0],
            agg_column="price" if t[0] not in (None, "count") else None,
            group_by="city" if (t[2] and t[0] is not None) else None,
        )
    )


def table_bytes(rows: list[dict]) -> bytes:
    return b"".join(tbl.format_row(row) for row in rows)


def group_zones(rows: list[dict], rows_per_group: int):
    """(lo, hi, byte_range) zone statistics per group, like the manifest."""
    zones = []
    for start in range(0, len(rows), rows_per_group):
        group = rows[start : start + rows_per_group]
        lo = {c: min(r[c] for r in group) for c in tbl.COLUMNS}
        hi = {c: max(r[c] for r in group) for c in tbl.COLUMNS}
        zones.append(
            (lo, hi, (start * tbl.ROW_BYTES,
                      (start + len(group)) * tbl.ROW_BYTES))
        )
    return zones


class TestScanEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        rows=rows_strategy(),
        spec=spec_strategy(),
        cut_seed=st.integers(min_value=0, max_value=2**31),
        rows_per_group=st.integers(min_value=1, max_value=32),
    )
    def test_partitioned_pushdown_equals_reference(
        self, rows, spec, cut_seed, rows_per_group
    ):
        import random

        data = table_bytes(rows)
        # an arbitrary group-aligned partitioning: every group boundary is
        # independently a partition boundary
        rng = random.Random(cut_seed)
        boundaries = [0]
        for start in range(rows_per_group, len(rows), rows_per_group):
            if rng.random() < 0.5:
                boundaries.append(start * tbl.ROW_BYTES)
        boundaries.append(len(data))
        partials = []
        scanned = 0
        for lo_b, hi_b in zip(boundaries, boundaries[1:]):
            partial, n, _ = sc.scan_partition_bytes(spec, data[lo_b:hi_b])
            partials.append(partial)
            scanned += n
        got = sc.finalize(spec, sc.merge_partials(spec, partials))
        want = sc.finalize(spec, sc.scan_rows(spec, rows)[0])
        assert scanned == len(rows), "rows must be scanned exactly once"
        if spec.aggregate is None:
            assert sorted(got) == sorted(want)
        elif spec.aggregate == "avg" and spec.group_by is None:
            if want is None:
                assert got is None
            else:
                assert abs(got - want) < 1e-9
        else:
            assert got == want

    @settings(max_examples=150, deadline=None)
    @given(
        rows=rows_strategy(),
        predicate=predicate_strategy(),
        rows_per_group=st.integers(min_value=1, max_value=16),
    )
    def test_zone_pruning_is_sound(self, rows, predicate, rows_per_group):
        """A pruned group never contains a matching row — and therefore
        scanning only unpruned groups equals scanning everything."""
        data = table_bytes(rows)
        spec = sc.ScanSpec(columns=("id",), predicate=predicate,
                           aggregate="count")
        kept_partials = []
        for lo, hi, (b0, b1) in group_zones(rows, rows_per_group):
            possible = predicate.possible(lo, hi)
            partial, _, matched = sc.scan_partition_bytes(spec, data[b0:b1])
            if not possible:
                assert matched == 0, (
                    f"unsound prune: {predicate!r} ruled out a group "
                    f"with {matched} matching rows (zone lo={lo} hi={hi})"
                )
            else:
                kept_partials.append(partial)
        pruned_count = sc.finalize(
            spec, sc.merge_partials(spec, kept_partials)
        ) if kept_partials else 0
        full_count = sc.finalize(spec, sc.scan_rows(spec, rows)[0])
        assert pruned_count == full_count
